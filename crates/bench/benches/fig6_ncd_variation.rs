//! Figure 6: NCD variation over BinTuner iterations for the four most
//! significant cases (LLVM × {462.libquantum, 445.gobmk}, GCC ×
//! {Coreutils, 429.mcf}), with the default levels' NCD as reference lines.

use bench::{downsample, sparkline, tune};
use lzc::NcdBaseline;
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    let cases: Vec<(CompilerKind, corpus::Benchmark)> = vec![
        (
            CompilerKind::Llvm,
            corpus::by_name("462.libquantum").unwrap(),
        ),
        (CompilerKind::Llvm, corpus::by_name("445.gobmk").unwrap()),
        (CompilerKind::Gcc, corpus::coreutils()),
        (CompilerKind::Gcc, corpus::by_name("429.mcf").unwrap()),
    ];
    for (kind, bench) in cases {
        let cc = Compiler::new(kind);
        let result = tune(&bench, kind, 110, 0xF16);
        let ncd = NcdBaseline::new(binrep::encode_binary(&result.baseline));
        let ref_ncd = |l: OptLevel| {
            let bin = cc
                .compile_preset(&bench.module, l, binrep::Arch::X86)
                .unwrap();
            ncd.score(&binrep::encode_binary(&bin))
        };
        println!(
            "\n== Figure 6 ({kind} & {}): NCD over iterations ==",
            bench.name
        );
        let best: Vec<f64> = result.db.rows().iter().map(|r| r.best_ncd).collect();
        let raw: Vec<f64> = result.db.rows().iter().map(|r| r.ncd).collect();
        println!(
            "iterations: {}   final best NCD: {:.4}",
            result.iterations, result.best_ncd
        );
        println!("best-so-far: {}", sparkline(&downsample(&best, 64)));
        println!("per-iter   : {}", sparkline(&downsample(&raw, 64)));
        let levels: &[OptLevel] = match kind {
            CompilerKind::Gcc => &[OptLevel::O1, OptLevel::Os, OptLevel::O2, OptLevel::O3],
            CompilerKind::Llvm => &[OptLevel::O1, OptLevel::O2, OptLevel::O3],
        };
        for &l in levels {
            println!("reference {l}: NCD {:.4}", ref_ncd(l));
        }
        let beats_all = levels.iter().all(|&l| result.best_ncd >= ref_ncd(l));
        println!(
            "BinTuner beats all default levels: {}",
            if beats_all { "yes" } else { "NO" }
        );
    }
}
