//! Telemetry overhead: the cost of the btel plane, measured and gated.
//!
//! Two contracts, both enforced here (and in CI):
//!
//! * **Off-mode purity** — a default-config run (telemetry off) must be
//!   bit-identical to the pre-telemetry seed semantics. Pinned by running
//!   the same seed twice and against a telemetry-on run: best flags, best
//!   NCD bits, and the full iteration trajectory must agree exactly.
//! * **Bounded overhead** — with the full plane live (registry, stage
//!   histograms, span ring) the quick-corpus run must cost < 5% extra
//!   wall clock, best-of-N vs best-of-N.
//!
//! CI artifact hooks: set `BTEL_EXPOSITION_OUT` to write the final run's
//! Prometheus-style text page, `BTEL_TRACE_OUT` to write its JSONL trace.

use bintuner::{TuneResult, Tuner, TunerConfig};
use genetic::{GaParams, Termination};
use std::time::Instant;

/// Overhead gate, percent. Generous vs the typical measurement (the
/// plane is a handful of relaxed atomics per evaluation) but tight
/// enough to catch an accidental syscall or lock on the hot path.
const MAX_OVERHEAD_PCT: f64 = 5.0;

fn config(telemetry: btel::TelemetryMode) -> TunerConfig {
    let evals = if bench::full_run() { 600 } else { 200 };
    TunerConfig {
        termination: Termination {
            max_evaluations: evals,
            min_evaluations: evals * 2 / 3,
            plateau_window: evals / 3,
            ..Default::default()
        },
        ga: GaParams {
            population: 24,
            ..Default::default()
        },
        telemetry,
        ..Default::default()
    }
}

/// Best-of-N wall clock for one configuration, returning the fastest
/// wall time and the last run's result.
fn best_of(n: usize, cfg: &TunerConfig, module: &minicc::ast::Module) -> (f64, TuneResult) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..n {
        let t = Instant::now();
        let result = Tuner::new(cfg.clone()).tune(module).expect("tuning run");
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(result);
    }
    (best, last.expect("n >= 1"))
}

fn assert_identical(a: &TuneResult, b: &TuneResult, what: &str) {
    assert_eq!(a.best_flags, b.best_flags, "{what}: best genome");
    assert_eq!(
        a.best_ncd.to_bits(),
        b.best_ncd.to_bits(),
        "{what}: best fitness bits"
    );
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.db.rows().len(), b.db.rows().len(), "{what}: history");
    for (x, y) in a.db.rows().iter().zip(b.db.rows()) {
        assert_eq!(x.flags, y.flags, "{what}: iteration {}", x.iteration);
        assert_eq!(x.ncd.to_bits(), y.ncd.to_bits(), "{what}: fitness bits");
        assert_eq!(x.cache_hit, y.cache_hit, "{what}: cache telemetry");
        assert_eq!(x.persistent_hit, y.persistent_hit);
    }
}

fn main() {
    let runs = if bench::full_run() { 5 } else { 3 };
    let bench_case = corpus::by_name("462.libquantum").expect("known benchmark");
    println!(
        "telemetry overhead on {} (best of {runs}, gate {MAX_OVERHEAD_PCT}%)",
        bench_case.name
    );

    // Off-mode purity: two cold default-config runs are bit-identical
    // (the seed semantics), and stay so against the telemetry-on run.
    let off_cfg = config(btel::TelemetryMode::Off);
    let (off_wall, off) = best_of(runs, &off_cfg, &bench_case.module);
    let (repeat_wall, repeat) = best_of(1, &off_cfg, &bench_case.module);
    assert_identical(&off, &repeat, "off vs off repeat");
    assert!(off.registry.is_none(), "Off mode must allocate no registry");
    assert!(off.spans.is_empty(), "Off mode must record no spans");

    let (on_wall, on) = best_of(runs, &config(btel::TelemetryMode::On), &bench_case.module);
    assert_identical(&off, &on, "telemetry on vs off");

    let overhead_pct = 100.0 * (on_wall - off_wall) / off_wall;
    bench::print_table(
        "Telemetry overhead (bit-identity asserted across the switch)",
        &["mode", "wall_s", "overhead", "spans", "families"],
        &[
            vec![
                "off".to_string(),
                format!("{off_wall:.3}"),
                "-".to_string(),
                "0".to_string(),
                "0".to_string(),
            ],
            vec![
                "off (repeat)".to_string(),
                format!("{repeat_wall:.3}"),
                "-".to_string(),
                "0".to_string(),
                "0".to_string(),
            ],
            vec![
                "on".to_string(),
                format!("{on_wall:.3}"),
                format!("{overhead_pct:+.2}%"),
                on.spans.len().to_string(),
                on.registry
                    .as_ref()
                    .expect("registry")
                    .render_text()
                    .lines()
                    .filter(|l| l.starts_with("# TYPE"))
                    .count()
                    .to_string(),
            ],
        ],
    );

    // CI artifact hooks.
    let registry = on.registry.as_ref().expect("telemetry registry");
    if let Ok(path) = std::env::var("BTEL_EXPOSITION_OUT") {
        std::fs::write(&path, registry.render_text()).expect("write exposition artifact");
        println!("exposition written to {path}");
    }
    if let Ok(path) = std::env::var("BTEL_TRACE_OUT") {
        std::fs::write(&path, btel::spans_to_jsonl(&on.spans)).expect("write trace artifact");
        println!("trace written to {path}");
    }

    assert!(
        overhead_pct < MAX_OVERHEAD_PCT,
        "telemetry overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT}% gate \
         ({on_wall:.3}s on vs {off_wall:.3}s off)"
    );
    println!("telemetry on bit-identical to off, overhead {overhead_pct:+.2}% (gate {MAX_OVERHEAD_PCT}%): OK");
}
