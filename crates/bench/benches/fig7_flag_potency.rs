//! Figure 7: the top-10 most potent optimization flags of BinTuner's tuned
//! sequence (leave-one-out BinHunt score drop, normalized to 100%), plus
//! the Jaccard index between -O3 and the tuned flag set.

use bench::{full_run, print_table, tune};
use bintuner::flag_potency;
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    let mut cases: Vec<(CompilerKind, corpus::Benchmark)> = vec![
        (
            CompilerKind::Llvm,
            corpus::by_name("462.libquantum").unwrap(),
        ),
        (CompilerKind::Gcc, corpus::by_name("429.mcf").unwrap()),
    ];
    if full_run() {
        cases.push((CompilerKind::Llvm, corpus::by_name("445.gobmk").unwrap()));
        cases.push((CompilerKind::Gcc, corpus::coreutils()));
    }
    for (kind, bench) in cases {
        let cc = Compiler::new(kind);
        let result = tune(&bench, kind, 90, 0xF17);
        let potencies = flag_potency(&cc, &bench.module, &result.best_flags, binrep::Arch::X86, 4);
        let rows: Vec<Vec<String>> = potencies
            .iter()
            .take(10)
            .map(|p| vec![p.name.to_string(), format!("{:.1}%", p.share * 100.0)])
            .collect();
        print_table(
            &format!("Figure 7 ({kind} & {}): top-10 flag potency", bench.name),
            &["flag", "potency"],
            &rows,
        );
        let rest: f64 = potencies.iter().skip(10).map(|p| p.share).sum();
        println!(
            "{} other flags: {:.1}%",
            potencies.len().saturating_sub(10),
            rest * 100.0
        );
        let jaccard = cc
            .profile()
            .jaccard(&cc.profile().preset(OptLevel::O3), &result.best_flags);
        println!("Jaccard index (O3, BinTuner) = {jaccard:.2} (paper: 0.54-0.63)");
    }
}
