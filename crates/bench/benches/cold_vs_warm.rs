//! Cold-vs-warm tuning: what the persistent cross-run fitness store
//! (paper Figure 4's database, "stored for future exploration") buys on a
//! re-tune of the same target.
//!
//! Each benchmark is tuned twice against a fresh store file: the cold run
//! pays every compile and fills the store; the warm run replays the same
//! search trajectory (identical best genome, by construction) while
//! serving previously compiled configurations from disk. The interesting
//! columns are the real-compile counts and the wall-clock ratio.

use bench::print_table;
use bintuner::{Tuner, TunerConfig};
use genetic::{GaParams, Termination};
use std::fs;
use std::time::Instant;

fn config(cache_path: std::path::PathBuf) -> TunerConfig {
    let evals = if bench::full_run() { 700 } else { 240 };
    TunerConfig {
        termination: Termination {
            max_evaluations: evals,
            min_evaluations: evals * 2 / 3,
            plateau_window: evals / 3,
            ..Default::default()
        },
        ga: GaParams {
            population: 24,
            ..Default::default()
        },
        cache_path: Some(cache_path),
        ..Default::default()
    }
}

fn main() {
    let store_path =
        std::env::temp_dir().join(format!("bintuner_cold_vs_warm_{}.btfs", std::process::id()));
    let _ = fs::remove_file(&store_path);

    let names = ["429.mcf", "462.libquantum", "473.astar"];
    let mut rows = Vec::new();
    for name in names {
        let bench_case = corpus::by_name(name).expect("known benchmark");
        // Fresh store per benchmark so each cold row is genuinely cold.
        let _ = fs::remove_file(&store_path);

        let t = Instant::now();
        let cold = Tuner::new(config(store_path.clone()))
            .tune(&bench_case.module)
            .expect("cold run");
        let cold_wall = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let warm = Tuner::new(config(store_path.clone()))
            .tune(&bench_case.module)
            .expect("warm run");
        let warm_wall = t.elapsed().as_secs_f64();

        // The warm run must be the same search, minus the compiles.
        assert_eq!(warm.best_flags, cold.best_flags, "{name}: warm diverged");
        assert_eq!(warm.best_ncd.to_bits(), cold.best_ncd.to_bits());
        assert!(warm.engine_stats.compiles < cold.engine_stats.compiles);

        rows.push(vec![
            name.to_string(),
            warm.iterations.to_string(),
            format!("{:.3}", warm.best_ncd),
            cold.engine_stats.compiles.to_string(),
            warm.engine_stats.compiles.to_string(),
            format!("{:.1}%", 100.0 * warm.engine_stats.persistent_hit_rate()),
            format!("{:.2}", cold_wall),
            format!("{:.2}", warm_wall),
            format!("{:.2}x", cold_wall / warm_wall.max(1e-9)),
        ]);
    }
    let _ = fs::remove_file(&store_path);

    print_table(
        "Cold vs. warm tuning (persistent fitness store; identical results asserted)",
        &[
            "benchmark",
            "iters",
            "ncd",
            "cold_compiles",
            "warm_compiles",
            "warm_pers_hits",
            "cold_s",
            "warm_s",
            "speedup",
        ],
        &rows,
    );
}
