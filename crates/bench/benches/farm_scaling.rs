//! Farm scaling: thread clients vs pre-forked worker *processes* on the
//! stream transports, plus the adaptive cost model's convergence — the
//! real multi-process deployment of the paper's Figure 4 client–server
//! split.
//!
//! Asserted, not just printed:
//!
//! * **Bit-identity** — every farm row (threads or processes, Unix or
//!   TCP) must reproduce the in-process run's best flags and best NCD
//!   exactly. Process isolation and adaptive shard sizing are deployment
//!   decisions, never semantics decisions.
//! * **Convergence** — the adaptive cost model must have folded real
//!   shard wall times into its estimate (`cost_observations > 0` and a
//!   converged `observed_secs_per_genome`) on every farm row.
//!
//! Worker processes re-exec the `bintuner` binary. When that binary is
//! not built (e.g. `cargo bench` without a prior
//! `cargo build --release -p bintuner`), the process rows are skipped
//! with a notice instead of failing — the thread rows still run.

use bench::print_table;
use bintuner::{
    Backend, ProcessFarm, ServiceConfig, TransportKind, Tuner, TunerConfig, WorkerMode,
};
use genetic::{GaParams, Termination};
use std::path::PathBuf;
use std::time::Instant;

fn base_config() -> TunerConfig {
    let evals = if bench::full_run() { 600 } else { 200 };
    TunerConfig {
        termination: Termination {
            max_evaluations: evals,
            min_evaluations: evals * 2 / 3,
            plateau_window: evals / 3,
            ..Default::default()
        },
        ga: GaParams {
            population: 24,
            ..Default::default()
        },
        // Hit-rate columns read the live registry (bit-identity across
        // the telemetry switch is pinned by the differential suites).
        telemetry: btel::TelemetryMode::On,
        ..Default::default()
    }
}

/// Per-tier hit rate from the registry's labelled counter family.
fn tier_rate(result: &bintuner::TuneResult, tier: &str) -> String {
    let registry = result.registry.as_ref().expect("telemetry registry");
    let hits = registry
        .counter_value("bintuner_engine_cache_hits_total", Some(tier))
        .unwrap_or(0);
    let evaluations = registry
        .counter_value("bintuner_engine_evaluations_total", None)
        .unwrap_or(0);
    format!(
        "{:.1}%",
        100.0 * btel::ratio(hits as f64, evaluations as f64)
    )
}

/// Locate the `bintuner` binary next to this bench executable
/// (`target/<profile>/deps/farm_scaling-*` → `target/<profile>/bintuner`).
/// Mirrors the launcher's own fallback, but checked here so the bench can
/// skip gracefully instead of erroring per row.
fn worker_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    [dir.join("bintuner"), dir.parent()?.join("bintuner")]
        .into_iter()
        .find(|candidate| candidate.is_file())
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let bench_case = corpus::by_name("462.libquantum").expect("known benchmark");
    println!(
        "farm scaling on {} (host parallelism: {cores})",
        bench_case.name
    );
    if cores == 1 {
        println!("  (1 CPU host: farm rows measure transport + process overhead, not speedup)");
    }
    let worker = worker_binary();
    if worker.is_none() {
        println!(
            "  (bintuner binary not found next to the bench executable — process rows skipped; \
             run `cargo build --release -p bintuner` first)"
        );
    }

    let t = Instant::now();
    let local = Tuner::new(base_config())
        .tune(&bench_case.module)
        .expect("in-process run");
    let local_wall = t.elapsed().as_secs_f64();

    let mut rows = vec![vec![
        "in-process".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.3}", local.best_ncd),
        format!("{local_wall:.2}"),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        tier_rate(&local, "memo"),
        tier_rate(&local, "persistent"),
    ]];

    let mut cases: Vec<(&str, TransportKind, usize, WorkerMode)> = vec![
        ("threads", TransportKind::Unix, 2, WorkerMode::Threads),
        ("threads", TransportKind::Tcp, 2, WorkerMode::Threads),
    ];
    if let Some(binary) = worker {
        for (transport, clients) in [
            (TransportKind::Unix, 2),
            (TransportKind::Tcp, 2),
            (TransportKind::Tcp, 4),
        ] {
            cases.push((
                "processes",
                transport,
                clients,
                WorkerMode::Processes(ProcessFarm {
                    worker_binary: Some(binary.clone()),
                    ..ProcessFarm::default()
                }),
            ));
        }
    }

    for (mode, transport, clients, workers) in cases {
        let config = TunerConfig {
            backend: Backend::Service(ServiceConfig {
                clients,
                transport,
                workers,
                fault: None,
                liveness: Default::default(),
            }),
            ..base_config()
        };
        let t = Instant::now();
        let result = Tuner::new(config)
            .tune(&bench_case.module)
            .expect("farm run");
        let wall = t.elapsed().as_secs_f64();
        assert_eq!(
            result.best_flags, local.best_flags,
            "{mode}/{transport}/{clients} clients diverged from the in-process result"
        );
        assert_eq!(result.best_ncd.to_bits(), local.best_ncd.to_bits());
        let summary = result.service.as_ref().expect("service telemetry");
        assert_eq!(summary.process_workers, mode == "processes");
        assert!(
            summary.cost_observations > 0,
            "{mode}/{transport}: the cost model never saw a shard"
        );
        let converged = summary
            .observed_secs_per_genome
            .map(|s| format!("{:.2e}", s))
            .unwrap_or_else(|| "-".to_string());
        let (first, last) = match (summary.shard_sizes.first(), summary.shard_sizes.last()) {
            (Some(f), Some(l)) => (f.to_string(), l.to_string()),
            _ => ("-".to_string(), "-".to_string()),
        };
        rows.push(vec![
            format!("{mode}/{transport}"),
            clients.to_string(),
            summary.cost_observations.to_string(),
            format!("{:.3}", result.best_ncd),
            format!("{wall:.2}"),
            summary.shards.to_string(),
            first,
            last,
            converged,
            tier_rate(&result, "memo"),
            tier_rate(&result, "persistent"),
        ]);
    }

    print_table(
        "Farm scaling (fixed seed; identical results asserted; shard sizes adapt to measured cost; hit rates from the btel registry)",
        &[
            "backend", "clients", "cost_obs", "ncd", "wall_s", "shards", "shard0", "shardN",
            "s/genome", "memo", "persist",
        ],
        &rows,
    );
    println!("farm backend bit-identical to in-process on every row: OK");
}
