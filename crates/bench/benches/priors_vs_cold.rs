//! Priors-vs-cold tuning: what mining the persistent fitness store into
//! flag-potency priors buys over a blind cold search — the paper's
//! "future exploration" angle, measured.
//!
//! Per benchmark, three runs against a fresh store file:
//!
//! 1. **cold** — `PriorMode::Off`, empty store (fills it);
//! 2. **seeded** — `PriorMode::SeedOnly`, warm store: the top stored
//!    configs of the (shape-)nearest module seed the initial population;
//! 3. **seed+bias** — `PriorMode::SeedAndBias`: additionally biases
//!    per-flag mutation by mined potency.
//!
//! The acceptance bars are *asserted*, not just printed: every prior run
//! must reach at least the cold best NCD with no more real compiles.
//! A final section demonstrates cross-module transfer (605.mcf_s tuned
//! from 429.mcf's store — different content hashes, so every benefit
//! flows through the feature-based nearest-module lookup).

use bench::print_table;
use bintuner::{PriorMode, Tuner, TunerConfig};
use genetic::{GaParams, Termination};
use std::fs;
use std::time::Instant;

fn config(cache_path: std::path::PathBuf, priors: PriorMode) -> TunerConfig {
    let evals = if bench::full_run() { 700 } else { 240 };
    TunerConfig {
        termination: Termination {
            max_evaluations: evals,
            min_evaluations: evals * 2 / 3,
            plateau_window: evals / 3,
            ..Default::default()
        },
        ga: GaParams {
            population: 24,
            ..Default::default()
        },
        cache_path: Some(cache_path),
        priors,
        ..Default::default()
    }
}

fn main() {
    let store_path = std::env::temp_dir().join(format!(
        "bintuner_priors_vs_cold_{}.btfs",
        std::process::id()
    ));
    let _ = fs::remove_file(&store_path);

    let names = ["429.mcf", "462.libquantum", "473.astar"];
    let mut rows = Vec::new();
    for name in names {
        let bench_case = corpus::by_name(name).expect("known benchmark");
        // Fresh store per benchmark so each cold row is genuinely cold.
        let _ = fs::remove_file(&store_path);

        let t = Instant::now();
        let cold = Tuner::new(config(store_path.clone(), PriorMode::Off))
            .tune(&bench_case.module)
            .expect("cold run");
        let cold_wall = t.elapsed().as_secs_f64();

        for mode in [PriorMode::SeedOnly, PriorMode::SeedAndBias] {
            let t = Instant::now();
            let tuned = Tuner::new(config(store_path.clone(), mode))
                .tune(&bench_case.module)
                .expect("prior run");
            let wall = t.elapsed().as_secs_f64();
            let prior = tuned.prior.as_ref().expect("priors on => summary");

            // The acceptance bars: priors never hurt.
            assert!(
                tuned.best_ncd >= cold.best_ncd,
                "{name} {mode}: prior best {} < cold best {}",
                tuned.best_ncd,
                cold.best_ncd
            );
            assert!(
                tuned.engine_stats.compiles <= cold.engine_stats.compiles,
                "{name} {mode}: prior compiles {} > cold {}",
                tuned.engine_stats.compiles,
                cold.engine_stats.compiles
            );
            assert!(prior.seeds_injected > 0, "{name} {mode}: nothing seeded");

            rows.push(vec![
                name.to_string(),
                mode.to_string(),
                tuned.iterations.to_string(),
                format!("{:.3}", cold.best_ncd),
                format!("{:.3}", tuned.best_ncd),
                cold.engine_stats.compiles.to_string(),
                tuned.engine_stats.compiles.to_string(),
                prior.seeds_injected.to_string(),
                if prior.seed_matched_best { "yes" } else { "no" }.to_string(),
                prior.biased_flags.to_string(),
                format!("{:.2}x", cold_wall / wall.max(1e-9)),
            ]);
        }
    }
    print_table(
        "Priors vs. cold tuning (same module; floor asserted: prior best >= cold best, compiles <=)",
        &[
            "benchmark",
            "mode",
            "iters",
            "cold_ncd",
            "prior_ncd",
            "cold_compiles",
            "prior_compiles",
            "seeds",
            "seed_hit",
            "biased_flags",
            "speedup",
        ],
        &rows,
    );

    // Cross-module transfer: tune 605.mcf_s from a store that has only
    // seen 429.mcf and Coreutils. No key overlap (different content
    // hashes); the nearest-module feature lookup must pick the mcf
    // variant and its configs ride in as initial-population candidates.
    let _ = fs::remove_file(&store_path);
    let near = corpus::by_name("429.mcf").unwrap();
    let far = corpus::coreutils();
    let target = corpus::by_name("605.mcf_s").unwrap();
    Tuner::new(config(store_path.clone(), PriorMode::Off))
        .tune(&near.module)
        .expect("warm 429.mcf");
    Tuner::new(config(store_path.clone(), PriorMode::Off))
        .tune(&far.module)
        .expect("warm coreutils");
    let cold = Tuner::new(config(
        std::env::temp_dir().join(format!(
            "bintuner_priors_scratch_{}.btfs",
            std::process::id()
        )),
        PriorMode::Off,
    ))
    .tune(&target.module)
    .expect("cold 605.mcf_s");
    let transferred = Tuner::new(config(store_path.clone(), PriorMode::SeedOnly))
        .tune(&target.module)
        .expect("transfer run");
    let prior = transferred.prior.as_ref().unwrap();
    assert_eq!(
        prior.source_module,
        Some(near.module.content_hash()),
        "transfer source must be the shape-nearest module"
    );
    print_table(
        "Cross-module transfer (605.mcf_s seeded from 429.mcf's store)",
        &[
            "target",
            "source_dist",
            "seeds",
            "cold_ncd",
            "transfer_ncd",
            "transfer_iters",
        ],
        &[vec![
            target.name.to_string(),
            format!("{:.4}", prior.source_distance.unwrap_or(f64::NAN)),
            prior.seeds_injected.to_string(),
            format!("{:.3}", cold.best_ncd),
            format!("{:.3}", transferred.best_ncd),
            transferred.iterations.to_string(),
        ]],
    );

    let _ = fs::remove_file(&store_path);
    let _ = fs::remove_file(std::env::temp_dir().join(format!(
        "bintuner_priors_scratch_{}.btfs",
        std::process::id()
    )));
}
