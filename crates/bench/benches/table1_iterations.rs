//! Table 1: BinTuner's search iteration counts and total running time
//! (modelled hours) per suite × compiler, as (min, max, median).
//!
//! The paper reports 279–1,881 iterations; the reproduction uses its
//! scaled GA budgets, so *relative* shape (GCC needs more iterations than
//! LLVM; big programs dominate hours) is the target.

use bench::{print_table, selected_benchmarks, tune};
use minicc::CompilerKind;

fn main() {
    let mut rows = Vec::new();
    for kind in [CompilerKind::Llvm, CompilerKind::Gcc] {
        // GCC exposes more flags → larger search space → more iterations
        // before plateau (paper Table 1 shows exactly this asymmetry).
        let mut by_suite: std::collections::BTreeMap<&str, (Vec<usize>, Vec<f64>)> =
            Default::default();
        for bench in selected_benchmarks(true) {
            if corpus::excluded_for(kind).contains(&bench.name) {
                continue;
            }
            let result = tune(&bench, kind, 120, 0x7A81);
            let suite = bench.suite.name();
            let entry = by_suite.entry(suite).or_default();
            entry.0.push(result.iterations);
            entry.1.push(result.simulated_hours);
        }
        for (suite, (mut iters, mut hours)) in by_suite {
            iters.sort();
            hours.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = iters[iters.len() / 2];
            let med_h = hours[hours.len() / 2];
            rows.push(vec![
                kind.to_string(),
                suite.to_string(),
                format!("({}, {}, {})", iters[0], iters[iters.len() - 1], med),
                format!(
                    "({:.2}, {:.2}, {:.2})",
                    hours[0],
                    hours[hours.len() - 1],
                    med_h
                ),
            ]);
        }
    }
    print_table(
        "Table 1: iterations and modelled hours (min, max, median)",
        &["compiler", "suite", "# iterations", "hours (modelled)"],
        &rows,
    );
    println!("paper: LLVM (279..687 iters), GCC (469..1881); GCC consistently needs more");
}
