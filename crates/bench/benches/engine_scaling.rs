//! Engine scaling: tuner throughput at 1/2/4/8 fitness-engine workers,
//! with per-tier cache hit rates read from the btel registry — the perf
//! trajectory behind the batched, parallel, cached fitness engine (the
//! reproduction's analog of the paper's Table 3 iteration-cost concern).
//!
//! The tuned result is identical at every worker count (asserted below);
//! only wall-clock changes. Speedup requires hardware parallelism —
//! on a single-core host the 2/4/8-worker rows measure scheduling
//! overhead, not gains — so the host's available parallelism is printed
//! alongside.

use bench::print_table;
use bintuner::{Tuner, TunerConfig};
use genetic::{GaParams, Termination};
use std::time::Instant;

fn config(workers: usize) -> TunerConfig {
    let evals = if bench::full_run() { 700 } else { 240 };
    TunerConfig {
        termination: Termination {
            max_evaluations: evals,
            min_evaluations: evals * 2 / 3,
            plateau_window: evals / 3,
            ..Default::default()
        },
        ga: GaParams {
            population: 24,
            ..Default::default()
        },
        workers,
        // The hit-rate columns come from the live registry, not from
        // hand-rolled EngineStats arithmetic.
        telemetry: btel::TelemetryMode::On,
        ..Default::default()
    }
}

/// Per-tier hit rate from the registry's labelled counter family.
fn tier_rate(registry: &btel::Registry, tier: &str, evaluations: u64) -> String {
    let hits = registry
        .counter_value("bintuner_engine_cache_hits_total", Some(tier))
        .unwrap_or(0);
    format!(
        "{:.1}%",
        100.0 * btel::ratio(hits as f64, evaluations as f64)
    )
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let bench_case = corpus::by_name("445.gobmk").expect("known benchmark");
    println!(
        "engine scaling on {} (host parallelism: {cores})",
        bench_case.name
    );
    if cores == 1 {
        // Make the limitation explicit in the output: on a single-core
        // host the multi-worker rows measure scheduling overhead, and a
        // "speedup" column near (or below) 1.0 is expected, not a
        // regression.
        println!("  (no parallel speedup observable on this host: 1 CPU — multi-worker rows measure scheduling overhead only)");
    }

    let mut rows = Vec::new();
    let mut baseline_wall = 0.0f64;
    let mut reference_flags: Option<Vec<bool>> = None;
    for workers in [1usize, 2, 4, 8] {
        let tuner = Tuner::new(config(workers));
        let t = Instant::now();
        let result = tuner.tune(&bench_case.module).expect("tuning run");
        let wall = t.elapsed().as_secs_f64();
        if workers == 1 {
            baseline_wall = wall;
        }
        // Determinism across worker counts is part of the contract.
        match &reference_flags {
            None => reference_flags = Some(result.best_flags.clone()),
            Some(reference) => assert_eq!(
                reference, &result.best_flags,
                "{workers} workers diverged from the 1-worker result"
            ),
        }
        let stats = result.engine_stats;
        let registry = result.registry.as_ref().expect("telemetry registry");
        let evaluations = registry
            .counter_value("bintuner_engine_evaluations_total", None)
            .unwrap_or(0);
        assert_eq!(
            evaluations, stats.evaluations as u64,
            "registry and EngineStats disagree on evaluation count"
        );
        rows.push(vec![
            workers.to_string(),
            result.iterations.to_string(),
            format!("{:.3}", result.best_ncd),
            format!("{:.2}", wall),
            format!("{:.2}", baseline_wall / wall),
            format!("{:.0}", result.iterations as f64 / wall),
            tier_rate(registry, "memo", evaluations),
            tier_rate(registry, "persistent", evaluations),
            stats.failed_compiles.to_string(),
        ]);
    }
    print_table(
        "Engine scaling (fixed seed; identical results by construction; hit rates from the btel registry)",
        &[
            "workers", "iters", "ncd", "wall_s", "speedup", "iters/s", "memo", "persist", "failed",
        ],
        &rows,
    );
}
