//! Scaling behaviour of the sharded (v4) persistent fitness store.
//!
//! One row per shard count (1 / 4 / 16), same record population:
//!
//! - `migrate_ms` / `load_ms` — building the directory and a forced
//!   full load of every shard.
//! - `lazy_shards` — shards touched by a single cold `get` (the lazy
//!   index: 1, never the whole store).
//! - `get_us` — in-memory get latency once loaded.
//! - `compact_ms` — full compaction wall.
//! - `save_ok_during` — fraction of appends to *other* shards that land
//!   (`SaveOutcome::Written`) while one shard is being compacted in a
//!   tight loop. This is the column the sharding exists for: with one
//!   shard the compactor's lock starves every writer; with 16 the other
//!   15 shards keep absorbing appends.
//! - `reads_during` — cold reads of other shards completed (and
//!   verified correct) during the same compaction barrage; never
//!   blocked, any geometry.

use bench::print_table;
use bintuner::{shard_for, FitnessStore, SaveOutcome, StoreKey, StoredFitness};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn key(i: u64) -> StoreKey {
    let m = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xBE9C;
    StoreKey {
        module_hash: m,
        compiler: (i % 2) as u8,
        arch: 1,
        effect_digest: (u128::from(m) << 64) | u128::from(i),
    }
}

fn main() {
    let records: u64 = if bench::full_run() { 20_000 } else { 4_000 };
    let base = std::env::temp_dir().join(format!("bintuner_store_scaling_{}", std::process::id()));

    let mut rows = Vec::new();
    for shards in [1usize, 4, 16] {
        let dir = base.join(format!("s{shards}"));
        testutil::remove_store(&dir);
        std::fs::create_dir_all(dir.parent().unwrap()).unwrap();

        // Build: every record written twice (second generation replaces
        // the first) so half the log is dead and compaction has work.
        let t = Instant::now();
        let mut store = FitnessStore::load_with_shard_count(&dir, shards);
        for round in 0..2u64 {
            for i in 0..records {
                store.insert(
                    key(i),
                    StoredFitness::new(i as f64 + round as f64 * 0.5, false),
                );
            }
            store.save().unwrap();
        }
        let migrate_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(store);

        // Forced full load.
        let t = Instant::now();
        let mut store = FitnessStore::load(&dir);
        assert_eq!(store.len() as u64, records);
        let load_ms = t.elapsed().as_secs_f64() * 1e3;

        // Laziness: one cold get touches exactly one shard.
        let mut lazy = FitnessStore::load(&dir);
        assert!(lazy.get(&key(0)).is_some());
        let lazy_shards = lazy.shards_loaded();
        drop(lazy);

        // In-memory get latency over the loaded store.
        let probes = 10_000u64;
        let t = Instant::now();
        let mut live = 0u64;
        for p in 0..probes {
            live += store.get(&key(p % records)).is_some() as u64;
        }
        let get_us = t.elapsed().as_secs_f64() * 1e6 / probes as f64;
        assert_eq!(live, probes);

        // Full compaction wall (the dead generation goes away).
        let t = Instant::now();
        store.compact().unwrap();
        let compact_ms = t.elapsed().as_secs_f64() * 1e3;
        drop(store);

        // Contention: compact one shard in a tight loop; meanwhile
        // append to (and cold-read from) the *other* shards.
        let victim = shard_for(&key(0), shards);
        let stop = AtomicBool::new(false);
        let (save_ok, save_all, reads) = std::thread::scope(|s| {
            s.spawn(|| {
                let mut compactor = FitnessStore::load(&dir);
                while !stop.load(Ordering::Relaxed) {
                    compactor.compact_shard(victim).unwrap();
                }
            });
            let window = Duration::from_millis(300);
            let t = Instant::now();
            let mut writer = FitnessStore::load(&dir);
            let (mut ok, mut all) = (0u64, 0u64);
            let mut reads = 0u64;
            let mut i = 0u64;
            while t.elapsed() < window {
                // An append routed anywhere but the compacting shard.
                let k = key(records + i);
                if shard_for(&k, shards) != victim || shards == 1 {
                    writer.insert(k, StoredFitness::new(-1.0, false));
                    all += 1;
                    ok += (writer.save().unwrap() == SaveOutcome::Written) as u64;
                }
                // A cold read of a non-compacting shard (fresh handle:
                // hits the disk, not a warm index).
                let probe = key(i % records);
                if shard_for(&probe, shards) != victim {
                    let mut reader = FitnessStore::load(&dir);
                    assert!(reader.get(&probe).is_some(), "read blocked or lost");
                    reads += 1;
                }
                i += 1;
            }
            stop.store(true, Ordering::Relaxed);
            (ok, all, reads)
        });

        rows.push(vec![
            shards.to_string(),
            records.to_string(),
            format!("{migrate_ms:.1}"),
            format!("{load_ms:.1}"),
            lazy_shards.to_string(),
            format!("{get_us:.2}"),
            format!("{compact_ms:.1}"),
            format!(
                "{:.0}% ({save_ok}/{save_all})",
                100.0 * save_ok as f64 / save_all.max(1) as f64
            ),
            reads.to_string(),
        ]);
        testutil::remove_store(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);

    print_table(
        "Sharded store scaling (same records per geometry; reads verified during compaction)",
        &[
            "shards",
            "records",
            "migrate_ms",
            "load_ms",
            "lazy_shards",
            "get_us",
            "compact_ms",
            "save_ok_during",
            "reads_during",
        ],
        &rows,
    );
}
