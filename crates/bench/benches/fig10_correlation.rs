//! Figure 10 (appendix C): CDF of Pearson correlation between NCD scores
//! and BinHunt difference scores over BinTuner's iterations, for
//! 462.libquantum (LLVM) and 429.mcf (GCC).
//!
//! Reproduction target: a clear majority of windows show significant
//! positive correlation (paper: ~70% above 0.6).

use bench::{print_table, tune};
use bintuner::pearson;
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    let cases = vec![
        (
            CompilerKind::Llvm,
            corpus::by_name("462.libquantum").unwrap(),
        ),
        (CompilerKind::Gcc, corpus::by_name("429.mcf").unwrap()),
    ];
    for (kind, bench) in cases {
        let cc = Compiler::new(kind);
        let o0 = cc
            .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
            .unwrap();
        let result = tune(&bench, kind, 90, 0xF10);
        // Sample iterations and compute both scores per sample.
        let rows = result.db.rows();
        let step = (rows.len() / 36).max(1);
        let mut ncds = Vec::new();
        let mut bh = Vec::new();
        for r in rows.iter().step_by(step) {
            let bin = cc
                .compile(&bench.module, &r.flags, binrep::Arch::X86)
                .unwrap();
            ncds.push(r.ncd);
            bh.push(binhunt::diff_binaries_with_beam(&o0, &bin, 4).difference);
        }
        // Sliding-window correlations.
        let w = 10usize.min(ncds.len());
        let mut corrs = Vec::new();
        for i in 0..=ncds.len().saturating_sub(w) {
            corrs.push(pearson(&ncds[i..i + w], &bh[i..i + w]));
        }
        corrs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cdf_rows: Vec<Vec<String>> = (0..=10)
            .map(|k| {
                let t = k as f64 / 10.0;
                let frac =
                    corrs.iter().filter(|&&c| c <= t).count() as f64 / corrs.len().max(1) as f64;
                vec![format!("{t:.1}"), format!("{:.0}%", frac * 100.0)]
            })
            .collect();
        print_table(
            &format!("Figure 10 ({kind} & {}): correlation CDF", bench.name),
            &["corr ≤", "cumulative %"],
            &cdf_rows,
        );
        let overall = pearson(&ncds, &bh);
        let significant =
            corrs.iter().filter(|&&c| c > 0.6).count() as f64 / corrs.len().max(1) as f64;
        println!(
            "overall Pearson(NCD, BinHunt) = {overall:.2}; windows with corr > 0.6: {:.0}% (paper: ~70%)",
            significant * 100.0
        );
    }
}
