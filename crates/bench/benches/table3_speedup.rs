//! Table 3: average execution speedup of -O3 and BinTuner's output over
//! -O0, per suite and compiler (modelled cycles).
//!
//! Reproduction target: -O3 is faster than BinTuner's output almost
//! everywhere (BinTuner optimizes difference, not speed) — the paper's
//! single-objective-fitness caveat (§7).

use bench::{print_table, selected_benchmarks, tune};
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    let mut rows = Vec::new();
    for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
        let cc = Compiler::new(kind);
        let mut by_suite: std::collections::BTreeMap<&str, (Vec<f64>, Vec<f64>)> =
            Default::default();
        for bench in selected_benchmarks(true) {
            if corpus::excluded_for(kind).contains(&bench.name) {
                continue;
            }
            let o0 = cc
                .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
                .unwrap();
            let o3 = cc
                .compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86)
                .unwrap();
            let tuned = tune(&bench, kind, 80, 0x7AB3).best_binary;
            let inputs = &bench.test_inputs[0];
            let s3 = perfmodel::speedup(&o0, &o3, inputs).unwrap_or(0.0);
            let st = perfmodel::speedup(&o0, &tuned, inputs).unwrap_or(0.0);
            let e = by_suite.entry(bench.suite.name()).or_default();
            e.0.push(s3);
            e.1.push(st);
        }
        for (suite, (s3s, sts)) in by_suite {
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            rows.push(vec![
                kind.to_string(),
                suite.to_string(),
                format!("{:.1}%", avg(&s3s) * 100.0),
                format!("{:.1}%", avg(&sts) * 100.0),
            ]);
        }
    }
    print_table(
        "Table 3: average execution speedup over -O0 (modelled cycles)",
        &["compiler", "suite", "O3", "BinTuner"],
        &rows,
    );
    println!("paper shape: O3 ≥ BinTuner in nearly all cells (5-7% vs 4-5%)");
}
