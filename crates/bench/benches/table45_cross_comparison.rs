//! Tables 4 & 5: BinHunt cross-comparison matrices among all default
//! levels and BinTuner's output — Table 4: LLVM & 462.libquantum;
//! Table 5: GCC & Coreutils (including -Os).
//!
//! Reproduction target: BinTuner's row has the largest sum (it is the
//! most different from *every* other setting).

use bench::{full_run, print_table, tune};
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    run_case(
        "Table 4: LLVM 11.0 & 462.libquantum",
        CompilerKind::Llvm,
        corpus::by_name("462.libquantum").unwrap(),
        &[OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3],
    );
    let coreutils_case = if full_run() {
        corpus::coreutils()
    } else {
        // The quick run uses a smaller stand-in to bound the 15-pair
        // matrix; BINTUNER_FULL=1 uses the real Coreutils module.
        corpus::by_name("657.xz_s").unwrap()
    };
    run_case(
        &format!("Table 5: GCC 10.2 & {}", coreutils_case.name),
        CompilerKind::Gcc,
        coreutils_case,
        &[
            OptLevel::O0,
            OptLevel::O1,
            OptLevel::Os,
            OptLevel::O2,
            OptLevel::O3,
        ],
    );
}

fn run_case(title: &str, kind: CompilerKind, bench: corpus::Benchmark, levels: &[OptLevel]) {
    let cc = Compiler::new(kind);
    let mut named: Vec<(String, binrep::Binary)> = levels
        .iter()
        .map(|&l| {
            (
                l.name().trim_start_matches('-').to_string(),
                cc.compile_preset(&bench.module, l, binrep::Arch::X86)
                    .unwrap(),
            )
        })
        .collect();
    // Tables 4/5 hinge on BinTuner out-distancing *every* other setting,
    // so this harness affords it a larger budget than the sweep figures.
    named.push((
        "BinTuner".to_string(),
        tune(&bench, kind, 220, 0x7AB4).best_binary,
    ));
    let n = named.len();
    let mut matrix = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = binhunt::diff_binaries_with_beam(&named[i].1, &named[j].1, 5).difference;
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
    }
    let mut rows = Vec::new();
    let mut sums = Vec::new();
    for i in 0..n {
        let mut cells = vec![named[i].0.clone()];
        for (j, value) in matrix[i].iter().enumerate().take(n) {
            cells.push(if i == j {
                "–".to_string()
            } else {
                format!("{value:.2}")
            });
        }
        let sum: f64 = matrix[i].iter().sum();
        sums.push(sum);
        cells.push(format!("{sum:.2}"));
        rows.push(cells);
    }
    let mut headers: Vec<&str> = vec![""];
    let names: Vec<String> = named.iter().map(|(n, _)| n.clone()).collect();
    headers.extend(names.iter().map(String::as_str));
    headers.push("Sum");
    print_table(title, &headers, &rows);
    let tuner_sum = sums[n - 1];
    let max_other = sums[..n - 1].iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "BinTuner row sum {tuner_sum:.2} vs best other {max_other:.2} — most different: {}",
        if tuner_sum >= max_other { "yes" } else { "NO" }
    );
}
