//! Table 2: anti-virus scanners recognizing IoT malware variants
//! (LightAidra, BASHLIFE) across four ISAs, under the default build
//! (GCC -O2), GCC -O3, and BinTuner.
//!
//! Reproduction target: detection falls slightly at -O3 and by more than
//! half for BinTuner-tuned variants, with the survivors being the
//! data-section and API-set signatures (paper §5.5).

use avscan::Ensemble;
use bench::print_table;
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    let cc = Compiler::new(CompilerKind::Gcc);
    let mut rows = Vec::new();
    for family in [
        corpus::MalwareFamily::LightAidra,
        corpus::MalwareFamily::Bashlife,
    ] {
        let bench = corpus::malware(family, 0);
        let mut cells_default = vec![format!("{} Default (GCC -O2)", family.name())];
        let mut cells_o3 = vec![format!("{} GCC -O3", family.name())];
        let mut cells_tuned = vec![format!("{} BinTuner", family.name())];
        for arch in binrep::Arch::ALL {
            let reference = cc
                .compile_preset(&bench.module, OptLevel::O2, arch)
                .unwrap();
            // AV vendors sign the common (default-built) variant.
            let ensemble = Ensemble::from_reference(&reference, 48, arch as u64 ^ 0xAB);
            let o3 = cc
                .compile_preset(&bench.module, OptLevel::O3, arch)
                .unwrap();
            let tuned = {
                let config = bintuner::TunerConfig {
                    compiler: CompilerKind::Gcc,
                    arch,
                    termination: bench::budget(70),
                    seed: 0x7AB2 ^ arch as u64,
                    ..Default::default()
                };
                bintuner::Tuner::new(config)
                    .tune(&bench.module)
                    .expect("tuning run")
                    .best_binary
            };
            cells_default.push(ensemble.detection_count(&reference).to_string());
            cells_o3.push(ensemble.detection_count(&o3).to_string());
            cells_tuned.push(ensemble.detection_count(&tuned).to_string());
        }
        rows.push(cells_default);
        rows.push(cells_o3);
        rows.push(cells_tuned);
    }
    print_table(
        "Table 2: AV engines detecting each variant (of 48)",
        &["variant", "x86-32", "x86-64", "ARM", "MIPS"],
        &rows,
    );
    println!("paper shape: Default ≈ O3 >> BinTuner (drop of more than half);");
    println!("survivors match data-section strings / API sets, not code bytes.");
}
