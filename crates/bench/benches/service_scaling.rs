//! Service scaling: the sharded client–server evaluation backend
//! (`TunerConfig::backend = Service`) against the in-process engine, at
//! 1/2/4 worker clients on both transports — the deployment dimension of
//! the paper's §5 client–server implementation.
//!
//! Two things are asserted, not just printed:
//!
//! * **Bit-identity** — every service row must reproduce the in-process
//!   run's best flags and best NCD exactly (the differential suite pins
//!   the full trajectory; the bench re-checks the headline under bench
//!   budgets).
//! * **Farm accounting** — the clients' compile count must cover the
//!   engine's logical compile count (the farm really did the work).
//!
//! On a single-core host the multi-client rows measure dispatch +
//! framing overhead, not speedup — the host's parallelism is printed
//! alongside, as in the engine-scaling bench.

use bench::print_table;
use bintuner::{Backend, ServiceConfig, TransportKind, Tuner, TunerConfig};
use genetic::{GaParams, Termination};
use std::time::Instant;

fn base_config() -> TunerConfig {
    let evals = if bench::full_run() { 600 } else { 200 };
    TunerConfig {
        termination: Termination {
            max_evaluations: evals,
            min_evaluations: evals * 2 / 3,
            plateau_window: evals / 3,
            ..Default::default()
        },
        ga: GaParams {
            population: 24,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let bench_case = corpus::by_name("462.libquantum").expect("known benchmark");
    println!(
        "service scaling on {} (host parallelism: {cores})",
        bench_case.name
    );
    if cores == 1 {
        println!("  (no parallel speedup observable on this host: 1 CPU — multi-client rows measure dispatch overhead only)");
    }

    let t = Instant::now();
    let local = Tuner::new(base_config())
        .tune(&bench_case.module)
        .expect("in-process run");
    let local_wall = t.elapsed().as_secs_f64();

    let mut rows = vec![vec![
        "in-process".to_string(),
        "-".to_string(),
        local.iterations.to_string(),
        format!("{:.3}", local.best_ncd),
        format!("{local_wall:.2}"),
        local.engine_stats.compiles.to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]];
    for transport in [TransportKind::Channel, TransportKind::Unix] {
        for clients in [1usize, 2, 4] {
            let config = TunerConfig {
                backend: Backend::Service(ServiceConfig {
                    clients,
                    transport,
                    ..ServiceConfig::default()
                }),
                ..base_config()
            };
            let t = Instant::now();
            let result = Tuner::new(config)
                .tune(&bench_case.module)
                .expect("service run");
            let wall = t.elapsed().as_secs_f64();
            // The service backend is a deployment decision, never a
            // semantics decision: identical headline results required.
            assert_eq!(
                result.best_flags, local.best_flags,
                "{transport}/{clients} clients diverged from the in-process result"
            );
            assert_eq!(result.best_ncd.to_bits(), local.best_ncd.to_bits());
            let summary = result.service.expect("service telemetry");
            assert!(
                summary.farm_compiles >= result.engine_stats.compiles as u64,
                "farm compiles must cover the logical compiles"
            );
            rows.push(vec![
                transport.to_string(),
                clients.to_string(),
                result.iterations.to_string(),
                format!("{:.3}", result.best_ncd),
                format!("{wall:.2}"),
                result.engine_stats.compiles.to_string(),
                summary.shards.to_string(),
                summary.redispatched_shards.to_string(),
                summary.merged_records.to_string(),
            ]);
        }
    }
    print_table(
        "Service scaling (fixed seed; identical results asserted)",
        &[
            "backend", "clients", "iters", "ncd", "wall_s", "compiles", "shards", "redisp",
            "merged",
        ],
        &rows,
    );
    println!("service backend bit-identical to in-process on every row: OK");
}
