//! Figure 5: BinHunt difference scores of the dataset under various
//! optimization settings (LLVM 11.0 and GCC 10.2 profiles).
//!
//! Reproduction target (shape): BinTuner's outputs beat "O3 vs O0" in all
//! cases; -O3 ≈ -O2; Coreutils' GCC -Os can exceed -O3.

use bench::{print_table, selected_benchmarks, tune};
use minicc::{Compiler, CompilerKind, OptLevel};

fn main() {
    for kind in [CompilerKind::Llvm, CompilerKind::Gcc] {
        let cc = Compiler::new(kind);
        let excluded = corpus::excluded_for(kind);
        let first_level = match kind {
            CompilerKind::Llvm => OptLevel::O1,
            CompilerKind::Gcc => OptLevel::Os,
        };
        let mut rows = Vec::new();
        let mut improvements = Vec::new();
        for bench in selected_benchmarks(true) {
            if excluded.contains(&bench.name) {
                continue;
            }
            let o0 = cc
                .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
                .unwrap();
            let score =
                |bin: &binrep::Binary| binhunt::diff_binaries_with_beam(&o0, bin, 6).difference;
            let at = |l: OptLevel| {
                score(
                    &cc.compile_preset(&bench.module, l, binrep::Arch::X86)
                        .unwrap(),
                )
            };
            let tuned = tune(&bench, kind, 90, 0xF15);
            let d_first = at(first_level);
            let d2 = at(OptLevel::O2);
            let d3 = at(OptLevel::O3);
            let dt = score(&tuned.best_binary);
            let o3bin = cc
                .compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86)
                .unwrap();
            let dt_vs_o3 =
                binhunt::diff_binaries_with_beam(&o3bin, &tuned.best_binary, 6).difference;
            improvements.push((dt - d3) / d3.max(1e-9));
            rows.push(vec![
                bench.name.to_string(),
                format!("{d_first:.3}"),
                format!("{d2:.3}"),
                format!("{d3:.3}"),
                format!("{dt:.3}"),
                format!("{dt_vs_o3:.3}"),
                if dt > d3 { "yes".into() } else { "NO".into() },
            ]);
        }
        let avg = improvements.iter().sum::<f64>() / improvements.len().max(1) as f64;
        print_table(
            &format!("Figure 5 ({kind}): BinHunt difference scores vs O0"),
            &[
                "benchmark",
                &format!("{first_level} vs O0"),
                "O2 vs O0",
                "O3 vs O0",
                "BinTuner vs O0",
                "BinTuner vs O3",
                "tuned>O3",
            ],
            &rows,
        );
        println!(
            "average improvement of BinTuner over 'O3 vs O0': {:+.1}% (paper: +18% LLVM / +15% GCC)",
            avg * 100.0
        );
    }
}
