//! Staged compile pipeline: per-stage artifact reuse on representative
//! GA tunes — the perf trajectory behind the tier-0 artifact cache.
//!
//! A pre-artifact-cache engine runs the full three-stage pipeline for
//! every miss (`full_compiles == compiles`); the staged engine shares
//! the expensive early stages across candidates whose stage-key
//! projections agree. Wall-clock on this host is unreliable (1 CPU,
//! shared container), so the asserted quantity is the *count*:
//! `full_compiles` with the cache on must be strictly below the compile
//! count — which IS the pre-PR full-pipeline count, as the cache-off
//! control run demonstrates — with reuse counters > 0. Bit-identical
//! tuning results between the two runs are asserted as well.

use bench::print_table;
use bintuner::{TuneResult, Tuner, TunerConfig};
use genetic::GaParams;
use std::time::Instant;

fn config(artifact_cache: bool) -> TunerConfig {
    let evals = if bench::full_run() { 700 } else { 240 };
    TunerConfig {
        termination: bench::budget(evals),
        ga: GaParams {
            population: 24,
            ..Default::default()
        },
        workers: 1,
        artifact_cache,
        ..Default::default()
    }
}

fn run(bench_case: &corpus::Benchmark, artifact_cache: bool) -> (TuneResult, f64) {
    let tuner = Tuner::new(config(artifact_cache));
    let t = Instant::now();
    let result = tuner.tune(&bench_case.module).expect("tuning run");
    (result, t.elapsed().as_secs_f64())
}

fn main() {
    let cases = bench::quick_benchmarks();
    println!("staged compile pipeline: artifact reuse across GA candidates");
    let mut rows = Vec::new();
    for case in &cases {
        let (off, wall_off) = run(case, false);
        let (on, wall_on) = run(case, true);

        // The two runs are the same search — the cache may only change
        // how much of the pipeline each miss reran.
        assert_eq!(
            on.best_flags, off.best_flags,
            "{}: artifact cache changed the tuned result",
            case.name
        );
        assert_eq!(on.best_ncd.to_bits(), off.best_ncd.to_bits());
        assert_eq!(on.engine_stats.compiles, off.engine_stats.compiles);

        // The control run is the pre-PR engine: all misses full.
        let pre_pr_full = off.engine_stats.full_compiles;
        assert_eq!(pre_pr_full, off.engine_stats.compiles, "{}", case.name);

        // The asserted win: strictly fewer full pipelines, reuse > 0.
        let s = on.engine_stats;
        assert_eq!(s.compiles, s.full_compiles + s.ast_reuse + s.lower_reuse);
        assert!(
            s.full_compiles < pre_pr_full,
            "{}: full_compiles {} did not drop below pre-PR count {}",
            case.name,
            s.full_compiles,
            pre_pr_full
        );
        assert!(
            s.ast_reuse + s.lower_reuse > 0,
            "{}: no stage artifact was ever reused",
            case.name
        );

        rows.push(vec![
            case.name.to_string(),
            s.compiles.to_string(),
            pre_pr_full.to_string(),
            s.full_compiles.to_string(),
            s.ast_reuse.to_string(),
            s.lower_reuse.to_string(),
            format!("{:.1}%", 100.0 * s.stage_reuse_rate()),
            format!("{:.2}", wall_off),
            format!("{:.2}", wall_on),
        ]);
    }
    print_table(
        "Staged compile (fixed seed; identical tuned results asserted)",
        &[
            "benchmark",
            "compiles",
            "full(pre-PR)",
            "full(staged)",
            "ast_reuse",
            "lower_reuse",
            "reuse",
            "wall_off_s",
            "wall_on_s",
        ],
        &rows,
    );
    println!(
        "full_compiles strictly below the pre-PR full-pipeline count on every benchmark (asserted)"
    );
}
