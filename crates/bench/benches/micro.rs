//! Criterion micro-benchmarks backing the paper's performance claims:
//! NCD is a cheap fitness function (§4.2 reports two orders of magnitude
//! over BinDiff/BinHunt-score fitness), compilation and GA steps are
//! fast, and symbolic block summarization scales.

use criterion::{criterion_group, criterion_main, Criterion};
use minicc::{Compiler, CompilerKind, OptLevel};

fn bench_compression(c: &mut Criterion) {
    let bench = corpus::by_name("445.gobmk").unwrap();
    let cc = Compiler::new(CompilerKind::Gcc);
    let bin = cc
        .compile_preset(&bench.module, OptLevel::O2, binrep::Arch::X86)
        .unwrap();
    let code = binrep::encode_binary(&bin);
    c.bench_function("lzc_compress_code_section", |b| {
        b.iter(|| lzc::compressed_len(std::hint::black_box(&code)))
    });
}

fn bench_fitness_cost(c: &mut Criterion) {
    // The paper's §4.2 claim: NCD fitness is orders of magnitude cheaper
    // than a BinHunt-score fitness per iteration.
    let bench = corpus::by_name("429.mcf").unwrap();
    let cc = Compiler::new(CompilerKind::Gcc);
    let o0 = cc
        .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
        .unwrap();
    let o3 = cc
        .compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86)
        .unwrap();
    let baseline = lzc::NcdBaseline::new(binrep::encode_binary(&o0));
    let code3 = binrep::encode_binary(&o3);
    let mut g = c.benchmark_group("fitness_cost");
    g.bench_function("ncd_fitness", |b| {
        b.iter(|| baseline.score(std::hint::black_box(&code3)))
    });
    g.bench_function("binhunt_fitness", |b| {
        b.iter(|| binhunt::diff_binaries(std::hint::black_box(&o0), std::hint::black_box(&o3)))
    });
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let bench = corpus::by_name("462.libquantum").unwrap();
    let cc = Compiler::new(CompilerKind::Llvm);
    let flags = cc.profile().preset(OptLevel::O3);
    c.bench_function("compile_libquantum_O3", |b| {
        b.iter(|| {
            cc.compile(
                std::hint::black_box(&bench.module),
                std::hint::black_box(&flags),
                binrep::Arch::X86,
            )
            .unwrap()
        })
    });
}

fn bench_symbolic_summary(c: &mut Criterion) {
    let bench = corpus::by_name("445.gobmk").unwrap();
    let cc = Compiler::new(CompilerKind::Gcc);
    let bin = cc
        .compile_preset(&bench.module, OptLevel::O2, binrep::Arch::X86)
        .unwrap();
    c.bench_function("summarize_all_blocks", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for f in &bin.functions {
                for blk in &f.cfg.blocks {
                    let s = binhunt::summarize(std::hint::black_box(&blk.insns));
                    n += s.regs.len();
                }
            }
            n
        })
    });
}

fn bench_ga_generation(c: &mut Criterion) {
    use genetic::{Ga, GaParams, Termination};
    c.bench_function("ga_200_evaluations_onemax", |b| {
        b.iter(|| {
            let mut ga = Ga::new(120, GaParams::default(), 1);
            ga.run(
                |g| (g.iter().filter(|&&x| x).count() as f64, 0.0),
                |g, _| g.to_vec(),
                &Termination {
                    max_evaluations: 200,
                    plateau_growth: 0.0,
                    ..Default::default()
                },
            )
            .evaluations
        })
    });
}

fn bench_emulation(c: &mut Criterion) {
    let bench = corpus::by_name("429.mcf").unwrap();
    let cc = Compiler::new(CompilerKind::Gcc);
    let bin = cc
        .compile_preset(&bench.module, OptLevel::O2, binrep::Arch::X86)
        .unwrap();
    c.bench_function("emulate_mcf_run", |b| {
        b.iter(|| {
            emu::Machine::new(std::hint::black_box(&bin))
                .run(&[], &[3, 11], 5_000_000)
                .unwrap()
                .ret
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_compression,
    bench_fitness_cost,
    bench_compile,
    bench_symbolic_summary,
    bench_ga_generation,
    bench_emulation
);
criterion_main!(micro);
