//! Shared helpers for the reproduction harnesses.
//!
//! Every table and figure of the paper has a `[[bench]]` target
//! (harness = false) in this crate; `cargo bench` regenerates them all.
//! By default each harness runs a *representative subset* at reduced GA
//! budgets so the whole sweep stays laptop-scale; set `BINTUNER_FULL=1`
//! for the full 22-benchmark runs.

use bintuner::{TuneResult, Tuner, TunerConfig};
use corpus::Benchmark;
use genetic::{GaParams, Termination};
use minicc::CompilerKind;

/// Whether the full (slow) sweep was requested.
pub fn full_run() -> bool {
    std::env::var("BINTUNER_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The benchmarks exercised by default (one small, one vector-heavy, one
/// branchy SPEC program per generation, plus the two utility suites).
pub fn quick_benchmarks() -> Vec<Benchmark> {
    [
        "429.mcf",
        "462.libquantum",
        "445.gobmk",
        "605.mcf_s",
        "657.xz_s",
    ]
    .iter()
    .map(|n| corpus::by_name(n).expect("known benchmark"))
    .collect()
}

/// Benchmarks for a harness: quick subset or the full paper dataset.
pub fn selected_benchmarks(include_suites: bool) -> Vec<Benchmark> {
    let mut v = if full_run() {
        corpus::all_benign()
            .into_iter()
            .filter(|b| !matches!(b.suite, corpus::Suite::Coreutils | corpus::Suite::OpenSsl))
            .collect()
    } else {
        quick_benchmarks()
    };
    if include_suites {
        v.push(corpus::coreutils());
        v.push(corpus::openssl());
    }
    v
}

/// GA budget used by the harnesses.
pub fn budget(evals: usize) -> Termination {
    let evals = if full_run() { evals * 4 } else { evals };
    Termination {
        max_evaluations: evals,
        min_evaluations: evals * 2 / 3,
        plateau_window: evals / 3,
        plateau_growth: 0.0035,
        ..Default::default()
    }
}

/// Run BinTuner on a benchmark with a bounded budget.
pub fn tune(bench: &Benchmark, kind: CompilerKind, evals: usize, seed: u64) -> TuneResult {
    let config = TunerConfig {
        compiler: kind,
        termination: budget(evals),
        ga: GaParams {
            population: 12,
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    Tuner::new(config)
        .tune(&bench.module)
        .expect("benchmark module tunes")
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a table: header, rule, rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(String::len).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(4)
        })
        .collect();
    println!(
        "{}",
        row(
            &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
            &widths
        )
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for r in rows {
        println!("{}", row(r, &widths));
    }
}

/// Render an ASCII sparkline of a series (for the figure harnesses).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    if !lo.is_finite() || (hi - lo).abs() < 1e-12 {
        return "─".repeat(values.len());
    }
    values
        .iter()
        .map(|v| BARS[(((v - lo) / (hi - lo)) * 7.0).round() as usize])
        .collect()
}

/// Downsample a series to at most `n` points (for plotting).
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    if values.len() <= n || n == 0 {
        return values.to_vec();
    }
    (0..n)
        .map(|i| values[i * (values.len() - 1) / (n - 1)])
        .collect()
}
