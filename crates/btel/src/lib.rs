//! # btel — BinTuner's unified telemetry plane.
//!
//! Before this crate, the reproduction's telemetry was three islands
//! that could only be inspected after a run ended: `EngineStats`
//! counters, `ServiceStats` farm aggregates, and `DaemonMetrics`
//! atomics — each with its own hand-rolled rate math (two separate EWMA
//! implementations, three copies of hit-rate arithmetic). This crate is
//! the single substrate they all share:
//!
//! * **Metrics core** — [`Counter`] and [`Gauge`] are single relaxed
//!   atomics; [`Histogram`] is a fixed array of log2 buckets over
//!   microseconds (deterministic bucketing, no allocation on the hot
//!   path); [`Ewma`] is the one exponentially-weighted moving average,
//!   with the zero/NaN/negative sample guards both former copies
//!   needed. All live behind a [`Registry`] of named metric families
//!   with optional single-label children (per-tenant, per-client,
//!   per-tier).
//! * **Trace spans** — [`Tracer`] records [`SpanRecord`]s
//!   (`id`/`parent`, monotonic-clock offsets and durations) into a
//!   bounded ring buffer. Span ids are plain `u64`s, so a span context
//!   crosses process boundaries as one integer: a farm worker's stage
//!   spans parent to the dispatching server's shard span by carrying
//!   the server-issued id in their `parent` field.
//! * **Exposition** — [`Registry::render_text`] produces a
//!   Prometheus-style text page; [`spans_to_jsonl`] serializes a trace
//!   for offline profiling.
//!
//! ## The Off-mode purity contract
//!
//! Telemetry defaults to [`TelemetryMode::Off`] everywhere it is
//! threaded. In Off mode instrumented code takes *no* clock readings
//! and touches *no* telemetry state — the instrumented hot paths are
//! bit-identical to their pre-instrumentation selves, which is what
//! keeps the reproduction's trajectory differentials (in-process ≡
//! service ≡ process farm) meaningful.
//!
//! Monotonic-clock discipline: every duration in this crate comes from
//! [`std::time::Instant`]. The non-monotonic system wall clock never
//! appears on a hot path (CI grep-gates the identifier).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Whether a component records telemetry.
///
/// `Off` (the default) is a hard purity contract, not a filter: code
/// holding `Off` must not read clocks or touch telemetry state at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// No telemetry: bit-identical to pre-instrumentation behavior.
    #[default]
    Off,
    /// Record counters, histograms and trace spans.
    On,
}

impl TelemetryMode {
    /// Whether telemetry is enabled.
    pub fn is_on(self) -> bool {
        self == TelemetryMode::On
    }
}

/// The one shared ratio: `part / total`, defined as `0` when `total`
/// is zero. Replaces the three hand-rolled copies of hit-rate math
/// (engine stats, iteration database, bench output).
pub fn ratio(part: f64, total: f64) -> f64 {
    if total == 0.0 {
        0.0
    } else {
        part / total
    }
}

/// A monotonically increasing counter (one relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (one relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: values up to `2^31` µs (~36 minutes) get
/// their own bucket; everything larger lands in the last one.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket log2 histogram over microseconds.
///
/// Bucket `i` counts observations with `2^(i-1) ≤ µs < 2^i` (bucket 0
/// holds sub-microsecond observations). Bucketing is a pure function
/// of the observed duration — deterministic across runs — and
/// observation is a handful of relaxed atomic adds: no allocation, no
/// locks, no floating point on the hot path beyond the seconds→µs
/// conversion.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a duration in microseconds falls into.
    pub fn bucket_index(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Record one duration, given in seconds. Negative or non-finite
    /// measurements are dropped (a histogram of wall times must never
    /// be poisoned by a clock anomaly).
    pub fn observe_seconds(&self, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        self.observe_us((seconds * 1e6) as u64);
    }

    /// Record one duration in microseconds.
    pub fn observe_us(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative), in bucket order.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// The exponentially-weighted moving average — the single estimator
/// behind both the evaluation scheduler's per-client cost model and
/// the daemon's job-throughput rates.
///
/// The update is the *convex-combination* form
/// `v' = (1 − α)·v + α·x` (not the algebraically equal
/// `v + α·(x − v)`): the scheduler's shard-sizing tests pin exact
/// floating-point trajectories, so the unified estimator keeps the
/// form those bits were produced by.
///
/// Guards are shared by all users: non-finite or negative samples are
/// rejected (`observe` returns `false`) instead of poisoning the
/// average — the edge cases the daemon's former private copy ignored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// An empty estimator with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        Ewma { alpha, value: None }
    }

    /// Fold one sample in. The first accepted sample seeds the average
    /// outright. Returns whether the sample was accepted (non-finite
    /// and negative samples are dropped).
    pub fn observe(&mut self, x: f64) -> bool {
        if !x.is_finite() || x < 0.0 {
            return false;
        }
        self.value = Some(match self.value {
            None => x,
            Some(v) => (1.0 - self.alpha) * v + self.alpha * x,
        });
        true
    }

    /// The current average, `None` before the first accepted sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// What kind of metric a registry family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Log2 duration histogram.
    Histogram,
}

#[derive(Debug)]
enum Child {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Label key shared by every labeled child (single-label model:
    /// `tenant`, `client`, `tier`, `stage` — all this repo needs).
    label: Option<&'static str>,
    /// Children by label value; the unlabeled child keys on `""`.
    children: BTreeMap<String, Child>,
}

/// A registry of statically-declared metric families.
///
/// Declaration (`counter`/`gauge`/`histogram` and their `_with`
/// labeled variants) is lock-per-call and returns an `Arc` handle;
/// instrumented code resolves its handles **once** at construction and
/// then updates plain atomics — the registry lock is never on a hot
/// path. Re-declaring a family returns the existing child, so any
/// layer can ask for a handle without coordinating who was first.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn child(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        label: Option<(&'static str, &str)>,
    ) -> Child {
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            label: label.map(|(k, _)| k),
            children: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric family {name} redeclared as a different kind"
        );
        let value = label.map(|(_, v)| v).unwrap_or("");
        let child = family
            .children
            .entry(value.to_string())
            .or_insert_with(|| match kind {
                MetricKind::Counter => Child::Counter(Arc::new(Counter::new())),
                MetricKind::Gauge => Child::Gauge(Arc::new(Gauge::new())),
                MetricKind::Histogram => Child::Histogram(Arc::new(Histogram::new())),
            });
        match child {
            Child::Counter(c) => Child::Counter(Arc::clone(c)),
            Child::Gauge(g) => Child::Gauge(Arc::clone(g)),
            Child::Histogram(h) => Child::Histogram(Arc::clone(h)),
        }
    }

    /// Declare (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        match self.child(name, help, MetricKind::Counter, None) {
            Child::Counter(c) => c,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Declare (or fetch) a labeled counter child.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        value: &str,
    ) -> Arc<Counter> {
        match self.child(name, help, MetricKind::Counter, Some((label, value))) {
            Child::Counter(c) => c,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Declare (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        match self.child(name, help, MetricKind::Gauge, None) {
            Child::Gauge(g) => g,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Declare (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        match self.child(name, help, MetricKind::Histogram, None) {
            Child::Histogram(h) => h,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Declare (or fetch) a labeled histogram child.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        value: &str,
    ) -> Arc<Histogram> {
        match self.child(name, help, MetricKind::Histogram, Some((label, value))) {
            Child::Histogram(h) => h,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Read a counter child's value without keeping a handle (`None`
    /// when the family or child does not exist) — the introspection
    /// seam tests and benches use.
    pub fn counter_value(&self, name: &str, label_value: Option<&str>) -> Option<u64> {
        let families = self.families.lock().unwrap();
        match families
            .get(name)?
            .children
            .get(label_value.unwrap_or(""))?
        {
            Child::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Sorted label values of a family's children (the empty string is
    /// the unlabeled child).
    pub fn label_values(&self, name: &str) -> Vec<String> {
        self.families
            .lock()
            .unwrap()
            .get(name)
            .map(|f| f.children.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Render the whole registry as a Prometheus-style text page:
    /// `# HELP` / `# TYPE` headers per family, one sample line per
    /// child, `_bucket`/`_sum`/`_count` expansion for histograms.
    /// Families and children render in sorted order, so the page is
    /// deterministic given the metric values.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            let kind = match family.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (value, child) in &family.children {
                let labels = |extra: Option<(&str, String)>| -> String {
                    let mut parts = Vec::new();
                    if let (Some(key), false) = (family.label, value.is_empty()) {
                        parts.push(format!("{key}=\"{value}\""));
                    }
                    if let Some((k, v)) = extra {
                        parts.push(format!("{k}=\"{v}\""));
                    }
                    if parts.is_empty() {
                        String::new()
                    } else {
                        format!("{{{}}}", parts.join(","))
                    }
                };
                match child {
                    Child::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", labels(None), c.get()));
                    }
                    Child::Gauge(g) => {
                        out.push_str(&format!("{name}{} {}\n", labels(None), g.get()));
                    }
                    Child::Histogram(h) => {
                        let buckets = h.buckets();
                        let mut cumulative = 0u64;
                        for (i, b) in buckets.iter().enumerate() {
                            cumulative += b;
                            let le = if i == HISTOGRAM_BUCKETS - 1 {
                                "+Inf".to_string()
                            } else {
                                // Upper bound of bucket i is 2^i µs.
                                format!("{}", (1u64 << i) as f64 / 1e6)
                            };
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                labels(Some(("le", le))),
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            labels(None),
                            h.sum_us() as f64 / 1e6
                        ));
                        out.push_str(&format!("{name}_count{} {}\n", labels(None), h.count()));
                    }
                }
            }
        }
        out
    }
}

/// One recorded trace span. Offsets and durations are microseconds on
/// the recording tracer's monotonic clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within (at least) the issuing tracer.
    pub id: u64,
    /// Parent span id; `0` means root.
    pub parent: u64,
    /// Stage or operation name (`ast`, `lower`, `mir`, `dispatch`, …).
    pub name: String,
    /// Start offset from the recording tracer's epoch, µs.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Client id of the process that recorded the span (`0` for the
    /// server / in-process tracer; farm workers stamp their client id
    /// when spans are stitched in).
    pub client: u32,
}

struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    ring: Mutex<std::collections::VecDeque<SpanRecord>>,
    capacity: usize,
}

/// A trace-span recorder over a bounded ring buffer.
///
/// Cloning shares the buffer. A disabled tracer ([`Tracer::disabled`])
/// is a true no-op: `record` returns `0` without reading any clock, so
/// Off-mode code paths can hold one unconditionally.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A no-op tracer (the Off-mode default).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer with a ring of `capacity` spans; ids start at
    /// 1.
    pub fn enabled(capacity: usize) -> Tracer {
        Tracer::with_id_base(capacity, 0)
    }

    /// An enabled tracer whose span ids start at `id_base + 1` — farm
    /// workers use `(client_id + 1) << 48` so ids never collide with
    /// the server tracer's when traces are stitched.
    pub fn with_id_base(capacity: usize, id_base: u64) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(id_base + 1),
                ring: Mutex::new(std::collections::VecDeque::new()),
                capacity: capacity.max(1),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Reserve a span id without recording yet (for spans whose end is
    /// observed elsewhere, like a dispatch span closed by its result
    /// frame). Returns `0` when disabled.
    pub fn alloc_id(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.next_id.fetch_add(1, Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Record a completed span that started at `start`, allocating a
    /// fresh id. Returns the id (`0` when disabled).
    pub fn record(&self, name: &str, parent: u64, start: Instant) -> u64 {
        let id = self.alloc_id();
        if id != 0 {
            self.record_with_id(id, name, parent, start);
        }
        id
    }

    /// Record a completed span under a pre-allocated id.
    pub fn record_with_id(&self, id: u64, name: &str, parent: u64, start: Instant) {
        let Some(inner) = &self.inner else { return };
        let start_us = start
            .checked_duration_since(inner.epoch)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let dur_us = start.elapsed().as_micros() as u64;
        self.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us,
            dur_us,
            client: 0,
        });
    }

    /// Append pre-built spans (e.g. stitched in off the wire from a
    /// farm worker). No-op when disabled.
    pub fn import(&self, spans: impl IntoIterator<Item = SpanRecord>) {
        if self.inner.is_none() {
            return;
        }
        for s in spans {
            self.push(s);
        }
    }

    fn push(&self, span: SpanRecord) {
        let Some(inner) = &self.inner else { return };
        let mut ring = inner.ring.lock().unwrap();
        while ring.len() >= inner.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// Copy the buffered spans out, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|i| i.ring.lock().unwrap().iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Drain the buffered spans, oldest first (the farm worker's
    /// per-shard flush).
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|i| i.ring.lock().unwrap().drain(..).collect())
            .unwrap_or_default()
    }
}

/// Serialize spans as JSON Lines (one object per line) for offline
/// profiling — the `TunerConfig::trace_path` sink format. Names are
/// stage/operation identifiers from this codebase (no escaping needed
/// beyond quotes and backslashes, which are escaped anyway).
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let name = s.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"client\":{}}}\n",
            s.id, s.parent, name, s.start_us, s.dur_us, s.client
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_are_log2_and_deterministic() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let h = Histogram::new();
        h.observe_us(0);
        h.observe_us(3);
        h.observe_seconds(1e-6 * 3.0);
        h.observe_seconds(f64::NAN); // dropped
        h.observe_seconds(-1.0); // dropped
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.sum_us(), 6);
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        // The pinned values the daemon's former private copy carried:
        // α = 0.5, samples 10 → 10, 20 → 15, 15 → 15. All exact in
        // binary floating point, so they survive the unified
        // convex-combination form.
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert!(e.observe(10.0));
        assert_eq!(e.value(), Some(10.0));
        assert!(e.observe(20.0));
        assert_eq!(e.value(), Some(15.0));
        assert!(e.observe(15.0));
        assert_eq!(e.value(), Some(15.0));
    }

    #[test]
    fn ewma_guards_reject_poison_samples() {
        let mut e = Ewma::new(0.3);
        assert!(!e.observe(f64::NAN));
        assert!(!e.observe(f64::INFINITY));
        assert!(!e.observe(-0.5));
        assert_eq!(e.value(), None);
        assert!(e.observe(2.0));
        assert!(!e.observe(f64::NEG_INFINITY));
        assert_eq!(e.value(), Some(2.0));
    }

    #[test]
    fn ewma_matches_the_cost_model_update_bit_for_bit() {
        // The scheduler's former inline update, reproduced literally;
        // the unified estimator must track it to the last bit (its
        // shard-sizing tests pin exact values).
        const ALPHA: f64 = 0.3;
        let samples = [0.05, 0.2, 0.125, 1.75, 0.33, 0.05, 0.0001];
        let mut inline: Option<f64> = None;
        let mut unified = Ewma::new(ALPHA);
        for &per in &samples {
            inline = Some(match inline {
                None => per,
                Some(e) => (1.0 - ALPHA) * e + ALPHA * per,
            });
            assert!(unified.observe(per));
            assert_eq!(
                unified.value().unwrap().to_bits(),
                inline.unwrap().to_bits(),
                "EWMA form diverged at sample {per}"
            );
        }
    }

    #[test]
    fn registry_handles_are_shared_and_render_deterministically() {
        let reg = Registry::new();
        let a = reg.counter("bt_alpha_total", "first");
        let a2 = reg.counter("bt_alpha_total", "first");
        a.add(3);
        assert_eq!(a2.get(), 3, "re-declaration returns the same child");
        let t1 = reg.counter_with("bt_tier_hits", "per-tier", "tier", "1");
        let t0 = reg.counter_with("bt_tier_hits", "per-tier", "tier", "0");
        t1.add(2);
        t0.inc();
        let g = reg.gauge("bt_depth", "queue depth");
        g.set(5);
        assert_eq!(reg.counter_value("bt_alpha_total", None), Some(3));
        assert_eq!(reg.counter_value("bt_tier_hits", Some("1")), Some(2));
        assert_eq!(reg.counter_value("bt_tier_hits", Some("9")), None);
        assert_eq!(reg.label_values("bt_tier_hits"), vec!["0", "1"]);

        // Pinned golden exposition (counters + gauge; histogram page
        // pinned separately below).
        let expected = "\
# HELP bt_alpha_total first
# TYPE bt_alpha_total counter
bt_alpha_total 3
# HELP bt_depth queue depth
# TYPE bt_depth gauge
bt_depth 5
# HELP bt_tier_hits per-tier
# TYPE bt_tier_hits counter
bt_tier_hits{tier=\"0\"} 1
bt_tier_hits{tier=\"1\"} 2
";
        assert_eq!(reg.render_text(), expected);
    }

    #[test]
    fn histogram_exposition_is_cumulative_with_inf_tail() {
        let reg = Registry::new();
        let h = reg.histogram("bt_wall_seconds", "stage wall");
        h.observe_us(0); // bucket 0
        h.observe_us(3); // bucket 2
        let text = reg.render_text();
        assert!(text.contains("# TYPE bt_wall_seconds histogram"));
        assert!(text.contains("bt_wall_seconds_bucket{le=\"0.000001\"} 1"));
        // Bucket 2's upper bound is 4 µs; cumulative count reaches 2.
        assert!(text.contains("bt_wall_seconds_bucket{le=\"0.000004\"} 2"));
        assert!(text.contains("bt_wall_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("bt_wall_seconds_sum 0.000003"));
        assert!(text.contains("bt_wall_seconds_count 2"));
    }

    #[test]
    fn disabled_tracer_is_a_true_noop() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.alloc_id(), 0);
        assert_eq!(t.record("x", 0, Instant::now()), 0);
        t.import(vec![SpanRecord {
            id: 1,
            parent: 0,
            name: "x".into(),
            start_us: 0,
            dur_us: 0,
            client: 0,
        }]);
        assert!(t.snapshot().is_empty());
        assert!(t.drain().is_empty());
    }

    #[test]
    fn tracer_records_parents_and_bounds_the_ring() {
        let t = Tracer::enabled(3);
        let root = t.record("root", 0, Instant::now());
        assert_eq!(root, 1);
        for i in 0..5 {
            t.record(&format!("s{i}"), root, Instant::now());
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 3, "ring capacity bounds the buffer");
        assert!(spans.iter().all(|s| s.parent == root));
        assert_eq!(spans.last().unwrap().name, "s4");
        // Ids are unique and increasing.
        assert!(spans.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(t.drain().len(), 3);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn id_bases_partition_the_id_space() {
        let server = Tracer::enabled(8);
        let worker = Tracer::with_id_base(8, 3u64 << 48);
        let s = server.record("dispatch", 0, Instant::now());
        let w = worker.record("mir", s, Instant::now());
        assert_eq!(s, 1);
        assert_eq!(w, (3u64 << 48) + 1);
        assert_ne!(s, w);
    }

    #[test]
    fn jsonl_roundtrips_structure() {
        let spans = vec![
            SpanRecord {
                id: 2,
                parent: 1,
                name: "lower".into(),
                start_us: 10,
                dur_us: 25,
                client: 4,
            },
            SpanRecord {
                id: 3,
                parent: 0,
                name: "odd\"name\\".into(),
                start_us: 0,
                dur_us: 0,
                client: 0,
            },
        ];
        let jsonl = spans_to_jsonl(&spans);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"id\":2,\"parent\":1,\"name\":\"lower\",\"start_us\":10,\"dur_us\":25,\"client\":4}"
        );
        assert!(lines[1].contains("odd\\\"name\\\\"));
    }

    #[test]
    fn ratio_guards_zero_totals() {
        assert_eq!(ratio(1.0, 0.0), 0.0);
        assert_eq!(ratio(1.0, 4.0), 0.25);
        assert_eq!(ratio(0.0, 9.0), 0.0);
    }
}
