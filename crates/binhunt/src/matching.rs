//! Graph matching: CFG block matching with backtracking, call-graph
//! matching, and the BinHunt difference score (paper Appendix A):
//!
//! 1. block score: 1.0 same-register equivalent, 0.9 renamed, 0.0 else;
//! 2. CFG score: Σ block scores / min(|CFG₁|, |CFG₂|);
//! 3. CG score: Σ CFG scores / min(|CG₁|, |CG₂|);
//! 4. difference = 1.0 − CG score.

use crate::sym::{canonicalize, summarize, CanonicalSummary};
use binrep::{Binary, BlockId, Function};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A matched block pair with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMatch {
    /// Block in the first function.
    pub a: BlockId,
    /// Block in the second function.
    pub b: BlockId,
    /// 1.0 or 0.9.
    pub score: f64,
}

/// The result of matching two functions' CFGs.
#[derive(Debug, Clone, PartialEq)]
pub struct CfgMatch {
    /// Matched block pairs.
    pub blocks: Vec<BlockMatch>,
    /// CFG matching score (Appendix A step 2).
    pub score: f64,
    /// Number of matched CFG edges (both endpoints matched consistently).
    pub matched_edges: usize,
}

struct FnIndex {
    // canonical summary hash → blocks
    by_canon: HashMap<u64, Vec<BlockId>>,
    canon: BTreeMap<BlockId, u64>,
    exact: BTreeMap<BlockId, u64>,
    succs: BTreeMap<BlockId, Vec<BlockId>>,
    n_blocks: usize,
}

fn hash_canon(c: &CanonicalSummary) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    c.hash(&mut h);
    h.finish()
}

fn hash_exact(s: &crate::sym::BlockSummary) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    format!("{s:?}").hash(&mut h);
    h.finish()
}

fn index_function(f: &Function) -> FnIndex {
    let mut by_canon: HashMap<u64, Vec<BlockId>> = HashMap::new();
    let mut canon = BTreeMap::new();
    let mut exact = BTreeMap::new();
    let mut succs = BTreeMap::new();
    for b in &f.cfg.blocks {
        let summary = summarize(&b.insns);
        let c = hash_canon(&canonicalize(&summary));
        let e = hash_exact(&summary);
        by_canon.entry(c).or_default().push(b.id);
        canon.insert(b.id, c);
        exact.insert(b.id, e);
        succs.insert(b.id, b.term.successors());
    }
    FnIndex {
        by_canon,
        canon,
        exact,
        succs,
        n_blocks: f.cfg.blocks.len(),
    }
}

/// Match two functions' CFGs: structure-guided greedy matching over
/// equivalence classes with one level of backtracking (re-seating a
/// tentative match when a structurally better candidate appears).
pub fn match_cfgs(fa: &Function, fb: &Function) -> CfgMatch {
    let ia = index_function(fa);
    let ib = index_function(fb);
    let mut matched_a: BTreeMap<BlockId, BlockId> = BTreeMap::new();
    let mut matched_b: BTreeSet<BlockId> = BTreeSet::new();

    // Seed from the entry blocks if equivalent, then grow along edges
    // (BinHunt grows its isomorphism from matched seeds).
    let mut work: Vec<(BlockId, BlockId)> = Vec::new();
    if ia.canon.get(&fa.cfg.entry) == ib.canon.get(&fb.cfg.entry) {
        work.push((fa.cfg.entry, fb.cfg.entry));
    }
    while let Some((a, b)) = work.pop() {
        if matched_a.contains_key(&a) || matched_b.contains(&b) {
            continue;
        }
        if ia.canon[&a] != ib.canon[&b] {
            continue;
        }
        matched_a.insert(a, b);
        matched_b.insert(b);
        // Propagate along successor edges pairwise in order.
        let sa = &ia.succs[&a];
        let sb = &ib.succs[&b];
        for (x, y) in sa.iter().zip(sb.iter()) {
            if !matched_a.contains_key(x) && !matched_b.contains(y) {
                work.push((*x, *y));
            }
        }
    }
    // Global pass: match remaining blocks by equivalence class.
    for (c, blocks_a) in &ia.by_canon {
        if let Some(blocks_b) = ib.by_canon.get(c) {
            let mut free_b: Vec<BlockId> = blocks_b
                .iter()
                .copied()
                .filter(|b| !matched_b.contains(b))
                .collect();
            for a in blocks_a {
                if matched_a.contains_key(a) {
                    continue;
                }
                // Prefer a b whose matched predecessors align (one-step
                // structural backtracking).
                let pick = free_b
                    .iter()
                    .position(|b| {
                        ia.succs[a]
                            .iter()
                            .zip(ib.succs[b].iter())
                            .any(|(x, y)| matched_a.get(x) == Some(y))
                    })
                    .or(if free_b.is_empty() { None } else { Some(0) });
                if let Some(i) = pick {
                    let b = free_b.remove(i);
                    matched_a.insert(*a, b);
                    matched_b.insert(b);
                }
            }
        }
    }

    // Score: exact-hash equality → 1.0, canonical-only → 0.9.
    let mut blocks = Vec::new();
    let mut total = 0.0;
    for (a, b) in &matched_a {
        let score = if ia.exact[a] == ib.exact[b] { 1.0 } else { 0.9 };
        total += score;
        blocks.push(BlockMatch {
            a: *a,
            b: *b,
            score,
        });
    }
    let denom = ia.n_blocks.min(ib.n_blocks).max(1) as f64;
    // Matched edges: (a1→a2) where both endpoints map to an edge in b.
    let mut matched_edges = 0;
    for (a, succs) in &ia.succs {
        if let Some(b) = matched_a.get(a) {
            for a2 in succs {
                if let Some(b2) = matched_a.get(a2) {
                    if ib.succs[b].contains(b2) {
                        matched_edges += 1;
                    }
                }
            }
        }
    }
    CfgMatch {
        blocks,
        score: (total / denom).min(1.0),
        matched_edges,
    }
}

/// A matched function pair.
#[derive(Debug, Clone)]
pub struct FuncMatch {
    /// Index into `a.functions`.
    pub a: usize,
    /// Index into `b.functions`.
    pub b: usize,
    /// CFG matching score.
    pub score: f64,
    /// Matched edge count.
    pub matched_edges: usize,
    /// Matched block count.
    pub matched_blocks: usize,
}

/// Full binary diff report.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Matched function pairs.
    pub functions: Vec<FuncMatch>,
    /// BinHunt difference score: 1.0 − CG matching score (higher = more
    /// different).
    pub difference: f64,
    /// Total blocks matched / min(total blocks).
    pub matched_block_ratio: f64,
    /// Total CFG edges matched / min(total edges).
    pub matched_edge_ratio: f64,
    /// Non-library functions matched / min(non-library function count).
    pub matched_function_ratio: f64,
}

/// Candidate pruning: cheap structural signature distance.
fn signature(f: &Function) -> (usize, usize, usize) {
    let feats = binrep::function_features(f);
    (feats.blocks, feats.edges, feats.insns)
}

fn sig_distance(a: (usize, usize, usize), b: (usize, usize, usize)) -> usize {
    a.0.abs_diff(b.0) * 4 + a.1.abs_diff(b.1) * 2 + a.2.abs_diff(b.2)
}

/// Compare two binaries with BinHunt's algorithm, producing the
/// difference score and matching statistics.
///
/// Function pairs are pruned by structural signature (top `beam`
/// candidates per function) before full CFG matching — the practical
/// concession BinHunt's backtracking also needs.
pub fn diff_binaries(a: &Binary, b: &Binary) -> DiffReport {
    diff_binaries_with_beam(a, b, 8)
}

/// [`diff_binaries`] with an explicit candidate beam width.
pub fn diff_binaries_with_beam(a: &Binary, b: &Binary, beam: usize) -> DiffReport {
    let sigs_b: Vec<(usize, (usize, usize, usize))> = b
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (i, signature(f)))
        .collect();
    // Score candidate pairs.
    let mut scored: Vec<FuncMatch> = Vec::new();
    for (ia, fa) in a.functions.iter().enumerate() {
        let sa = signature(fa);
        let mut cands: Vec<(usize, usize)> = sigs_b
            .iter()
            .map(|(ib, sb)| (sig_distance(sa, *sb), *ib))
            .collect();
        cands.sort();
        for &(_, ib) in cands.iter().take(beam) {
            let m = match_cfgs(fa, &b.functions[ib]);
            if m.score > 0.0 {
                scored.push(FuncMatch {
                    a: ia,
                    b: ib,
                    score: m.score,
                    matched_edges: m.matched_edges,
                    matched_blocks: m.blocks.len(),
                });
            }
        }
    }
    // Greedy maximum-weight assignment.
    scored.sort_by(|x, y| y.score.partial_cmp(&x.score).unwrap());
    let mut used_a = BTreeSet::new();
    let mut used_b = BTreeSet::new();
    let mut functions = Vec::new();
    for m in scored {
        if used_a.contains(&m.a) || used_b.contains(&m.b) {
            continue;
        }
        used_a.insert(m.a);
        used_b.insert(m.b);
        functions.push(m);
    }

    let cg_denom = a.functions.len().min(b.functions.len()).max(1) as f64;
    let cg_score: f64 = functions.iter().map(|m| m.score).sum::<f64>() / cg_denom;
    let difference = (1.0 - cg_score).clamp(0.0, 1.0);

    let blocks_a: usize = a.functions.iter().map(|f| f.cfg.len()).sum();
    let blocks_b: usize = b.functions.iter().map(|f| f.cfg.len()).sum();
    let matched_blocks: usize = functions.iter().map(|m| m.matched_blocks).sum();
    let edges_a: usize = a.functions.iter().map(|f| f.cfg.edges().len()).sum();
    let edges_b: usize = b.functions.iter().map(|f| f.cfg.edges().len()).sum();
    let matched_edges: usize = functions.iter().map(|m| m.matched_edges).sum();
    let nonlib = |bin: &Binary| bin.functions.iter().filter(|f| !f.is_library).count();
    let matched_funcs = functions
        .iter()
        .filter(|m| m.score > 0.25 && !a.functions[m.a].is_library && !b.functions[m.b].is_library)
        .count();

    DiffReport {
        difference,
        matched_block_ratio: matched_blocks as f64 / blocks_a.min(blocks_b).max(1) as f64,
        matched_edge_ratio: matched_edges as f64 / edges_a.min(edges_b).max(1) as f64,
        matched_function_ratio: matched_funcs as f64 / nonlib(a).min(nonlib(b)).max(1) as f64,
        functions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binrep::{Arch, Block, Cond, FuncId, Gpr, Insn, Opcode, Terminator};

    fn sample_fn(name: &str, imm: i64) -> Function {
        let mut f = Function::new(FuncId(0), name, 1);
        let t = f.cfg.fresh_id();
        let e = f.cfg.fresh_id();
        let j = f.cfg.fresh_id();
        {
            let blk = f.cfg.block_mut(BlockId(0));
            blk.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ecx));
            blk.insns.push(Insn::op2(Opcode::Cmp, Gpr::Eax, imm));
            blk.term = Terminator::Branch {
                cond: Cond::B,
                then_bb: t,
                else_bb: e,
            };
        }
        f.cfg.push(Block::new(
            t,
            vec![Insn::op2(Opcode::Add, Gpr::Eax, 1i64)],
            Terminator::Jmp(j),
        ));
        f.cfg.push(Block::new(
            e,
            vec![Insn::op2(Opcode::Sub, Gpr::Eax, 1i64)],
            Terminator::Jmp(j),
        ));
        f.cfg.push(Block::new(j, vec![], Terminator::Ret));
        f
    }

    #[test]
    fn identical_functions_match_fully() {
        let f = sample_fn("f", 10);
        let m = match_cfgs(&f, &f);
        assert_eq!(m.blocks.len(), 4);
        assert!((m.score - 1.0).abs() < 1e-9);
        assert_eq!(m.matched_edges, 4);
    }

    #[test]
    fn different_constants_reduce_matching() {
        let f = sample_fn("f", 10);
        let g = sample_fn("f", 999);
        let m = match_cfgs(&f, &g);
        // Entry blocks differ (different cmp constant), add/sub/join match.
        assert!(m.score < 1.0);
        assert!(m.score > 0.4);
    }

    #[test]
    fn diff_score_zero_for_identical_binaries() {
        let mut bin = Binary::new("x", Arch::X86);
        bin.functions.push(sample_fn("f", 10));
        let report = diff_binaries(&bin, &bin);
        assert!(report.difference < 0.01, "{}", report.difference);
        assert!((report.matched_block_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn diff_score_high_for_unrelated_binaries() {
        let mut a = Binary::new("a", Arch::X86);
        a.functions.push(sample_fn("f", 10));
        let mut b = Binary::new("b", Arch::X86);
        let mut g = Function::new(FuncId(0), "g", 0);
        g.cfg.block_mut(BlockId(0)).insns = vec![
            Insn::op2(Opcode::Imul, Gpr::Ebx, Gpr::Ebx),
            Insn::op2(Opcode::Xor, Gpr::Eax, Gpr::Ebx),
            Insn::op2(Opcode::Udiv, Gpr::Eax, 77i64),
        ];
        b.functions.push(g);
        let report = diff_binaries(&a, &b);
        assert!(report.difference > 0.6, "{}", report.difference);
    }

    #[test]
    fn renamed_registers_give_point_nine_per_block() {
        let f = sample_fn("f", 10);
        let mut g = f.clone();
        // Rename eax→esi throughout g.
        for b in &mut g.cfg.blocks {
            for i in &mut b.insns {
                let ren = |o: &mut Option<binrep::Operand>| {
                    if let Some(binrep::Operand::Reg(r)) = o {
                        if *r == Gpr::Eax {
                            *o = Some(binrep::Operand::Reg(Gpr::Esi));
                        }
                    }
                };
                ren(&mut i.a);
                ren(&mut i.b);
            }
        }
        let m = match_cfgs(&f, &g);
        assert_eq!(m.blocks.len(), 4);
        // Three blocks are renamed (0.9); the empty join matches 1.0.
        let total: f64 = m.blocks.iter().map(|b| b.score).sum();
        assert!((total - (0.9 * 3.0 + 1.0)).abs() < 1e-9, "{total}");
    }
}
