//! # binhunt — the reference semantic binary differ
//!
//! Re-implementation of BinHunt (Gao, Reiter, Song — ICICS '08) at the
//! fidelity the paper's evaluation requires: symbolic execution with a
//! normalizing term rewriter decides basic-block equivalence ([`sym`]),
//! structure-guided matching with backtracking aligns CFGs and the call
//! graph ([`matching`]), and the difference score follows the paper's
//! Appendix A exactly. The score ranges 0.0–1.0; **higher means more
//! different**. BinTuner uses this score as its *objective reference*
//! (too expensive for a fitness function — see the `fitness_cost` bench).
//!
//! ## Example
//!
//! ```
//! use minicc::{Compiler, CompilerKind, OptLevel};
//!
//! let bench = corpus::by_name("429.mcf").unwrap();
//! let cc = Compiler::new(CompilerKind::Gcc);
//! let o0 = cc.compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86).unwrap();
//! let o3 = cc.compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86).unwrap();
//! let report = binhunt::diff_binaries(&o0, &o3);
//! assert!(report.difference > 0.0 && report.difference <= 1.0);
//! ```

#![warn(missing_docs)]

pub mod matching;
pub mod sym;

pub use matching::{
    diff_binaries, diff_binaries_with_beam, match_cfgs, BlockMatch, CfgMatch, DiffReport, FuncMatch,
};
pub use sym::{block_score, canonicalize, summarize, BlockSummary, Term};

#[cfg(test)]
mod tests {
    use minicc::{Compiler, CompilerKind, OptLevel};

    #[test]
    fn optimization_levels_are_ordered_by_difference() {
        let bench = corpus::by_name("429.mcf").unwrap();
        let cc = Compiler::new(CompilerKind::Gcc);
        let o0 = cc
            .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
            .unwrap();
        let o1 = cc
            .compile_preset(&bench.module, OptLevel::O1, binrep::Arch::X86)
            .unwrap();
        let o3 = cc
            .compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86)
            .unwrap();
        let d_self = crate::diff_binaries(&o0, &o0).difference;
        let d1 = crate::diff_binaries(&o0, &o1).difference;
        let d3 = crate::diff_binaries(&o0, &o3).difference;
        assert!(d_self < 0.05, "self-diff {d_self}");
        assert!(d1 > d_self, "O1 {d1} vs self {d_self}");
        assert!(d3 > d1, "O3 {d3} vs O1 {d1}");
        assert!(d3 < 1.0);
    }

    #[test]
    fn wrong_pair_comparison_is_near_maximal() {
        // §5.1: BinTuner-vs-O0 approaches the wrong-pair distance
        // (Coreutils vs OpenSSL ≈ 0.79). Here: two unrelated benchmarks.
        let cc = Compiler::new(CompilerKind::Gcc);
        let a = corpus::by_name("429.mcf").unwrap();
        let b = corpus::by_name("462.libquantum").unwrap();
        let ba = cc
            .compile_preset(&a.module, OptLevel::O2, binrep::Arch::X86)
            .unwrap();
        let bb = cc
            .compile_preset(&b.module, OptLevel::O2, binrep::Arch::X86)
            .unwrap();
        let d = crate::diff_binaries(&ba, &bb).difference;
        assert!(d > 0.5, "wrong-pair difference {d}");
    }

    #[test]
    fn matched_ratios_decline_with_optimization() {
        let bench = corpus::by_name("605.mcf_s").unwrap();
        let cc = Compiler::new(CompilerKind::Llvm);
        let o0 = cc
            .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
            .unwrap();
        let o1 = cc
            .compile_preset(&bench.module, OptLevel::O1, binrep::Arch::X86)
            .unwrap();
        let o3 = cc
            .compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86)
            .unwrap();
        let r1 = crate::diff_binaries(&o0, &o1);
        let r3 = crate::diff_binaries(&o0, &o3);
        assert!(
            r3.matched_block_ratio <= r1.matched_block_ratio + 1e-9,
            "blocks {} vs {}",
            r3.matched_block_ratio,
            r1.matched_block_ratio
        );
    }
}
