//! Symbolic execution of basic blocks and the normalizing term rewriter.
//!
//! BinHunt (ICICS '08) matches "functionally equivalent basic blocks" using
//! symbolic execution and theorem proving. Here each block is executed
//! symbolically into a [`BlockSummary`] — the terms its written registers,
//! memory writes, and FLAGS evaluate to as functions of the initial state —
//! and summaries are normalized (constant folding, commutative sorting,
//! algebraic identities) so that syntactically different but semantically
//! equal blocks compare equal. Register-renamed equivalence is detected by
//! canonicalizing register names, giving the paper's 1.0 / 0.9 block
//! scores (Appendix A).

use binrep::{Cond, Gpr, Insn, MemRef, Opcode, Operand, Xmm};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A symbolic term over the block's initial state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// 32-bit constant.
    Const(u32),
    /// Initial value of a register at block entry. The `u8` is the
    /// (possibly canonicalized) register number.
    Init(u8),
    /// Initial value of a vector register lane.
    InitVec(u8, u8),
    /// Load from a symbolic address (sequence number orders loads after
    /// stores conservatively).
    Load(Rc<Term>, u32),
    /// Binary operation.
    Bin(TermOp, Rc<Term>, Rc<Term>),
    /// Bitwise/arithmetic unary operation.
    Un(TermUn, Rc<Term>),
    /// If-then-else on a comparison (from `cmov`/`set`).
    Ite(Rc<CondTerm>, Rc<Term>, Rc<Term>),
    /// 0/1 value of a condition (from `set`).
    Bool(Rc<CondTerm>),
    /// Result of a call instruction (calls are opaque; the `u32`
    /// sequence number distinguishes multiple calls).
    CallResult(u32, u32),
    /// Unknown value (clobbered caller-saved register after a call).
    Havoc(u32, u8),
}

/// Binary operators in terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum TermOp {
    Add,
    Sub,
    Mul,
    MulH,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

/// Unary operators in terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum TermUn {
    Not,
    Neg,
}

/// A comparison condition as a term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondTerm {
    /// Condition code.
    pub cond: Cond,
    /// Left comparand.
    pub a: Rc<Term>,
    /// Right comparand.
    pub b: Rc<Term>,
    /// Whether the comparison came from `test` (a & b) rather than `cmp`.
    pub is_test: bool,
}

impl TermOp {
    fn commutative(self) -> bool {
        matches!(
            self,
            TermOp::Add | TermOp::Mul | TermOp::And | TermOp::Or | TermOp::Xor | TermOp::MulH
        )
    }

    fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            TermOp::Add => a.wrapping_add(b),
            TermOp::Sub => a.wrapping_sub(b),
            TermOp::Mul => a.wrapping_mul(b),
            TermOp::MulH => (((a as u64) * (b as u64)) >> 32) as u32,
            TermOp::Div => a.checked_div(b).unwrap_or(0),
            TermOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            TermOp::And => a & b,
            TermOp::Or => a | b,
            TermOp::Xor => a ^ b,
            TermOp::Shl => a.checked_shl(b & 31).unwrap_or(0),
            TermOp::Shr => a.checked_shr(b & 31).unwrap_or(0),
            TermOp::Sar => ((a as i32) >> (b & 31)) as u32,
        }
    }
}

/// Build a normalized binary term.
pub fn bin(op: TermOp, a: Rc<Term>, b: Rc<Term>) -> Rc<Term> {
    // Constant folding.
    if let (Term::Const(x), Term::Const(y)) = (&*a, &*b) {
        return Rc::new(Term::Const(op.eval(*x, *y)));
    }
    // Identities.
    match (op, &*a, &*b) {
        (TermOp::Add | TermOp::Sub | TermOp::Or | TermOp::Xor, _, Term::Const(0)) => return a,
        (TermOp::Add | TermOp::Or | TermOp::Xor, Term::Const(0), _) => return b,
        (TermOp::Mul, _, Term::Const(1)) => return a,
        (TermOp::Mul, Term::Const(1), _) => return b,
        (TermOp::Mul | TermOp::And, _, Term::Const(0)) => return Rc::new(Term::Const(0)),
        (TermOp::Mul | TermOp::And, Term::Const(0), _) => return Rc::new(Term::Const(0)),
        (TermOp::Shl | TermOp::Shr | TermOp::Sar, _, Term::Const(0)) => return a,
        (TermOp::Sub | TermOp::Xor, x, y) if x == y => return Rc::new(Term::Const(0)),
        // x*2^k ↔ x<<k: canonicalize to shifts.
        (TermOp::Mul, _, Term::Const(c)) if c.is_power_of_two() => {
            return bin(TermOp::Shl, a, Rc::new(Term::Const(c.trailing_zeros())));
        }
        (TermOp::Mul, Term::Const(c), _) if c.is_power_of_two() => {
            return bin(TermOp::Shl, b, Rc::new(Term::Const(c.trailing_zeros())));
        }
        // x/2^k ↔ x>>k.
        (TermOp::Div, _, Term::Const(c)) if c.is_power_of_two() => {
            return bin(TermOp::Shr, a, Rc::new(Term::Const(c.trailing_zeros())));
        }
        // x%2^k ↔ x & (2^k - 1).
        (TermOp::Rem, _, Term::Const(c)) if c.is_power_of_two() => {
            return bin(TermOp::And, a, Rc::new(Term::Const(c - 1)));
        }
        _ => {}
    }
    // (x op c1) op c2 → x op (c1 op c2) for associative ops with consts.
    if matches!(
        op,
        TermOp::Add | TermOp::Mul | TermOp::And | TermOp::Or | TermOp::Xor
    ) {
        if let Term::Const(c2) = &*b {
            if let Term::Bin(op2, x, c1) = &*a {
                if *op2 == op {
                    if let Term::Const(c1) = &**c1 {
                        return bin(op, x.clone(), Rc::new(Term::Const(op.eval(*c1, *c2))));
                    }
                }
            }
        }
    }
    // x - c → x + (-c): canonicalize subtraction of constants.
    if op == TermOp::Sub {
        if let Term::Const(c) = &*b {
            return bin(TermOp::Add, a, Rc::new(Term::Const(c.wrapping_neg())));
        }
    }
    // Commutative argument ordering.
    let (a, b) = if op.commutative() && b < a {
        (b, a)
    } else {
        (a, b)
    };
    Rc::new(Term::Bin(op, a, b))
}

/// Build a normalized unary term.
pub fn un(op: TermUn, a: Rc<Term>) -> Rc<Term> {
    match (&op, &*a) {
        (TermUn::Not, Term::Const(c)) => return Rc::new(Term::Const(!c)),
        (TermUn::Neg, Term::Const(c)) => return Rc::new(Term::Const(c.wrapping_neg())),
        (TermUn::Not, Term::Un(TermUn::Not, x)) => return x.clone(),
        (TermUn::Neg, Term::Un(TermUn::Neg, x)) => return x.clone(),
        _ => {}
    }
    Rc::new(Term::Un(op, a))
}

/// The FLAGS state after the last flag-writing instruction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlagsState {
    /// Unknown / untouched since block entry.
    Entry,
    /// Set by `cmp a, b` (or a subtraction).
    Cmp(Rc<Term>, Rc<Term>),
    /// Set by `test a, b` (or a logic op against zero).
    Test(Rc<Term>, Rc<Term>),
    /// Clobbered by a call or a non-comparison ALU op on `t`.
    Alu(Rc<Term>),
    /// Clobbered unpredictably.
    Havoc(u32),
}

/// The symbolic effect of one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSummary {
    /// Final values of registers *written* by the block.
    pub regs: BTreeMap<u8, Rc<Term>>,
    /// Memory writes in order: (address, value).
    pub stores: Vec<(Rc<Term>, Rc<Term>)>,
    /// FLAGS at block exit.
    pub flags: FlagsState,
    /// Number of call instructions (calls are ordered side effects).
    pub calls: Vec<u32>,
}

struct SymState {
    regs: BTreeMap<Gpr, Rc<Term>>,
    vregs: BTreeMap<Xmm, [Rc<Term>; 4]>,
    stores: Vec<(Rc<Term>, Rc<Term>)>,
    flags: FlagsState,
    load_seq: u32,
    call_seq: u32,
    calls: Vec<u32>,
    written: std::collections::BTreeSet<Gpr>,
}

impl SymState {
    fn new() -> SymState {
        SymState {
            regs: BTreeMap::new(),
            vregs: BTreeMap::new(),
            stores: Vec::new(),
            flags: FlagsState::Entry,
            load_seq: 0,
            call_seq: 0,
            calls: Vec::new(),
            written: Default::default(),
        }
    }

    fn reg(&mut self, r: Gpr) -> Rc<Term> {
        self.regs
            .entry(r)
            .or_insert_with(|| Rc::new(Term::Init(r.number())))
            .clone()
    }

    fn set_reg(&mut self, r: Gpr, t: Rc<Term>) {
        self.written.insert(r);
        self.regs.insert(r, t);
    }

    fn vreg(&mut self, x: Xmm) -> [Rc<Term>; 4] {
        self.vregs
            .entry(x)
            .or_insert_with(|| [0, 1, 2, 3].map(|l| Rc::new(Term::InitVec(x.0, l))))
            .clone()
    }

    fn addr(&mut self, m: &MemRef) -> Rc<Term> {
        let mut t = Rc::new(Term::Const(m.disp as u32));
        if let Some(b) = m.base {
            t = bin(TermOp::Add, t, self.reg(b));
        }
        if let Some(i) = m.index {
            let idx = bin(
                TermOp::Mul,
                self.reg(i),
                Rc::new(Term::Const(m.scale as u32)),
            );
            t = bin(TermOp::Add, t, idx);
        }
        t
    }

    fn load(&mut self, addr: Rc<Term>) -> Rc<Term> {
        // Forwarding: the most recent store to a syntactically equal
        // address supplies the value.
        for (a, v) in self.stores.iter().rev() {
            if *a == addr {
                return v.clone();
            }
        }
        self.load_seq += 1;
        Rc::new(Term::Load(addr, self.load_seq))
    }

    fn read(&mut self, o: &Operand) -> Rc<Term> {
        match o {
            Operand::Reg(r) => self.reg(*r),
            Operand::Imm(v) => Rc::new(Term::Const(*v as u32)),
            Operand::Mem(m) => {
                let a = self.addr(m);
                self.load(a)
            }
            Operand::Vec(_) => Rc::new(Term::Const(0)),
        }
    }

    fn write(&mut self, o: &Operand, t: Rc<Term>) {
        match o {
            Operand::Reg(r) => self.set_reg(*r, t),
            Operand::Mem(m) => {
                let a = self.addr(m);
                self.stores.push((a, t));
            }
            _ => {}
        }
    }
}

/// Symbolically execute a block's instruction list into a summary.
pub fn summarize(insns: &[Insn]) -> BlockSummary {
    let mut s = SymState::new();
    for insn in insns {
        exec(&mut s, insn);
    }
    let mut regs = BTreeMap::new();
    for r in &s.written {
        regs.insert(r.number(), s.regs[r].clone());
    }
    BlockSummary {
        regs,
        stores: s.stores,
        flags: s.flags,
        calls: s.calls,
    }
}

fn cond_term(s: &mut SymState, cond: Cond) -> Rc<CondTerm> {
    let (a, b, is_test) = match &s.flags {
        FlagsState::Cmp(a, b) => (a.clone(), b.clone(), false),
        FlagsState::Test(a, b) => (a.clone(), b.clone(), true),
        FlagsState::Alu(t) => (t.clone(), Rc::new(Term::Const(0)), false),
        FlagsState::Entry | FlagsState::Havoc(_) => (
            Rc::new(Term::Havoc(u32::MAX, 0)),
            Rc::new(Term::Const(0)),
            false,
        ),
    };
    Rc::new(CondTerm {
        cond,
        a,
        b,
        is_test,
    })
}

fn exec(s: &mut SymState, insn: &Insn) {
    let op2 = |s: &mut SymState, insn: &Insn, top: TermOp| {
        let a = s.read(&insn.a.unwrap());
        let b = s.read(&insn.b.unwrap());
        let r = bin(top, a, b);
        s.flags = FlagsState::Alu(r.clone());
        s.write(&insn.a.unwrap(), r);
    };
    match insn.op {
        Opcode::Mov => {
            let v = s.read(&insn.b.unwrap());
            s.write(&insn.a.unwrap(), v);
        }
        Opcode::Lea => {
            let m = insn.b.unwrap().as_mem().unwrap();
            let a = s.addr(&m);
            s.write(&insn.a.unwrap(), a);
        }
        Opcode::Add => op2(s, insn, TermOp::Add),
        Opcode::Sub => {
            // Keep cmp-compatible flags for sbb idioms: record as Cmp.
            let a = s.read(&insn.a.unwrap());
            let b = s.read(&insn.b.unwrap());
            let r = bin(TermOp::Sub, a.clone(), b.clone());
            s.flags = FlagsState::Cmp(a, b);
            s.write(&insn.a.unwrap(), r);
        }
        Opcode::Sbb => {
            // a = a - b - CF. Model CF as Bool(B-cond of current flags).
            let cf = Rc::new(Term::Bool(cond_term(s, Cond::B)));
            let a = s.read(&insn.a.unwrap());
            let b = s.read(&insn.b.unwrap());
            let r = bin(TermOp::Sub, bin(TermOp::Sub, a, b), cf);
            s.flags = FlagsState::Alu(r.clone());
            s.write(&insn.a.unwrap(), r);
        }
        Opcode::Adc => {
            let cf = Rc::new(Term::Bool(cond_term(s, Cond::B)));
            let a = s.read(&insn.a.unwrap());
            let b = s.read(&insn.b.unwrap());
            let r = bin(TermOp::Add, bin(TermOp::Add, a, b), cf);
            s.flags = FlagsState::Alu(r.clone());
            s.write(&insn.a.unwrap(), r);
        }
        Opcode::Imul => op2(s, insn, TermOp::Mul),
        Opcode::Udiv => op2(s, insn, TermOp::Div),
        Opcode::Urem => op2(s, insn, TermOp::Rem),
        Opcode::Umulh => op2(s, insn, TermOp::MulH),
        Opcode::And => op2(s, insn, TermOp::And),
        Opcode::Or => op2(s, insn, TermOp::Or),
        Opcode::Xor => op2(s, insn, TermOp::Xor),
        Opcode::Shl => op2(s, insn, TermOp::Shl),
        Opcode::Shr => op2(s, insn, TermOp::Shr),
        Opcode::Sar => op2(s, insn, TermOp::Sar),
        Opcode::Not => {
            let a = s.read(&insn.a.unwrap());
            let r = un(TermUn::Not, a);
            s.write(&insn.a.unwrap(), r);
        }
        Opcode::Neg => {
            let a = s.read(&insn.a.unwrap());
            let r = un(TermUn::Neg, a);
            s.flags = FlagsState::Alu(r.clone());
            s.write(&insn.a.unwrap(), r);
        }
        Opcode::Inc => {
            let a = s.read(&insn.a.unwrap());
            let r = bin(TermOp::Add, a, Rc::new(Term::Const(1)));
            // inc preserves CF — approximate by leaving flags untouched
            // when they came from a cmp (the sbb idiom), else ALU.
            if !matches!(s.flags, FlagsState::Cmp(..)) {
                s.flags = FlagsState::Alu(r.clone());
            }
            s.write(&insn.a.unwrap(), r);
        }
        Opcode::Dec => {
            let a = s.read(&insn.a.unwrap());
            let r = bin(TermOp::Sub, a, Rc::new(Term::Const(1)));
            if !matches!(s.flags, FlagsState::Cmp(..)) {
                s.flags = FlagsState::Alu(r.clone());
            }
            s.write(&insn.a.unwrap(), r);
        }
        Opcode::Cmp => {
            let a = s.read(&insn.a.unwrap());
            let b = s.read(&insn.b.unwrap());
            s.flags = FlagsState::Cmp(a, b);
        }
        Opcode::Test => {
            let a = s.read(&insn.a.unwrap());
            let b = s.read(&insn.b.unwrap());
            s.flags = FlagsState::Test(a, b);
        }
        Opcode::Set(c) => {
            let ct = cond_term(s, c);
            s.write(&insn.a.unwrap(), Rc::new(Term::Bool(ct)));
        }
        Opcode::Cmov(c) => {
            let ct = cond_term(s, c);
            let old = s.read(&insn.a.unwrap());
            let new = s.read(&insn.b.unwrap());
            s.write(&insn.a.unwrap(), Rc::new(Term::Ite(ct, new, old)));
        }
        Opcode::Push => {
            let v = s.read(&insn.a.unwrap());
            let esp = s.reg(Gpr::Esp);
            let nesp = bin(TermOp::Sub, esp, Rc::new(Term::Const(4)));
            s.set_reg(Gpr::Esp, nesp.clone());
            s.stores.push((nesp, v));
        }
        Opcode::Pop => {
            let esp = s.reg(Gpr::Esp);
            let v = s.load(esp.clone());
            let nesp = bin(TermOp::Add, esp, Rc::new(Term::Const(4)));
            s.set_reg(Gpr::Esp, nesp);
            s.write(&insn.a.unwrap(), v);
        }
        Opcode::Call | Opcode::CallImport => {
            s.call_seq += 1;
            let seq = s.call_seq;
            let target = insn.a.and_then(|o| o.as_imm()).unwrap_or(0) as u32;
            s.calls.push(target);
            s.set_reg(Gpr::Eax, Rc::new(Term::CallResult(seq, target)));
            for r in [Gpr::Ecx, Gpr::Edx, Gpr::Esi, Gpr::Edi] {
                s.set_reg(r, Rc::new(Term::Havoc(seq, r.number())));
            }
            s.flags = FlagsState::Havoc(seq);
        }
        Opcode::Vload => {
            if let (Some(Operand::Vec(x)), Some(Operand::Mem(m))) = (insn.a, insn.b) {
                let base = s.addr(&m);
                let lanes = [0u32, 4, 8, 12].map(|off| {
                    let a = bin(TermOp::Add, base.clone(), Rc::new(Term::Const(off)));
                    s.load(a)
                });
                s.vregs.insert(x, lanes);
            }
        }
        Opcode::Vstore => {
            if let (Some(Operand::Mem(m)), Some(Operand::Vec(x))) = (insn.a, insn.b) {
                let base = s.addr(&m);
                let lanes = s.vreg(x);
                for (k, v) in lanes.into_iter().enumerate() {
                    let a = bin(
                        TermOp::Add,
                        base.clone(),
                        Rc::new(Term::Const(4 * k as u32)),
                    );
                    s.stores.push((a, v));
                }
            }
        }
        Opcode::Vadd | Opcode::Vsub | Opcode::Vmul => {
            if let (Some(Operand::Vec(a)), Some(Operand::Vec(b))) = (insn.a, insn.b) {
                let top = match insn.op {
                    Opcode::Vadd => TermOp::Add,
                    Opcode::Vsub => TermOp::Sub,
                    _ => TermOp::Mul,
                };
                let la = s.vreg(a);
                let lb = s.vreg(b);
                let out: Vec<Rc<Term>> = la
                    .iter()
                    .zip(lb.iter())
                    .map(|(x, y)| bin(top, x.clone(), y.clone()))
                    .collect();
                s.vregs.insert(
                    a,
                    [
                        out[0].clone(),
                        out[1].clone(),
                        out[2].clone(),
                        out[3].clone(),
                    ],
                );
            }
        }
        Opcode::Vhsum => {
            if let (Some(dst), Some(Operand::Vec(x))) = (insn.a, insn.b) {
                let lanes = s.vreg(x);
                let sum = lanes
                    .iter()
                    .cloned()
                    .reduce(|a, b| bin(TermOp::Add, a, b))
                    .unwrap();
                s.write(&dst, sum);
            }
        }
        Opcode::Nop => {}
    }
}

/// Rename register numbers in a term through `map` (canonicalization).
fn rename_term(t: &Rc<Term>, map: &mut BTreeMap<u8, u8>, next: &mut u8) -> Rc<Term> {
    let get = |r: u8, map: &mut BTreeMap<u8, u8>, next: &mut u8| -> u8 {
        *map.entry(r).or_insert_with(|| {
            let v = *next;
            *next += 1;
            v
        })
    };
    match &**t {
        Term::Init(r) => Rc::new(Term::Init(get(*r, map, next))),
        Term::Havoc(s, r) => Rc::new(Term::Havoc(*s, get(*r, map, next))),
        Term::Load(a, seq) => Rc::new(Term::Load(rename_term(a, map, next), *seq)),
        Term::Bin(op, a, b) => Rc::new(Term::Bin(
            *op,
            rename_term(a, map, next),
            rename_term(b, map, next),
        )),
        Term::Un(op, a) => Rc::new(Term::Un(*op, rename_term(a, map, next))),
        Term::Ite(c, a, b) => Rc::new(Term::Ite(
            Rc::new(CondTerm {
                cond: c.cond,
                a: rename_term(&c.a, map, next),
                b: rename_term(&c.b, map, next),
                is_test: c.is_test,
            }),
            rename_term(a, map, next),
            rename_term(b, map, next),
        )),
        Term::Bool(c) => Rc::new(Term::Bool(Rc::new(CondTerm {
            cond: c.cond,
            a: rename_term(&c.a, map, next),
            b: rename_term(&c.b, map, next),
            is_test: c.is_test,
        }))),
        _ => t.clone(),
    }
}

/// A canonicalized summary: register identities erased in first-use order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalSummary {
    regs: Vec<(u8, Rc<Term>)>,
    stores: Vec<(Rc<Term>, Rc<Term>)>,
    n_calls: usize,
    call_targets: Vec<u32>,
}

/// Canonicalize a summary by renaming all register references (both the
/// written destinations and the `Init` sources) in order of appearance.
pub fn canonicalize(s: &BlockSummary) -> CanonicalSummary {
    let mut map = BTreeMap::new();
    let mut next = 0u8;
    let mut regs = Vec::new();
    for (r, t) in &s.regs {
        let renamed_t = rename_term(t, &mut map, &mut next);
        let dst = *map.entry(*r).or_insert_with(|| {
            let v = next;
            next += 1;
            v
        });
        regs.push((dst, renamed_t));
    }
    let stores = s
        .stores
        .iter()
        .map(|(a, v)| {
            (
                rename_term(a, &mut map, &mut next),
                rename_term(v, &mut map, &mut next),
            )
        })
        .collect();
    CanonicalSummary {
        regs,
        stores,
        n_calls: s.calls.len(),
        call_targets: s.calls.clone(),
    }
}

/// Block-level matching score per BinHunt Appendix A: 1.0 for equivalent
/// blocks using the same registers, 0.9 for equivalent modulo register
/// renaming, 0.0 otherwise.
pub fn block_score(a: &[Insn], b: &[Insn]) -> f64 {
    let sa = summarize(a);
    let sb = summarize(b);
    if sa == sb {
        return 1.0;
    }
    if canonicalize(&sa) == canonicalize(&sb) {
        return 0.9;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use binrep::MemRef;

    #[test]
    fn identical_blocks_score_one() {
        let insns = vec![
            Insn::op2(Opcode::Mov, Gpr::Eax, 5i64),
            Insn::op2(Opcode::Add, Gpr::Eax, Gpr::Ebx),
        ];
        assert_eq!(block_score(&insns, &insns), 1.0);
    }

    #[test]
    fn register_swap_scores_point_nine() {
        let a = vec![
            Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ebx),
            Insn::op2(Opcode::Add, Gpr::Eax, 7i64),
        ];
        let b = vec![
            Insn::op2(Opcode::Mov, Gpr::Esi, Gpr::Edi),
            Insn::op2(Opcode::Add, Gpr::Esi, 7i64),
        ];
        assert_eq!(block_score(&a, &b), 0.9);
    }

    #[test]
    fn commutativity_is_normalized() {
        let a = vec![Insn::op2(Opcode::Add, Gpr::Eax, Gpr::Ebx)];
        // eax = ebx + eax via a temp.
        let b = vec![
            Insn::op2(Opcode::Mov, Gpr::Ecx, Gpr::Ebx),
            Insn::op2(Opcode::Add, Gpr::Ecx, Gpr::Eax),
            Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ecx),
        ];
        // b also writes ecx, so full equality fails, but the shared eax
        // term is equal; the canonical forms differ (extra reg written).
        let sa = summarize(&a);
        let sb = summarize(&b);
        assert_eq!(sa.regs[&Gpr::Eax.number()], sb.regs[&Gpr::Eax.number()]);
    }

    #[test]
    fn strength_reduced_multiply_matches() {
        // x*8 vs x<<3 normalize to the same term.
        let a = vec![Insn::op2(Opcode::Imul, Gpr::Eax, 8i64)];
        let b = vec![Insn::op2(Opcode::Shl, Gpr::Eax, 3i64)];
        let sa = summarize(&a);
        let sb = summarize(&b);
        assert_eq!(sa.regs[&0], sb.regs[&0]);
    }

    #[test]
    fn setcc_and_branchless_terms() {
        // eax = (ebx == 5) via set.
        let a = vec![
            Insn::op2(Opcode::Cmp, Gpr::Ebx, 5i64),
            Insn::op1(Opcode::Set(Cond::E), Gpr::Eax),
        ];
        let s = summarize(&a);
        assert!(matches!(&*s.regs[&0], Term::Bool(_)));
    }

    #[test]
    fn store_forwarding() {
        let m = MemRef::base_disp(Gpr::Ebp, -8);
        let insns = vec![
            Insn::op2(Opcode::Mov, m, Gpr::Ecx),
            Insn::op2(Opcode::Mov, Gpr::Eax, m),
        ];
        let s = summarize(&insns);
        assert_eq!(s.regs[&0], Rc::new(Term::Init(Gpr::Ecx.number())));
    }

    #[test]
    fn calls_are_ordered_side_effects() {
        let a = vec![Insn::call(binrep::FuncId(3))];
        let b = vec![Insn::call(binrep::FuncId(4))];
        assert_eq!(block_score(&a, &a), 1.0);
        assert_eq!(block_score(&a, &b), 0.0);
    }

    #[test]
    fn different_computation_scores_zero() {
        let a = vec![Insn::op2(Opcode::Add, Gpr::Eax, 1i64)];
        let b = vec![Insn::op2(Opcode::Add, Gpr::Eax, 2i64)];
        assert_eq!(block_score(&a, &b), 0.0);
    }

    #[test]
    fn division_magic_does_not_trivially_match_div() {
        // The magic sequence is semantically equal but our rewriter is
        // (intentionally) not a full prover: they summarize differently,
        // which is exactly why optimized blocks stop matching.
        let a = vec![Insn::op2(Opcode::Udiv, Gpr::Eax, 7i64)];
        let b = vec![
            Insn::op2(Opcode::Mov, Gpr::Edx, Gpr::Eax),
            Insn::op2(Opcode::Umulh, Gpr::Edx, 0x24924925i64),
            Insn::op2(Opcode::Sub, Gpr::Eax, Gpr::Edx),
            Insn::op2(Opcode::Shr, Gpr::Eax, 1i64),
            Insn::op2(Opcode::Add, Gpr::Eax, Gpr::Edx),
            Insn::op2(Opcode::Shr, Gpr::Eax, 2i64),
        ];
        assert_eq!(block_score(&a, &b), 0.0);
    }
}
