//! # testutil — shared test scaffolding
//!
//! The integration suites (root `tests/*.rs`, `crates/bintuner/tests/*`)
//! all need the same few fixtures: a unique scratch path for a persistent
//! store, a deterministically small [`TunerConfig`], a tiny hand-built
//! module, and an "run it on the emulator and collect output" helper.
//! Before this crate each suite carried its own copy; they drifted (and
//! will drift again) unless the scaffolding lives in one place.
//!
//! Everything here is deterministic: presets pin every seed, and the
//! module builders are pure functions of their arguments. Nothing reads
//! clocks or unseeded RNG — the suites assert reproducibility, so the
//! scaffolding must never be the source of noise.

#![warn(missing_docs)]

use bintuner::{FaultKind, FaultPlan, TunerConfig};
use genetic::{GaParams, Termination};
use minicc::ast::{BinOp, Expr, FuncDef, LValue, Module, Stmt};
use std::fs;
use std::path::{Path, PathBuf};

/// A unique scratch path for a persistent-store test, removed on drop
/// (and pre-removed at creation, so a crashed previous run cannot leak
/// state into this one). No `tempfile` crate exists in the container;
/// this is the shared stand-in.
///
/// Understands both store layouts: the path may materialize as a v3
/// single file or a v4 shard *directory*, and either way cleanup also
/// sweeps the `.lock` and `.migrate` side paths a crashed run can leave
/// behind.
#[derive(Debug)]
pub struct ScratchStore {
    path: PathBuf,
}

/// Remove every on-disk trace of a store at `path`: the single-file
/// form, the shard-directory form, and the `.lock` / `.migrate` side
/// paths. Missing pieces are fine.
pub fn remove_store(path: &Path) {
    let _ = fs::remove_file(path);
    let _ = fs::remove_dir_all(path);
    for ext in ["lock", "migrate"] {
        let side = side_path(path, ext);
        let _ = fs::remove_file(&side);
        let _ = fs::remove_dir_all(&side);
    }
}

fn side_path(path: &Path, ext: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".");
    os.push(ext);
    PathBuf::from(os)
}

/// Copy a store from `src` to `dst`, whichever layout it is on disk: a
/// v3 single file copies as one file, a v4 shard directory copies as a
/// directory (manifest, shard logs, artifact log — every regular file
/// inside). Lock files are skipped: a snapshot must never inherit a
/// live lock.
pub fn copy_store(src: &Path, dst: &Path) {
    remove_store(dst);
    if src.is_dir() {
        fs::create_dir_all(dst).expect("create snapshot dir");
        for entry in fs::read_dir(src).expect("read store dir") {
            let entry = entry.expect("store dir entry");
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".lock") {
                continue;
            }
            if entry.path().is_file() {
                fs::copy(entry.path(), dst.join(&name)).expect("copy shard file");
            }
        }
    } else if src.is_file() {
        fs::copy(src, dst).expect("copy store file");
    } else {
        panic!("no store at {}", src.display());
    }
}

impl ScratchStore {
    /// A scratch path unique to this process and `name`.
    pub fn new(name: &str) -> ScratchStore {
        let path = std::env::temp_dir().join(format!(
            "bintuner_test_{}_{}.btfs",
            std::process::id(),
            name
        ));
        remove_store(&path);
        ScratchStore { path }
    }

    /// A scratch store initialized as a byte-for-byte snapshot of the
    /// store at `src` (either layout). Replaces whatever was at this
    /// scratch path.
    pub fn snapshot_of(name: &str, src: &Path) -> ScratchStore {
        let s = ScratchStore::new(name);
        copy_store(src, &s.path);
        s
    }

    /// The scratch path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The scratch path, owned (for `TunerConfig::cache_path`).
    pub fn path_buf(&self) -> PathBuf {
        self.path.clone()
    }
}

impl Drop for ScratchStore {
    fn drop(&mut self) {
        remove_store(&self.path);
    }
}

/// Fault injection over a store directory: clone the store into crash
/// states a real power-cut or SIGKILL could produce — a file torn at an
/// arbitrary byte boundary, a stale compaction temp file, a missing
/// manifest — without touching the original.
///
/// Every method yields a fresh [`ScratchStore`] holding the damaged
/// clone, so the torture suites can load it and assert the store
/// recovers (valid prefix kept, no panic) while the pristine source
/// stays reusable.
#[derive(Debug)]
pub struct CrashFs {
    src: PathBuf,
}

impl CrashFs {
    /// Wrap the (v4 directory) store at `src`. Panics if nothing is
    /// there — a torture test pointed at a missing store is a test bug.
    pub fn new(src: &Path) -> CrashFs {
        assert!(src.exists(), "no store at {}", src.display());
        CrashFs {
            src: src.to_path_buf(),
        }
    }

    /// Names of the regular files inside the store directory, sorted —
    /// the tear points a crash could hit. Lock files excluded.
    pub fn files(&self) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(&self.src)
            .expect("read store dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|n| !n.ends_with(".lock"))
            .collect();
        names.sort();
        names
    }

    /// Size in bytes of `file` inside the store.
    pub fn len_of(&self, file: &str) -> u64 {
        fs::metadata(self.src.join(file))
            .expect("stat store file")
            .len()
    }

    /// A clone of the store with `file` truncated to `len` bytes — the
    /// state a crash mid-append leaves behind.
    pub fn torn_at(&self, name: &str, file: &str, len: u64) -> ScratchStore {
        let s = ScratchStore::snapshot_of(name, &self.src);
        let target = s.path().join(file);
        let data = fs::read(&target).expect("read file to tear");
        let keep = (len as usize).min(data.len());
        fs::write(&target, &data[..keep]).expect("write torn file");
        s
    }

    /// A clone with `bytes` written to `file` inside the store dir —
    /// for planting stale compaction temps (`shard-00.log.tmp`), garbage
    /// manifests, or any other debris a crash can strand.
    pub fn with_file(&self, name: &str, file: &str, bytes: &[u8]) -> ScratchStore {
        let s = ScratchStore::snapshot_of(name, &self.src);
        fs::write(s.path().join(file), bytes).expect("plant file");
        s
    }

    /// A clone with `file` deleted — crash after unlink, before the
    /// replacement rename landed.
    pub fn without_file(&self, name: &str, file: &str) -> ScratchStore {
        let s = ScratchStore::snapshot_of(name, &self.src);
        fs::remove_file(s.path().join(file)).expect("remove file");
        s
    }

    /// A clone with a *directory* squatting where `file` should be, so
    /// every open-for-append on that path fails (`EISDIR`) — the
    /// deterministic, portable stand-in for a full disk: the
    /// deliberately-unwritable shard log an ENOSPC degrade test needs.
    pub fn with_dir(&self, name: &str, file: &str) -> ScratchStore {
        let s = ScratchStore::snapshot_of(name, &self.src);
        let target = s.path().join(file);
        let _ = fs::remove_file(&target);
        fs::create_dir_all(&target).expect("plant dir");
        s
    }
}

/// A scripted chaos scenario: a named constructor layer over the farm's
/// [`FaultPlan`]/[`FaultKind`] plumbing, so the chaos differential
/// suites read as intent ("hang client 1 after 2 shards") instead of
/// struct-literal soup. Every plan is deterministic — same scenario,
/// same trigger, every run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPlan {
    /// Short scenario name, used in assertion messages.
    pub name: &'static str,
    /// The farm-level fault to inject via `ServiceConfig::fault` /
    /// `DaemonConfig::farm_fault_once`.
    pub fault: FaultPlan,
}

impl ChaosPlan {
    /// Client `client` drops its connection after `shards` shards.
    pub fn crash_at(client: usize, shards: usize) -> ChaosPlan {
        ChaosPlan {
            name: "crash",
            fault: FaultPlan {
                client,
                after_shards: shards,
                kind: FaultKind::Crash,
            },
        }
    }

    /// Client `client` wedges (silent, connection open) after `shards`
    /// shards — only heartbeats/deadlines can recover it.
    pub fn hang_at(client: usize, shards: usize) -> ChaosPlan {
        ChaosPlan {
            name: "hang",
            fault: FaultPlan {
                client,
                after_shards: shards,
                kind: FaultKind::Hang,
            },
        }
    }

    /// Client `client` delays every Result frame by `ms` milliseconds
    /// after `shards` shards — a straggler, slow but alive.
    pub fn slow_frame(client: usize, shards: usize, ms: u64) -> ChaosPlan {
        ChaosPlan {
            name: "slow-frame",
            fault: FaultPlan {
                client,
                after_shards: shards,
                kind: FaultKind::SlowFrame(ms),
            },
        }
    }

    /// Client `client` silently drops one Result frame after `shards`
    /// shards, then behaves — a lost message the deadline re-dispatches.
    pub fn drop_frame(client: usize, shards: usize) -> ChaosPlan {
        ChaosPlan {
            name: "drop-frame",
            fault: FaultPlan {
                client,
                after_shards: shards,
                kind: FaultKind::DropFrame,
            },
        }
    }
}

/// The small deterministic tuner preset used across the bintuner suites:
/// population 10, `max_evals` evaluations with a half-budget minimum and
/// a third-budget plateau window, 2 workers. Fully seeded — two runs of
/// the same preset are bit-identical.
pub fn small_tuner(max_evals: usize) -> TunerConfig {
    TunerConfig {
        termination: Termination {
            max_evaluations: max_evals,
            min_evaluations: max_evals / 2,
            plateau_window: max_evals / 3,
            ..Default::default()
        },
        ga: GaParams {
            population: 10,
            ..Default::default()
        },
        workers: 2,
        ..Default::default()
    }
}

/// [`small_tuner`] wired to a scratch store: the shape every
/// persistent-cache suite builds by hand. `None` gives the same preset
/// with persistence off — the cold-reference arm of a differential.
pub fn cached_tuner(max_evals: usize, store: Option<&ScratchStore>) -> TunerConfig {
    TunerConfig {
        cache_path: store.map(ScratchStore::path_buf),
        ..small_tuner(max_evals)
    }
}

/// The root integration-suite preset: default population, two-thirds
/// minimum budget (the shape the paper-claim tests were written against).
pub fn pipeline_tuner(max_evals: usize) -> TunerConfig {
    TunerConfig {
        termination: Termination {
            max_evaluations: max_evals,
            min_evaluations: max_evals * 2 / 3,
            plateau_window: max_evals / 3,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Run a binary on the emulator and collect its output (panicking with
/// the binary's name on failure — the shape every differential suite
/// wants).
pub fn observe(bin: &binrep::Binary, inputs: &[u32]) -> Vec<u32> {
    emu::Machine::new(bin)
        .run(&[], inputs, 20_000_000)
        .unwrap_or_else(|e| panic!("{} failed: {e}", bin.name))
        .output
}

/// A tiny loop-heavy module: `main(a)` runs `loops` counted loops over an
/// accumulator and returns it. Deterministic in its arguments; distinct
/// `name`s give distinct [`Module::content_hash`]es with identical shape
/// features — handy for store-key and transfer tests.
pub fn tiny_loop_module(name: &str, loops: usize) -> Module {
    let mut m = Module::new(name);
    let body: Vec<Stmt> =
        std::iter::once(Stmt::Assign(LValue::Var("x".into()), Expr::Var("a".into())))
            .chain((0..loops).map(|i| Stmt::For {
                var: "i".into(),
                start: Expr::Const(0),
                end: Expr::Const(8 + i as u32),
                step: 1,
                body: vec![Stmt::Assign(
                    LValue::Var("x".into()),
                    Expr::bin(
                        BinOp::Add,
                        Expr::Var("x".into()),
                        Expr::bin(BinOp::Mul, Expr::Var("i".into()), Expr::Const(3)),
                    ),
                )],
            }))
            .chain(std::iter::once(Stmt::Return(Expr::Var("x".into()))))
            .collect();
    let mut f = FuncDef::new("main", vec!["a".into()], body);
    f.local("x");
    f.local("i");
    m.funcs.push(f);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_store_cleans_up_after_itself() {
        let path = {
            let s = ScratchStore::new("selftest");
            fs::write(s.path(), b"x").unwrap();
            assert!(s.path().exists());
            s.path_buf()
        };
        assert!(!path.exists(), "drop removed the scratch file");

        // Directory form (v4 shard layout) plus lock droppings.
        let path = {
            let s = ScratchStore::new("selftest_dir");
            fs::create_dir_all(s.path()).unwrap();
            fs::write(s.path().join("manifest"), b"m").unwrap();
            fs::write(side_path(s.path(), "lock"), b"0").unwrap();
            s.path_buf()
        };
        assert!(!path.exists(), "drop removed the scratch dir");
        assert!(!side_path(&path, "lock").exists(), "drop swept the lock");
    }

    #[test]
    fn copy_store_handles_both_layouts_and_skips_locks() {
        let dir = ScratchStore::new("copy_src");
        fs::create_dir_all(dir.path()).unwrap();
        fs::write(dir.path().join("manifest"), b"m").unwrap();
        fs::write(dir.path().join("shard-00.log"), b"s0").unwrap();
        fs::write(dir.path().join("shard-00.log.lock"), b"9").unwrap();
        let snap = ScratchStore::snapshot_of("copy_dst", dir.path());
        assert_eq!(fs::read(snap.path().join("shard-00.log")).unwrap(), b"s0");
        assert!(!snap.path().join("shard-00.log.lock").exists());

        let file = ScratchStore::new("copy_src_file");
        fs::write(file.path(), b"v3").unwrap();
        let snap2 = ScratchStore::snapshot_of("copy_dst_file", file.path());
        assert_eq!(fs::read(snap2.path()).unwrap(), b"v3");
    }

    #[test]
    fn crash_fs_tears_plants_and_removes_without_touching_the_source() {
        let dir = ScratchStore::new("crash_src");
        fs::create_dir_all(dir.path()).unwrap();
        fs::write(dir.path().join("shard-00.log"), b"abcdef").unwrap();
        let cfs = CrashFs::new(dir.path());
        assert_eq!(cfs.files(), vec!["shard-00.log".to_string()]);
        assert_eq!(cfs.len_of("shard-00.log"), 6);

        let torn = cfs.torn_at("crash_torn", "shard-00.log", 3);
        assert_eq!(fs::read(torn.path().join("shard-00.log")).unwrap(), b"abc");
        let planted = cfs.with_file("crash_plant", "shard-00.log.tmp", b"zz");
        assert!(planted.path().join("shard-00.log.tmp").exists());
        let gone = cfs.without_file("crash_gone", "shard-00.log");
        assert!(!gone.path().join("shard-00.log").exists());
        let squat = cfs.with_dir("crash_squat", "shard-00.log");
        assert!(squat.path().join("shard-00.log").is_dir());
        assert!(
            fs::OpenOptions::new()
                .append(true)
                .open(squat.path().join("shard-00.log"))
                .is_err(),
            "appending to the squatted path must fail"
        );
        // Source untouched throughout.
        assert_eq!(
            fs::read(dir.path().join("shard-00.log")).unwrap(),
            b"abcdef"
        );
    }

    #[test]
    fn presets_are_deterministic_and_small() {
        let a = small_tuner(60);
        let b = small_tuner(60);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.ga.population, 10);
        assert_eq!(a.termination.max_evaluations, 60);
        assert_eq!(pipeline_tuner(90).termination.min_evaluations, 60);
    }

    #[test]
    fn tiny_module_compiles_validates_and_hashes_by_name() {
        let m = tiny_loop_module("t1", 3);
        m.validate().unwrap();
        let other = tiny_loop_module("t2", 3);
        assert_ne!(m.content_hash(), other.content_hash());
        assert_eq!(m.features(), other.features());
        let cc = minicc::Compiler::new(minicc::CompilerKind::Gcc);
        let bin = cc
            .compile_preset(&m, minicc::OptLevel::O2, binrep::Arch::X86)
            .unwrap();
        let _ = observe(&bin, &[5, 0]); // must execute cleanly
        assert!(bin.insn_count() > 0);
    }
}
