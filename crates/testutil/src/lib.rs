//! # testutil — shared test scaffolding
//!
//! The integration suites (root `tests/*.rs`, `crates/bintuner/tests/*`)
//! all need the same few fixtures: a unique scratch path for a persistent
//! store, a deterministically small [`TunerConfig`], a tiny hand-built
//! module, and an "run it on the emulator and collect output" helper.
//! Before this crate each suite carried its own copy; they drifted (and
//! will drift again) unless the scaffolding lives in one place.
//!
//! Everything here is deterministic: presets pin every seed, and the
//! module builders are pure functions of their arguments. Nothing reads
//! clocks or unseeded RNG — the suites assert reproducibility, so the
//! scaffolding must never be the source of noise.

#![warn(missing_docs)]

use bintuner::TunerConfig;
use genetic::{GaParams, Termination};
use minicc::ast::{BinOp, Expr, FuncDef, LValue, Module, Stmt};
use std::fs;
use std::path::{Path, PathBuf};

/// A unique scratch file path for a persistent-store test, removed on
/// drop (and pre-removed at creation, so a crashed previous run cannot
/// leak state into this one). No `tempfile` crate exists in the
/// container; this is the shared stand-in.
#[derive(Debug)]
pub struct ScratchStore {
    path: PathBuf,
}

impl ScratchStore {
    /// A scratch path unique to this process and `name`.
    pub fn new(name: &str) -> ScratchStore {
        let path = std::env::temp_dir().join(format!(
            "bintuner_test_{}_{}.btfs",
            std::process::id(),
            name
        ));
        let _ = fs::remove_file(&path);
        ScratchStore { path }
    }

    /// The scratch path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The scratch path, owned (for `TunerConfig::cache_path`).
    pub fn path_buf(&self) -> PathBuf {
        self.path.clone()
    }
}

impl Drop for ScratchStore {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// The small deterministic tuner preset used across the bintuner suites:
/// population 10, `max_evals` evaluations with a half-budget minimum and
/// a third-budget plateau window, 2 workers. Fully seeded — two runs of
/// the same preset are bit-identical.
pub fn small_tuner(max_evals: usize) -> TunerConfig {
    TunerConfig {
        termination: Termination {
            max_evaluations: max_evals,
            min_evaluations: max_evals / 2,
            plateau_window: max_evals / 3,
            ..Default::default()
        },
        ga: GaParams {
            population: 10,
            ..Default::default()
        },
        workers: 2,
        ..Default::default()
    }
}

/// The root integration-suite preset: default population, two-thirds
/// minimum budget (the shape the paper-claim tests were written against).
pub fn pipeline_tuner(max_evals: usize) -> TunerConfig {
    TunerConfig {
        termination: Termination {
            max_evaluations: max_evals,
            min_evaluations: max_evals * 2 / 3,
            plateau_window: max_evals / 3,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Run a binary on the emulator and collect its output (panicking with
/// the binary's name on failure — the shape every differential suite
/// wants).
pub fn observe(bin: &binrep::Binary, inputs: &[u32]) -> Vec<u32> {
    emu::Machine::new(bin)
        .run(&[], inputs, 20_000_000)
        .unwrap_or_else(|e| panic!("{} failed: {e}", bin.name))
        .output
}

/// A tiny loop-heavy module: `main(a)` runs `loops` counted loops over an
/// accumulator and returns it. Deterministic in its arguments; distinct
/// `name`s give distinct [`Module::content_hash`]es with identical shape
/// features — handy for store-key and transfer tests.
pub fn tiny_loop_module(name: &str, loops: usize) -> Module {
    let mut m = Module::new(name);
    let body: Vec<Stmt> =
        std::iter::once(Stmt::Assign(LValue::Var("x".into()), Expr::Var("a".into())))
            .chain((0..loops).map(|i| Stmt::For {
                var: "i".into(),
                start: Expr::Const(0),
                end: Expr::Const(8 + i as u32),
                step: 1,
                body: vec![Stmt::Assign(
                    LValue::Var("x".into()),
                    Expr::bin(
                        BinOp::Add,
                        Expr::Var("x".into()),
                        Expr::bin(BinOp::Mul, Expr::Var("i".into()), Expr::Const(3)),
                    ),
                )],
            }))
            .chain(std::iter::once(Stmt::Return(Expr::Var("x".into()))))
            .collect();
    let mut f = FuncDef::new("main", vec!["a".into()], body);
    f.local("x");
    f.local("i");
    m.funcs.push(f);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_store_cleans_up_after_itself() {
        let path = {
            let s = ScratchStore::new("selftest");
            fs::write(s.path(), b"x").unwrap();
            assert!(s.path().exists());
            s.path_buf()
        };
        assert!(!path.exists(), "drop removed the scratch file");
    }

    #[test]
    fn presets_are_deterministic_and_small() {
        let a = small_tuner(60);
        let b = small_tuner(60);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.ga.population, 10);
        assert_eq!(a.termination.max_evaluations, 60);
        assert_eq!(pipeline_tuner(90).termination.min_evaluations, 60);
    }

    #[test]
    fn tiny_module_compiles_validates_and_hashes_by_name() {
        let m = tiny_loop_module("t1", 3);
        m.validate().unwrap();
        let other = tiny_loop_module("t2", 3);
        assert_ne!(m.content_hash(), other.content_hash());
        assert_eq!(m.features(), other.features());
        let cc = minicc::Compiler::new(minicc::CompilerKind::Gcc);
        let bin = cc
            .compile_preset(&m, minicc::OptLevel::O2, binrep::Arch::X86)
            .unwrap();
        let _ = observe(&bin, &[5, 0]); // must execute cleanly
        assert!(bin.insn_count() > 0);
    }
}
