//! Property tests for the wire format: arbitrary genome batches, eval
//! results and merge records must round-trip bit-exactly, and any
//! truncation of a valid frame must be rejected as truncated — never
//! misread as a different frame. These mirror the fitness store's
//! corruption-tolerance guarantees at the transport boundary.

use evald::wire::{
    decode_frame, encode_frame, Frame, MergeRecord, ShardStats, WireAstArtifact, WireEval,
    WireLowerArtifact, WireSpan,
};
use evald::EvaldError;
use evald::WIRE_VERSION;
use proptest::collection::vec;
use proptest::prelude::*;

fn genome_strategy() -> impl Strategy<Value = Vec<bool>> {
    vec(any::<bool>(), 0..140)
}

fn eval_strategy() -> impl Strategy<Value = WireEval> {
    (any::<u64>(), any::<bool>(), any::<u64>()).prop_map(|(f, failed, w)| WireEval {
        fitness_bits: f,
        failed,
        wall_seconds_bits: w,
    })
}

fn span_strategy() -> impl Strategy<Value = WireSpan> {
    (
        (any::<u64>(), any::<u64>()),
        vec(any::<u8>(), 0..24),
        (any::<u64>(), any::<u64>()),
    )
        .prop_map(|((id, parent), name, (start_us, dur_us))| WireSpan {
            id,
            parent,
            // Arbitrary bytes folded onto a stage-name-like alphabet
            // (the wire requires valid UTF-8 span names).
            name: name
                .into_iter()
                .map(|b| char::from(b'a' + b % 26))
                .collect(),
            start_us,
            dur_us,
        })
}

fn record_strategy() -> impl Strategy<Value = MergeRecord> {
    (
        (any::<u64>(), any::<u8>(), any::<u8>()),
        (any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<bool>(), genome_strategy()),
    )
        .prop_map(|((m, c, a), (hi, lo), (f, failed, flags))| MergeRecord {
            module_hash: m,
            compiler: c,
            arch: a,
            effect_digest: (u128::from(hi) << 64) | u128::from(lo),
            fitness_bits: f,
            failed,
            flags,
        })
}

fn ast_artifact_strategy() -> impl Strategy<Value = WireAstArtifact> {
    (
        (any::<u64>(), any::<u8>()),
        (any::<u64>(), any::<u64>()),
        (any::<u64>(), vec(any::<u8>(), 0..64)),
    )
        .prop_map(|((m, c), (hi, lo), (cost, blob))| WireAstArtifact {
            body_hash: m,
            compiler: c,
            ast_digest: (u128::from(hi) << 64) | u128::from(lo),
            cost_bits: cost,
            blob,
        })
}

fn lower_artifact_strategy() -> impl Strategy<Value = WireLowerArtifact> {
    (
        (any::<u64>(), any::<u8>(), any::<u8>()),
        (any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
        (any::<u64>(), vec(any::<u8>(), 0..64)),
    )
        .prop_map(
            |((m, c, a), (ahi, alo), (lhi, llo), (cost, blob))| WireLowerArtifact {
                body_hash: m,
                compiler: c,
                arch: a,
                ast_digest: (u128::from(ahi) << 64) | u128::from(alo),
                lower_digest: (u128::from(lhi) << 64) | u128::from(llo),
                cost_bits: cost,
                blob,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn work_frames_round_trip(shard in any::<u64>(),
                              span in any::<u64>(),
                              genomes in vec(genome_strategy(), 0..24)) {
        let frame = Frame::Work { shard, span, genomes };
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).expect("valid frame decodes");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn result_frames_round_trip_bit_exactly(shard in any::<u64>(),
                                            client in any::<u32>(),
                                            evals in vec(eval_strategy(), 0..24),
                                            spans in vec(span_strategy(), 0..12),
                                            compiles in any::<u32>(),
                                            hits in any::<u32>(),
                                            full in any::<u32>(),
                                            ast in any::<u32>(),
                                            lower in any::<u32>(),
                                            wall in any::<u64>(),
                                            span in any::<u64>()) {
        // Fitness crosses the wire as raw bits: NaNs, infinities and
        // negative zero must all survive — the differential guarantee
        // needs *bit* equality, not f64 equality.
        let frame = Frame::Result {
            shard,
            client,
            evals,
            stats: ShardStats {
                compiles,
                cache_hits: hits,
                full_compiles: full,
                ast_reuse: ast,
                lower_reuse: lower,
                wall_seconds: f64::from_bits(wall),
                span,
            },
            spans,
        };
        let bytes = encode_frame(&frame);
        let (decoded, _) = decode_frame(&bytes).expect("valid frame decodes");
        // ShardStats equality is bitwise over wall_seconds, so whole-frame
        // equality is exactly the bit-exactness guarantee.
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn result_frames_with_spans_reject_every_truncation(spans in vec(span_strategy(), 1..8),
                                                        evals in vec(eval_strategy(), 0..4)) {
        // The span block sits at the tail of a Result frame — a cut at
        // *any* byte (fixed fields, name bytes, mid-span) must surface
        // as Truncated, never decode to a shorter span list.
        let frame = Frame::Result {
            shard: 3,
            client: 1,
            evals,
            stats: ShardStats::default(),
            spans,
        };
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            prop_assert!(matches!(
                decode_frame(&bytes[..cut]),
                Err(EvaldError::Truncated { .. })
            ), "cut at {} not rejected", cut);
        }
    }

    #[test]
    fn merge_frames_round_trip(client in any::<u32>(),
                               records in vec(record_strategy(), 0..12),
                               ast_artifacts in vec(ast_artifact_strategy(), 0..6),
                               lower_artifacts in vec(lower_artifact_strategy(), 0..6)) {
        let frame = Frame::Merge { client, records, ast_artifacts, lower_artifacts };
        let (decoded, _) = decode_frame(&encode_frame(&frame)).expect("valid frame decodes");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncated_frames_are_rejected(genomes in vec(genome_strategy(), 1..8),
                                     cut_fraction in 0usize..100) {
        let bytes = encode_frame(&Frame::Work { shard: 7, span: 0, genomes });
        let cut = cut_fraction * bytes.len() / 100; // strictly < len
        match decode_frame(&bytes[..cut]) {
            Err(EvaldError::Truncated { needed, got }) => {
                prop_assert!(needed > got);
            }
            other => prop_assert!(false, "cut at {}: {:?}", cut, other),
        }
    }

    #[test]
    fn version_mismatch_is_always_rejected(genomes in vec(genome_strategy(), 0..6),
                                           version in any::<u32>()) {
        // Any version other than ours — older (a v2 peer) or newer —
        // must be rejected up front, before payload interpretation.
        let version = if version == WIRE_VERSION { version ^ 1 } else { version };
        let mut bytes = encode_frame(&Frame::Work { shard: 1, span: 0, genomes });
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        prop_assert!(matches!(
            decode_frame(&bytes),
            Err(EvaldError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn job_frames_round_trip(payload in vec(any::<u8>(), 0..4096)) {
        let frame = Frame::Job { payload };
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).expect("valid frame decodes");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn liveness_frames_round_trip(nonce in any::<u64>(), pong in any::<bool>()) {
        // The v6 heartbeat probes: nonce survives bit-exactly and the
        // Ping/Pong distinction is never confused.
        let frame = if pong { Frame::Pong { nonce } } else { Frame::Ping { nonce } };
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).expect("valid frame decodes");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn liveness_frames_reject_every_truncation(nonce in any::<u64>(), pong in any::<bool>()) {
        // A heartbeat cut at *any* byte — length prefix, magic, version,
        // tag, nonce, checksum — must read as Truncated, never as a
        // nonce-zero probe or some other frame.
        let frame = if pong { Frame::Pong { nonce } } else { Frame::Ping { nonce } };
        let bytes = encode_frame(&frame);
        for cut in 0..bytes.len() {
            prop_assert!(matches!(
                decode_frame(&bytes[..cut]),
                Err(EvaldError::Truncated { .. })
            ), "cut at {} not rejected", cut);
        }
    }

    #[test]
    fn liveness_frames_reject_every_foreign_version(nonce in any::<u64>(),
                                                    version in any::<u32>()) {
        // A v5 peer (no heartbeat plane) must never half-understand a
        // Ping: any foreign version is rejected before the tag is read.
        let version = if version == WIRE_VERSION { version ^ 1 } else { version };
        let mut bytes = encode_frame(&Frame::Ping { nonce });
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        prop_assert!(matches!(
            decode_frame(&bytes),
            Err(EvaldError::VersionMismatch { .. })
        ));
    }
}
