//! Transports: how encoded frames move between server and clients.
//!
//! A transport is a pair of directional halves — [`FrameSender`] /
//! [`FrameReceiver`] — delivering whole encoded frames (as produced by
//! [`crate::wire::encode_frame`], length prefix included). Keeping the
//! halves separate lets the server hold every client's sender in its
//! dispatch loop while a per-connection reader thread owns the receiver.
//!
//! Three implementations:
//!
//! * **Duplex channel** ([`channel_duplex`]) — a pair of in-process
//!   `mpsc` channels. Zero filesystem footprint; frames still travel as
//!   encoded bytes, so the wire format is exercised end to end.
//! * **Unix-domain socket** ([`unix_listener`] / [`unix_connect`]) — a
//!   real `SOCK_STREAM` socket: the sender writes the encoded frame, the
//!   receiver reads the length prefix then the body.
//! * **TCP loopback** ([`tcp_listener`] / [`tcp_connect`]) — the same
//!   stream framing over `127.0.0.1`, with `TCP_NODELAY` set on both
//!   ends (frames are small and latency-bound; Nagle batching would
//!   serialize the dispatch ping-pong). This is the paper's actual
//!   deployment transport — worker *processes*, and with a routable bind
//!   address one day, worker *hosts*.
//!
//! The two socket transports share one generic framing implementation
//! (the private `StreamSender` / `StreamReceiver`), so their `Disconnected`
//! semantics are identical by construction: EOF, connection reset and
//! broken pipe all surface as [`EvaldError::Disconnected`] — the signal
//! the server's straggler re-dispatch turns into "re-queue this client's
//! work".

use crate::wire::MAX_FRAME_LEN;
use crate::EvaldError;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc;

/// The sending half of a connection.
pub trait FrameSender: Send {
    /// Deliver one encoded frame (as produced by
    /// [`crate::wire::encode_frame`]).
    ///
    /// # Errors
    ///
    /// [`EvaldError::Disconnected`] when the peer is gone;
    /// [`EvaldError::Io`] for underlying socket failures.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), EvaldError>;

    /// Sever the connection so a peer blocked in a receive observes it.
    ///
    /// Channel transports get this for free (dropping the sender closes
    /// the channel), so the default is a no-op; stream transports must
    /// shut the socket down — the receiving half is a *clone* of the
    /// same stream held by a reader thread, and merely dropping the
    /// sender would leave both the peer and that reader blocked
    /// forever.
    fn close(&mut self) {}
}

/// The receiving half of a connection.
pub trait FrameReceiver: Send {
    /// Block until one whole encoded frame arrives and return its bytes
    /// (length prefix included, ready for
    /// [`crate::wire::decode_frame`]).
    ///
    /// # Errors
    ///
    /// [`EvaldError::Disconnected`] when the peer closed the connection;
    /// [`EvaldError::Corrupt`] when the stream desynchronized.
    fn recv_frame(&mut self) -> Result<Vec<u8>, EvaldError>;
}

/// One end of a connection: a sender plus a receiver.
pub struct Duplex {
    /// The sending half.
    pub tx: Box<dyn FrameSender>,
    /// The receiving half.
    pub rx: Box<dyn FrameReceiver>,
}

// ---------------------------------------------------------------- channel

struct ChannelSender(mpsc::Sender<Vec<u8>>);

impl FrameSender for ChannelSender {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), EvaldError> {
        self.0
            .send(frame.to_vec())
            .map_err(|_| EvaldError::Disconnected)
    }
}

struct ChannelReceiver(mpsc::Receiver<Vec<u8>>);

impl FrameReceiver for ChannelReceiver {
    fn recv_frame(&mut self) -> Result<Vec<u8>, EvaldError> {
        self.0.recv().map_err(|_| EvaldError::Disconnected)
    }
}

/// An in-process duplex connection; returns the two ends (conventionally
/// `(server_end, client_end)` — they are symmetric).
pub fn channel_duplex() -> (Duplex, Duplex) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        Duplex {
            tx: Box::new(ChannelSender(a_tx)),
            rx: Box::new(ChannelReceiver(a_rx)),
        },
        Duplex {
            tx: Box::new(ChannelSender(b_tx)),
            rx: Box::new(ChannelReceiver(b_rx)),
        },
    )
}

// --------------------------------------------------- stream sockets shared

/// What the generic stream framing needs from a socket type: byte I/O, a
/// second handle onto the same connection (sender and receiver halves
/// live on different threads), and a way to sever the connection so
/// every handle observes EOF.
trait FrameStream: Read + Write + Send + Sized + 'static {
    fn try_clone_stream(&self) -> std::io::Result<Self>;
    fn shutdown_both(&self);
}

impl FrameStream for UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<UnixStream> {
        self.try_clone()
    }

    fn shutdown_both(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

impl FrameStream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.try_clone()
    }

    fn shutdown_both(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

fn is_disconnect(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
    )
}

/// Sending half over any [`FrameStream`] (Unix or TCP).
struct StreamSender<S: FrameStream>(S);

impl<S: FrameStream> FrameSender for StreamSender<S> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), EvaldError> {
        self.0.write_all(frame).map_err(|e| {
            if is_disconnect(e.kind()) {
                EvaldError::Disconnected
            } else {
                EvaldError::Io(e)
            }
        })
    }

    fn close(&mut self) {
        // Shut down the whole socket (already-written frames still
        // drain to the peer first): the peer's blocked receive and our
        // reader thread's clone both observe EOF.
        self.0.shutdown_both();
    }
}

/// Receiving half over any [`FrameStream`]: read the length prefix, then
/// exactly the body.
struct StreamReceiver<S: FrameStream>(S);

impl<S: FrameStream> FrameReceiver for StreamReceiver<S> {
    fn recv_frame(&mut self) -> Result<Vec<u8>, EvaldError> {
        let mut prefix = [0u8; 4];
        if let Err(e) = self.0.read_exact(&mut prefix) {
            // EOF at a frame boundary is a clean close; mid-prefix or
            // mid-body EOF is equally "peer gone" for our purposes.
            return Err(if is_disconnect(e.kind()) {
                EvaldError::Disconnected
            } else {
                EvaldError::Io(e)
            });
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(EvaldError::Corrupt("stream frame length exceeds the cap"));
        }
        let mut frame = vec![0u8; 4 + len];
        frame[..4].copy_from_slice(&prefix);
        self.0.read_exact(&mut frame[4..]).map_err(|e| {
            if is_disconnect(e.kind()) {
                EvaldError::Disconnected
            } else {
                EvaldError::Io(e)
            }
        })?;
        Ok(frame)
    }
}

fn stream_duplex<S: FrameStream>(stream: S) -> Result<Duplex, EvaldError> {
    let write = stream.try_clone_stream()?;
    Ok(Duplex {
        tx: Box::new(StreamSender(write)),
        rx: Box::new(StreamReceiver(stream)),
    })
}

// ------------------------------------------------------------ unix socket

/// A bound Unix-domain listener that owns its socket path: the file is
/// removed when the listener is dropped, so a finished (or panicked) run
/// does not leave a stale socket for the next one to trip over.
/// Binding also unlinks any stale file a *killed* previous run left
/// behind — `Drop` never runs after SIGKILL.
pub struct BoundUnixListener {
    listener: UnixListener,
    path: PathBuf,
}

impl BoundUnixListener {
    /// The underlying listener (e.g. for `set_nonblocking`).
    pub fn listener(&self) -> &UnixListener {
        &self.listener
    }

    /// The socket path this listener is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for BoundUnixListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Bind a Unix-domain listener at `path` (removing a stale socket file
/// left by a crashed previous run). The returned guard removes the
/// socket file again when dropped.
///
/// # Errors
///
/// [`EvaldError::Io`] when binding fails.
pub fn unix_listener(path: &Path) -> Result<BoundUnixListener, EvaldError> {
    if path.exists() {
        let _ = std::fs::remove_file(path);
    }
    Ok(BoundUnixListener {
        listener: UnixListener::bind(path)?,
        path: path.to_path_buf(),
    })
}

/// Accept one client connection from `listener`.
///
/// # Errors
///
/// [`EvaldError::Io`] when accepting or cloning the stream fails.
pub fn unix_accept(listener: &BoundUnixListener) -> Result<Duplex, EvaldError> {
    let (stream, _) = listener.listener.accept().map_err(EvaldError::Io)?;
    stream_duplex(stream)
}

/// Connect to the server's socket at `path`.
///
/// # Errors
///
/// [`EvaldError::Io`] when the socket cannot be reached.
pub fn unix_connect(path: &Path) -> Result<Duplex, EvaldError> {
    stream_duplex(UnixStream::connect(path)?)
}

// -------------------------------------------------------------------- tcp

/// Bind a TCP listener on `127.0.0.1` with an OS-assigned port,
/// returning the listener and the address clients should connect to.
///
/// Loopback-only by construction: the farm is local worker processes,
/// not an open network service.
///
/// # Errors
///
/// [`EvaldError::Io`] when binding fails.
pub fn tcp_listener() -> Result<(TcpListener, SocketAddr), EvaldError> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

/// Accept one client connection from `listener`, setting `TCP_NODELAY`
/// (dispatch is a latency-bound frame ping-pong; Nagle batching would
/// stall it).
///
/// # Errors
///
/// [`EvaldError::Io`] when accepting, configuring or cloning the stream
/// fails.
pub fn tcp_accept(listener: &TcpListener) -> Result<Duplex, EvaldError> {
    let (stream, _) = listener.accept().map_err(EvaldError::Io)?;
    stream.set_nodelay(true)?;
    stream_duplex(stream)
}

/// Connect to the server at `addr`, setting `TCP_NODELAY`.
///
/// # Errors
///
/// [`EvaldError::Io`] when the server cannot be reached.
pub fn tcp_connect(addr: SocketAddr) -> Result<Duplex, EvaldError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream_duplex(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_frame, encode_frame, Frame};

    fn scratch_socket(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("evald_{}_{}.sock", std::process::id(), name))
    }

    #[test]
    fn channel_round_trips_frames() {
        let (mut server, mut client) = channel_duplex();
        let frame = Frame::EndBatch { batch: 3 };
        server.tx.send_frame(&encode_frame(&frame)).unwrap();
        let bytes = client.rx.recv_frame().unwrap();
        assert_eq!(decode_frame(&bytes).unwrap().0, frame);

        client
            .tx
            .send_frame(&encode_frame(&Frame::Shutdown))
            .unwrap();
        let bytes = server.rx.recv_frame().unwrap();
        assert_eq!(decode_frame(&bytes).unwrap().0, Frame::Shutdown);
    }

    #[test]
    fn channel_reports_disconnect() {
        let (server, mut client) = channel_duplex();
        drop(server);
        assert!(matches!(
            client.rx.recv_frame(),
            Err(EvaldError::Disconnected)
        ));
        assert!(matches!(
            client.tx.send_frame(b"x"),
            Err(EvaldError::Disconnected)
        ));
    }

    #[test]
    fn unix_socket_round_trips_frames_and_reports_eof() {
        let path = scratch_socket("round_trip");
        let listener = unix_listener(&path).unwrap();
        let path_for_client = path.clone();
        let client_thread = std::thread::spawn(move || {
            let mut d = unix_connect(&path_for_client).unwrap();
            let bytes = d.rx.recv_frame().unwrap();
            let (frame, _) = decode_frame(&bytes).unwrap();
            d.tx.send_frame(&encode_frame(&frame)).unwrap(); // echo
                                                             // Dropping both halves closes the stream.
        });
        let mut server = unix_accept(&listener).unwrap();
        let frame = Frame::Work {
            shard: 9,
            span: 0,
            genomes: vec![vec![true; 21], vec![false; 4]],
        };
        server.tx.send_frame(&encode_frame(&frame)).unwrap();
        let echoed = server.rx.recv_frame().unwrap();
        assert_eq!(decode_frame(&echoed).unwrap().0, frame);
        client_thread.join().unwrap();
        // The peer is gone: the next read reports a disconnect.
        assert!(matches!(
            server.rx.recv_frame(),
            Err(EvaldError::Disconnected)
        ));
    }

    #[test]
    fn unix_listener_reclaims_stale_socket_file() {
        let path = scratch_socket("stale");
        std::fs::write(&path, b"stale").unwrap();
        let listener = unix_listener(&path).expect("rebinds over stale file");
        assert!(path.exists(), "freshly bound socket exists");
        // Dropping the listener removes the socket file, so the *next*
        // run does not even need the stale-unlink path.
        drop(listener);
        assert!(!path.exists(), "drop removed the socket file");
    }

    #[test]
    fn tcp_round_trips_frames_and_reports_eof() {
        let (listener, addr) = tcp_listener().unwrap();
        let client_thread = std::thread::spawn(move || {
            let mut d = tcp_connect(addr).unwrap();
            let bytes = d.rx.recv_frame().unwrap();
            let (frame, _) = decode_frame(&bytes).unwrap();
            d.tx.send_frame(&encode_frame(&frame)).unwrap(); // echo
        });
        let mut server = tcp_accept(&listener).unwrap();
        let frame = Frame::Work {
            shard: 5,
            span: 0,
            genomes: vec![vec![true, false, true], vec![false; 9]],
        };
        server.tx.send_frame(&encode_frame(&frame)).unwrap();
        let echoed = server.rx.recv_frame().unwrap();
        assert_eq!(decode_frame(&echoed).unwrap().0, frame);
        client_thread.join().unwrap();
        // The peer is gone: the next read reports a disconnect.
        assert!(matches!(
            server.rx.recv_frame(),
            Err(EvaldError::Disconnected)
        ));
    }

    #[test]
    fn tcp_truncated_frame_is_a_disconnect_not_a_misread() {
        // A peer that dies mid-frame (length prefix promised more bytes
        // than ever arrive) must surface as Disconnected.
        let (listener, addr) = tcp_listener().unwrap();
        let client_thread = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let frame = encode_frame(&Frame::EndBatch { batch: 1 });
            stream.write_all(&frame[..frame.len() - 3]).unwrap();
            // Dropping the stream closes it mid-frame.
        });
        let mut server = tcp_accept(&listener).unwrap();
        assert!(matches!(
            server.rx.recv_frame(),
            Err(EvaldError::Disconnected)
        ));
        client_thread.join().unwrap();
    }

    #[test]
    fn tcp_oversized_length_prefix_is_corrupt() {
        // A desynchronized or malicious peer declaring a multi-gigabyte
        // frame must be rejected before any allocation.
        let (listener, addr) = tcp_listener().unwrap();
        let client_thread = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes())
                .unwrap();
            // Hold the socket open so the server's error is about the
            // prefix, not EOF.
            stream
        });
        let mut server = tcp_accept(&listener).unwrap();
        assert!(matches!(
            server.rx.recv_frame(),
            Err(EvaldError::Corrupt(_))
        ));
        drop(client_thread.join().unwrap());
    }
}
