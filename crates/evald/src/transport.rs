//! Transports: how encoded frames move between server and clients.
//!
//! A transport is a pair of directional halves — [`FrameSender`] /
//! [`FrameReceiver`] — delivering whole encoded frames (as produced by
//! [`crate::wire::encode_frame`], length prefix included). Keeping the
//! halves separate lets the server hold every client's sender in its
//! dispatch loop while a per-connection reader thread owns the receiver.
//!
//! Two implementations:
//!
//! * **Duplex channel** ([`channel_duplex`]) — a pair of in-process
//!   `mpsc` channels. Zero filesystem footprint; frames still travel as
//!   encoded bytes, so the wire format is exercised end to end.
//! * **Unix-domain socket** ([`unix_listener`] / [`unix_connect`]) — a
//!   real `SOCK_STREAM` socket: the sender writes the encoded frame, the
//!   receiver reads the length prefix then the body. The closest offline
//!   stand-in for the paper's networked client–server deployment.
//!
//! Both report a closed peer as [`EvaldError::Disconnected`] — the signal
//! the server's straggler re-dispatch turns into "re-queue this client's
//! work".

use crate::wire::MAX_FRAME_LEN;
use crate::EvaldError;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::mpsc;

/// The sending half of a connection.
pub trait FrameSender: Send {
    /// Deliver one encoded frame (as produced by
    /// [`crate::wire::encode_frame`]).
    ///
    /// # Errors
    ///
    /// [`EvaldError::Disconnected`] when the peer is gone;
    /// [`EvaldError::Io`] for underlying socket failures.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), EvaldError>;

    /// Sever the connection so a peer blocked in a receive observes it.
    ///
    /// Channel transports get this for free (dropping the sender closes
    /// the channel), so the default is a no-op; stream transports must
    /// shut the socket down — the receiving half is a *clone* of the
    /// same stream held by a reader thread, and merely dropping the
    /// sender would leave both the peer and that reader blocked
    /// forever.
    fn close(&mut self) {}
}

/// The receiving half of a connection.
pub trait FrameReceiver: Send {
    /// Block until one whole encoded frame arrives and return its bytes
    /// (length prefix included, ready for
    /// [`crate::wire::decode_frame`]).
    ///
    /// # Errors
    ///
    /// [`EvaldError::Disconnected`] when the peer closed the connection;
    /// [`EvaldError::Corrupt`] when the stream desynchronized.
    fn recv_frame(&mut self) -> Result<Vec<u8>, EvaldError>;
}

/// One end of a connection: a sender plus a receiver.
pub struct Duplex {
    /// The sending half.
    pub tx: Box<dyn FrameSender>,
    /// The receiving half.
    pub rx: Box<dyn FrameReceiver>,
}

// ---------------------------------------------------------------- channel

struct ChannelSender(mpsc::Sender<Vec<u8>>);

impl FrameSender for ChannelSender {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), EvaldError> {
        self.0
            .send(frame.to_vec())
            .map_err(|_| EvaldError::Disconnected)
    }
}

struct ChannelReceiver(mpsc::Receiver<Vec<u8>>);

impl FrameReceiver for ChannelReceiver {
    fn recv_frame(&mut self) -> Result<Vec<u8>, EvaldError> {
        self.0.recv().map_err(|_| EvaldError::Disconnected)
    }
}

/// An in-process duplex connection; returns the two ends (conventionally
/// `(server_end, client_end)` — they are symmetric).
pub fn channel_duplex() -> (Duplex, Duplex) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        Duplex {
            tx: Box::new(ChannelSender(a_tx)),
            rx: Box::new(ChannelReceiver(a_rx)),
        },
        Duplex {
            tx: Box::new(ChannelSender(b_tx)),
            rx: Box::new(ChannelReceiver(b_rx)),
        },
    )
}

// ------------------------------------------------------------ unix socket

struct UnixSender(UnixStream);

impl FrameSender for UnixSender {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), EvaldError> {
        self.0.write_all(frame).map_err(|e| match e.kind() {
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::UnexpectedEof => {
                EvaldError::Disconnected
            }
            _ => EvaldError::Io(e),
        })
    }

    fn close(&mut self) {
        // Shut down the whole socket (already-written frames still
        // drain to the peer first): the peer's blocked receive and our
        // reader thread's clone both observe EOF.
        let _ = self.0.shutdown(std::net::Shutdown::Both);
    }
}

struct UnixReceiver(UnixStream);

impl FrameReceiver for UnixReceiver {
    fn recv_frame(&mut self) -> Result<Vec<u8>, EvaldError> {
        let mut prefix = [0u8; 4];
        if let Err(e) = self.0.read_exact(&mut prefix) {
            // EOF at a frame boundary is a clean close; mid-prefix or
            // mid-body EOF is equally "peer gone" for our purposes.
            return Err(match e.kind() {
                ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe => {
                    EvaldError::Disconnected
                }
                _ => EvaldError::Io(e),
            });
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(EvaldError::Corrupt("stream frame length exceeds the cap"));
        }
        let mut frame = vec![0u8; 4 + len];
        frame[..4].copy_from_slice(&prefix);
        self.0
            .read_exact(&mut frame[4..])
            .map_err(|e| match e.kind() {
                ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe => {
                    EvaldError::Disconnected
                }
                _ => EvaldError::Io(e),
            })?;
        Ok(frame)
    }
}

fn unix_duplex(stream: UnixStream) -> Result<Duplex, EvaldError> {
    let write = stream.try_clone()?;
    Ok(Duplex {
        tx: Box::new(UnixSender(write)),
        rx: Box::new(UnixReceiver(stream)),
    })
}

/// Bind a Unix-domain listener at `path` (removing a stale socket file
/// left by a crashed previous run).
///
/// # Errors
///
/// [`EvaldError::Io`] when binding fails.
pub fn unix_listener(path: &Path) -> Result<UnixListener, EvaldError> {
    if path.exists() {
        let _ = std::fs::remove_file(path);
    }
    Ok(UnixListener::bind(path)?)
}

/// Accept one client connection from `listener`.
///
/// # Errors
///
/// [`EvaldError::Io`] when accepting or cloning the stream fails.
pub fn unix_accept(listener: &UnixListener) -> Result<Duplex, EvaldError> {
    let (stream, _) = listener.accept().map_err(EvaldError::Io)?;
    unix_duplex(stream)
}

/// Connect to the server's socket at `path`.
///
/// # Errors
///
/// [`EvaldError::Io`] when the socket cannot be reached.
pub fn unix_connect(path: &Path) -> Result<Duplex, EvaldError> {
    unix_duplex(UnixStream::connect(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_frame, encode_frame, Frame};

    fn scratch_socket(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("evald_{}_{}.sock", std::process::id(), name))
    }

    #[test]
    fn channel_round_trips_frames() {
        let (mut server, mut client) = channel_duplex();
        let frame = Frame::EndBatch { batch: 3 };
        server.tx.send_frame(&encode_frame(&frame)).unwrap();
        let bytes = client.rx.recv_frame().unwrap();
        assert_eq!(decode_frame(&bytes).unwrap().0, frame);

        client
            .tx
            .send_frame(&encode_frame(&Frame::Shutdown))
            .unwrap();
        let bytes = server.rx.recv_frame().unwrap();
        assert_eq!(decode_frame(&bytes).unwrap().0, Frame::Shutdown);
    }

    #[test]
    fn channel_reports_disconnect() {
        let (server, mut client) = channel_duplex();
        drop(server);
        assert!(matches!(
            client.rx.recv_frame(),
            Err(EvaldError::Disconnected)
        ));
        assert!(matches!(
            client.tx.send_frame(b"x"),
            Err(EvaldError::Disconnected)
        ));
    }

    #[test]
    fn unix_socket_round_trips_frames_and_reports_eof() {
        let path = scratch_socket("round_trip");
        let listener = unix_listener(&path).unwrap();
        let path_for_client = path.clone();
        let client_thread = std::thread::spawn(move || {
            let mut d = unix_connect(&path_for_client).unwrap();
            let bytes = d.rx.recv_frame().unwrap();
            let (frame, _) = decode_frame(&bytes).unwrap();
            d.tx.send_frame(&encode_frame(&frame)).unwrap(); // echo
                                                             // Dropping both halves closes the stream.
        });
        let mut server = unix_accept(&listener).unwrap();
        let frame = Frame::Work {
            shard: 9,
            genomes: vec![vec![true; 21], vec![false; 4]],
        };
        server.tx.send_frame(&encode_frame(&frame)).unwrap();
        let echoed = server.rx.recv_frame().unwrap();
        assert_eq!(decode_frame(&echoed).unwrap().0, frame);
        client_thread.join().unwrap();
        // The peer is gone: the next read reports a disconnect.
        assert!(matches!(
            server.rx.recv_frame(),
            Err(EvaldError::Disconnected)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unix_listener_reclaims_stale_socket_file() {
        let path = scratch_socket("stale");
        std::fs::write(&path, b"stale").unwrap();
        let _listener = unix_listener(&path).expect("rebinds over stale file");
        let _ = std::fs::remove_file(&path);
    }
}
