//! The wire format: versioned, length-prefixed, checksummed frames.
//!
//! Every message between server and clients is one *frame*:
//!
//! ```text
//! [len: u32]                        length of everything after this field
//! [magic: "EVLD"][version: u32]     format identification, checked per frame
//! [tag: u8][payload ...]            the frame body, canonical little-endian
//! [checksum: u32]                   FNV-1a over magic..payload
//! ```
//!
//! The encodings follow the same canonical-bytes discipline as
//! `minicc::hash` and the fitness store's on-disk records: explicit
//! little-endian integers, length-prefixed sequences, packed bitmaps for
//! genomes, and `f64::to_bits` for floats (fitness values must cross the
//! wire *bit-exactly* — the embedder's differential guarantee rests on
//! it). Decoding never panics: a frame that is truncated, carries a
//! foreign version, fails its checksum, or has a malformed payload is
//! rejected with a typed [`EvaldError`].

use crate::EvaldError;
use bytes::BufMut;
use minicc::fnv1a32 as checksum;

/// Frame magic: `EVLD`.
pub const WIRE_MAGIC: [u8; 4] = *b"EVLD";

/// Wire-format version. Bump whenever any frame layout or encoding
/// changes; both ends reject mismatched frames instead of misreading
/// them. (v2: [`ShardStats`] grew the three per-stage pipeline-reuse
/// counters. v3: the [`Frame::Job`] frame, carrying the embedder's
/// opaque job description to pre-forked worker processes. v4:
/// [`Frame::Merge`] grew the two stage-artifact record lists, so farm
/// workers' freshly computed artifacts reach the server's persistent
/// artifact store instead of being recomputed on every warm start. v5:
/// trace-span propagation — [`Frame::Work`] carries the server's
/// dispatch-span id, [`ShardStats`] echoes it, and [`Frame::Result`]
/// carries the worker's recorded [`WireSpan`]s, so a farm worker's
/// per-stage compile timings stitch into the dispatching server's
/// trace. v6: the [`Frame::Ping`]/[`Frame::Pong`] liveness probes —
/// the server's heartbeat plane, so a hung worker is *detected* rather
/// than holding its shard copies forever.)
pub const WIRE_VERSION: u32 = 6;

/// Hard cap on one frame's declared length (a corrupted length prefix
/// must not trigger a multi-gigabyte allocation).
pub const MAX_FRAME_LEN: usize = 64 << 20;

const TAG_HELLO: u8 = 0;
const TAG_WORK: u8 = 1;
const TAG_RESULT: u8 = 2;
const TAG_END_BATCH: u8 = 3;
const TAG_MERGE: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_JOB: u8 = 6;
const TAG_PING: u8 = 7;
const TAG_PONG: u8 = 8;

/// One genome's evaluation as reported by a client.
///
/// Fitness travels as raw bits so the server reassembles *exactly* the
/// f64 the client computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEval {
    /// `f64::to_bits` of the fitness.
    pub fitness_bits: u64,
    /// Whether the genome failed to compile (scored the penalty).
    pub failed: bool,
    /// Measured client-side wall-clock seconds, as bits (telemetry).
    pub wall_seconds_bits: u64,
}

impl WireEval {
    /// The fitness as an `f64`.
    pub fn fitness(&self) -> f64 {
        f64::from_bits(self.fitness_bits)
    }

    /// The measured wall-clock seconds as an `f64`.
    pub fn wall_seconds(&self) -> f64 {
        f64::from_bits(self.wall_seconds_bits)
    }
}

/// One client-cached fitness result shipped back for the server-side
/// store at batch end.
///
/// The key fields mirror the embedder's store key tuple — module content
/// hash, compiler tag, arch tag, effect digest — without this crate
/// depending on the store itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeRecord {
    /// Stable content hash of the module.
    pub module_hash: u64,
    /// Stable one-byte compiler-profile tag.
    pub compiler: u8,
    /// Stable one-byte architecture tag.
    pub arch: u8,
    /// Stable 128-bit effect-config digest.
    pub effect_digest: u128,
    /// `f64::to_bits` of the fitness.
    pub fitness_bits: u64,
    /// Whether the compile failed.
    pub failed: bool,
    /// The representative flag vector (minable metadata).
    pub flags: Vec<bool>,
}

/// One client-produced stage-1 artifact (optimized AST) shipped back on
/// the merge barrier so the server's persistent [`ArtifactStore`] learns
/// it without recompiling (v4).
///
/// The key fields mirror the embedder's `AstArtifactKey` — module body
/// hash, compiler tag, effect digest of the optimization prefix —
/// without this crate depending on the store itself. The cost travels
/// as raw `f64::to_bits` like every other float on the wire.
///
/// [`ArtifactStore`]: ../../bintuner/store/struct.ArtifactStore.html
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireAstArtifact {
    /// Stable content hash of the module body.
    pub body_hash: u64,
    /// Stable one-byte compiler-profile tag.
    pub compiler: u8,
    /// Stable 128-bit digest of the stage-1 effect prefix.
    pub ast_digest: u128,
    /// `f64::to_bits` of the stage cost the artifact saves.
    pub cost_bits: u64,
    /// The canonically encoded artifact.
    pub blob: Vec<u8>,
}

/// One client-produced stage-2 artifact (lowered binary) shipped back on
/// the merge barrier (v4); see [`WireAstArtifact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireLowerArtifact {
    /// Stable content hash of the module body.
    pub body_hash: u64,
    /// Stable one-byte compiler-profile tag.
    pub compiler: u8,
    /// Stable one-byte architecture tag.
    pub arch: u8,
    /// Stable 128-bit digest of the stage-1 effect prefix.
    pub ast_digest: u128,
    /// Stable 128-bit digest of the full effect config.
    pub lower_digest: u128,
    /// `f64::to_bits` of the stage cost the artifact saves.
    pub cost_bits: u64,
    /// The canonically encoded artifact.
    pub blob: Vec<u8>,
}

/// One trace span recorded by a client while evaluating a shard,
/// shipped back on [`Frame::Result`] (v5).
///
/// The span ids are opaque `u64`s minted by the recording tracer;
/// workers offset their id space by client so stitched traces never
/// collide, and a worker's root spans carry the server's dispatch-span
/// id (delivered on [`Frame::Work`]) in `parent`. Offsets and
/// durations are microseconds on the *worker's* monotonic clock — the
/// consumer orders spans by parentage, not by cross-host clock
/// comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Span id, unique across the farm (workers offset their id space).
    pub id: u64,
    /// Parent span id; `0` means root.
    pub parent: u64,
    /// Stage or operation name (`ast`, `lower`, `mir`, …).
    pub name: String,
    /// Start offset on the recording process's monotonic clock, µs.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

/// Per-shard client telemetry, carried on every [`Frame::Result`].
///
/// Equality compares `wall_seconds` by *bit pattern* (see the manual
/// [`PartialEq`] impl): telemetry crosses the wire as raw bits, and a
/// NaN or negative-zero measurement must not break round-trip equality
/// assertions the way derived f64 equality would.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Real compiles the client performed for this shard.
    pub compiles: u32,
    /// Evaluations the client served from its local cache.
    pub cache_hits: u32,
    /// Compiles that ran the client's full pipeline (no stage artifact
    /// reused).
    pub full_compiles: u32,
    /// Compiles that reused a cached stage-1 artifact (optimized AST).
    pub ast_reuse: u32,
    /// Compiles that reused a cached stage-2 artifact (lowered binary).
    pub lower_reuse: u32,
    /// Client-side wall-clock seconds spent on the shard.
    pub wall_seconds: f64,
    /// The server's dispatch-span id for this shard, echoed from
    /// [`Frame::Work`] (v5); `0` when tracing is off.
    pub span: u64,
}

impl PartialEq for ShardStats {
    fn eq(&self, other: &ShardStats) -> bool {
        self.compiles == other.compiles
            && self.cache_hits == other.cache_hits
            && self.full_compiles == other.full_compiles
            && self.ast_reuse == other.ast_reuse
            && self.lower_reuse == other.lower_reuse
            && self.wall_seconds.to_bits() == other.wall_seconds.to_bits()
            && self.span == other.span
    }
}

// Bit-pattern comparison is a true equivalence relation (unlike f64's
// `==`), so full `Eq` is sound.
impl Eq for ShardStats {}

/// The protocol's frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, once per connection: identity and chromosome
    /// width (the server rejects clients built against a different
    /// profile width). The wire version itself is in every frame header.
    Hello {
        /// Zero-based client id (assigned at launch).
        client: u32,
        /// Chromosome width the client evaluates.
        n_flags: u16,
    },
    /// Server → client: evaluate one shard of genomes.
    Work {
        /// Globally unique shard id (never reused across batches).
        shard: u64,
        /// The server's dispatch-span id for this shard (v5); `0` when
        /// tracing is off — which doubles as the client's signal not to
        /// record spans of its own.
        span: u64,
        /// The genomes, in shard order.
        genomes: Vec<Vec<bool>>,
    },
    /// Client → server: one shard's evaluations, in shard order, plus
    /// per-shard stats.
    Result {
        /// The shard this answers.
        shard: u64,
        /// The reporting client.
        client: u32,
        /// One evaluation per genome, in shard order.
        evals: Vec<WireEval>,
        /// Per-shard telemetry.
        stats: ShardStats,
        /// Trace spans the client recorded while evaluating the shard
        /// (v5); empty when tracing is off.
        spans: Vec<WireSpan>,
    },
    /// Server → client: the batch is complete; flush the local cache.
    EndBatch {
        /// Batch sequence number (telemetry).
        batch: u64,
    },
    /// Client → server: the local cache's fresh records, answering
    /// [`Frame::EndBatch`].
    Merge {
        /// The reporting client.
        client: u32,
        /// Fresh records since the last merge.
        records: Vec<MergeRecord>,
        /// Fresh stage-1 artifacts since the last merge (v4).
        ast_artifacts: Vec<WireAstArtifact>,
        /// Fresh stage-2 artifacts since the last merge (v4).
        lower_artifacts: Vec<WireLowerArtifact>,
    },
    /// Server → client: exit cleanly.
    Shutdown,
    /// Server → client, once after a successful handshake: the
    /// embedder's job description — opaque bytes this crate never
    /// interprets (the BinTuner embedder ships the canonically encoded
    /// module to tune). Pre-forked worker *processes* need it to build
    /// their local evaluation engine; thread clients, which receive the
    /// job at spawn time, never see this frame.
    Job {
        /// The embedder-defined job description.
        payload: Vec<u8>,
    },
    /// Server → client: liveness probe (v6). A healthy client answers
    /// with [`Frame::Pong`] echoing the nonce; a client that misses N
    /// consecutive probes is evicted like a dead client.
    Ping {
        /// Probe nonce, echoed verbatim in the answering Pong.
        nonce: u64,
    },
    /// Client → server: answer to [`Frame::Ping`] (v6).
    Pong {
        /// The nonce from the probe being answered.
        nonce: u64,
    },
}

/// Append one genome to `out` in the canonical wire encoding: a `u16`
/// length prefix, then the bools packed LSB-first into bytes.
///
/// Public so embedder-defined protocols layered over the same transports
/// (the BinTuner daemon's job frames) share one genome encoding.
pub fn put_genome(out: &mut Vec<u8>, genome: &[bool]) {
    debug_assert!(genome.len() <= usize::from(u16::MAX));
    out.put_u16_le(genome.len() as u16);
    let mut byte = 0u8;
    for (i, &on) in genome.iter().enumerate() {
        if on {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.put_u8(byte);
            byte = 0;
        }
    }
    if !genome.len().is_multiple_of(8) {
        out.put_u8(byte);
    }
}

/// Append one [`WireSpan`] in the canonical encoding: fixed fields,
/// then the name as a `u16`-length-prefixed UTF-8 string.
fn put_span(out: &mut Vec<u8>, span: &WireSpan) {
    out.put_u64_le(span.id);
    out.put_u64_le(span.parent);
    debug_assert!(span.name.len() <= usize::from(u16::MAX));
    out.put_u16_le(span.name.len() as u16);
    out.put_slice(span.name.as_bytes());
    out.put_u64_le(span.start_us);
    out.put_u64_le(span.dur_us);
}

/// Encode one frame, length prefix included.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body: Vec<u8> = Vec::with_capacity(64);
    body.put_slice(&WIRE_MAGIC);
    body.put_u32_le(WIRE_VERSION);
    match frame {
        Frame::Hello { client, n_flags } => {
            body.put_u8(TAG_HELLO);
            body.put_u32_le(*client);
            body.put_u16_le(*n_flags);
        }
        Frame::Work {
            shard,
            span,
            genomes,
        } => {
            body.put_u8(TAG_WORK);
            body.put_u64_le(*shard);
            body.put_u64_le(*span);
            body.put_u32_le(genomes.len() as u32);
            for g in genomes {
                put_genome(&mut body, g);
            }
        }
        Frame::Result {
            shard,
            client,
            evals,
            stats,
            spans,
        } => {
            body.put_u8(TAG_RESULT);
            body.put_u64_le(*shard);
            body.put_u32_le(*client);
            body.put_u32_le(stats.compiles);
            body.put_u32_le(stats.cache_hits);
            body.put_u32_le(stats.full_compiles);
            body.put_u32_le(stats.ast_reuse);
            body.put_u32_le(stats.lower_reuse);
            body.put_u64_le(stats.wall_seconds.to_bits());
            body.put_u64_le(stats.span);
            body.put_u32_le(evals.len() as u32);
            for e in evals {
                body.put_u64_le(e.fitness_bits);
                body.put_u8(e.failed as u8);
                body.put_u64_le(e.wall_seconds_bits);
            }
            body.put_u32_le(spans.len() as u32);
            for s in spans {
                put_span(&mut body, s);
            }
        }
        Frame::EndBatch { batch } => {
            body.put_u8(TAG_END_BATCH);
            body.put_u64_le(*batch);
        }
        Frame::Merge {
            client,
            records,
            ast_artifacts,
            lower_artifacts,
        } => {
            body.put_u8(TAG_MERGE);
            body.put_u32_le(*client);
            body.put_u32_le(records.len() as u32);
            for r in records {
                body.put_u64_le(r.module_hash);
                body.put_u8(r.compiler);
                body.put_u8(r.arch);
                body.put_u64_le((r.effect_digest >> 64) as u64);
                body.put_u64_le(r.effect_digest as u64);
                body.put_u64_le(r.fitness_bits);
                body.put_u8(r.failed as u8);
                put_genome(&mut body, &r.flags);
            }
            body.put_u32_le(ast_artifacts.len() as u32);
            for a in ast_artifacts {
                body.put_u64_le(a.body_hash);
                body.put_u8(a.compiler);
                body.put_u64_le((a.ast_digest >> 64) as u64);
                body.put_u64_le(a.ast_digest as u64);
                body.put_u64_le(a.cost_bits);
                body.put_u32_le(a.blob.len() as u32);
                body.put_slice(&a.blob);
            }
            body.put_u32_le(lower_artifacts.len() as u32);
            for a in lower_artifacts {
                body.put_u64_le(a.body_hash);
                body.put_u8(a.compiler);
                body.put_u8(a.arch);
                body.put_u64_le((a.ast_digest >> 64) as u64);
                body.put_u64_le(a.ast_digest as u64);
                body.put_u64_le((a.lower_digest >> 64) as u64);
                body.put_u64_le(a.lower_digest as u64);
                body.put_u64_le(a.cost_bits);
                body.put_u32_le(a.blob.len() as u32);
                body.put_slice(&a.blob);
            }
        }
        Frame::Shutdown => body.put_u8(TAG_SHUTDOWN),
        Frame::Job { payload } => {
            body.put_u8(TAG_JOB);
            body.put_u32_le(payload.len() as u32);
            body.put_slice(payload);
        }
        Frame::Ping { nonce } => {
            body.put_u8(TAG_PING);
            body.put_u64_le(*nonce);
        }
        Frame::Pong { nonce } => {
            body.put_u8(TAG_PONG);
            body.put_u64_le(*nonce);
        }
    }
    let ck = checksum(&body);
    body.put_u32_le(ck);
    let mut out = Vec::with_capacity(4 + body.len());
    out.put_u32_le(body.len() as u32);
    out.extend_from_slice(&body);
    out
}

/// Bounds-checked cursor over a frame payload (decoding must reject
/// malformed bytes, never panic).
///
/// Public so embedder-defined protocols layered over the same transports
/// (the BinTuner daemon's job frames) get the same never-panic decoding
/// discipline without re-deriving it.
pub struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    /// Start a cursor at the head of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, off: 0 }
    }

    /// Consume the next `n` bytes, or reject the payload as short.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], EvaldError> {
        if self.off + n > self.buf.len() {
            return Err(EvaldError::Corrupt("payload shorter than its fields"));
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8, EvaldError> {
        Ok(self.take(1)?[0])
    }

    /// Consume a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, EvaldError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, EvaldError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, EvaldError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Consume a `u128` encoded as high then low `u64` halves.
    pub fn u128(&mut self) -> Result<u128, EvaldError> {
        let hi = self.u64()?;
        let lo = self.u64()?;
        Ok((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Consume a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, EvaldError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Consume one genome in the [`put_genome`] encoding.
    pub fn genome(&mut self) -> Result<Vec<bool>, EvaldError> {
        let n = usize::from(self.u16()?);
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
    }

    /// Consume one [`WireSpan`] in the [`put_span`] encoding. A name
    /// that is not valid UTF-8 rejects the payload as corrupt.
    fn span(&mut self) -> Result<WireSpan, EvaldError> {
        let id = self.u64()?;
        let parent = self.u64()?;
        let n = usize::from(self.u16()?);
        let name = std::str::from_utf8(self.take(n)?)
            .map_err(|_| EvaldError::Corrupt("span name is not UTF-8"))?
            .to_string();
        Ok(WireSpan {
            id,
            parent,
            name,
            start_us: self.u64()?,
            dur_us: self.u64()?,
        })
    }

    /// Require the payload to be fully consumed.
    pub fn done(&self) -> Result<(), EvaldError> {
        if self.off == self.buf.len() {
            Ok(())
        } else {
            Err(EvaldError::Corrupt("trailing bytes after payload"))
        }
    }
}

/// Decode one frame from the head of `buf`, returning it together with
/// the number of bytes consumed (so stream transports can decode from an
/// accumulation buffer).
///
/// # Errors
///
/// [`EvaldError::Truncated`] when `buf` holds less than one whole frame;
/// [`EvaldError::BadMagic`] / [`EvaldError::VersionMismatch`] /
/// [`EvaldError::Corrupt`] when the frame cannot be trusted.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), EvaldError> {
    if buf.len() < 4 {
        return Err(EvaldError::Truncated {
            needed: 4,
            got: buf.len(),
        });
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(EvaldError::Corrupt("frame length exceeds the cap"));
    }
    // Smallest body: magic + version + tag + checksum.
    if len < 4 + 4 + 1 + 4 {
        return Err(EvaldError::Corrupt("frame shorter than its fixed header"));
    }
    let total = 4 + len;
    if buf.len() < total {
        return Err(EvaldError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    let body = &buf[4..total];
    if body[..4] != WIRE_MAGIC {
        return Err(EvaldError::BadMagic);
    }
    let version = u32::from_le_bytes(body[4..8].try_into().unwrap());
    if version != WIRE_VERSION {
        return Err(EvaldError::VersionMismatch {
            got: version,
            want: WIRE_VERSION,
        });
    }
    let (payload, ck_bytes) = body.split_at(body.len() - 4);
    let stored = u32::from_le_bytes(ck_bytes.try_into().unwrap());
    if checksum(payload) != stored {
        return Err(EvaldError::Corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(&payload[9..]); // past magic+version+tag
    let frame = match payload[8] {
        TAG_HELLO => Frame::Hello {
            client: r.u32()?,
            n_flags: r.u16()?,
        },
        TAG_WORK => {
            let shard = r.u64()?;
            let span = r.u64()?;
            let n = r.u32()? as usize;
            let mut genomes = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                genomes.push(r.genome()?);
            }
            Frame::Work {
                shard,
                span,
                genomes,
            }
        }
        TAG_RESULT => {
            let shard = r.u64()?;
            let client = r.u32()?;
            let stats = ShardStats {
                compiles: r.u32()?,
                cache_hits: r.u32()?,
                full_compiles: r.u32()?,
                ast_reuse: r.u32()?,
                lower_reuse: r.u32()?,
                wall_seconds: f64::from_bits(r.u64()?),
                span: r.u64()?,
            };
            let n = r.u32()? as usize;
            let mut evals = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                evals.push(WireEval {
                    fitness_bits: r.u64()?,
                    failed: r.u8()? != 0,
                    wall_seconds_bits: r.u64()?,
                });
            }
            let n = r.u32()? as usize;
            let mut spans = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                spans.push(r.span()?);
            }
            Frame::Result {
                shard,
                client,
                evals,
                stats,
                spans,
            }
        }
        TAG_END_BATCH => Frame::EndBatch { batch: r.u64()? },
        TAG_MERGE => {
            let client = r.u32()?;
            let n = r.u32()? as usize;
            let mut records = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                records.push(MergeRecord {
                    module_hash: r.u64()?,
                    compiler: r.u8()?,
                    arch: r.u8()?,
                    effect_digest: r.u128()?,
                    fitness_bits: r.u64()?,
                    failed: r.u8()? != 0,
                    flags: r.genome()?,
                });
            }
            let n = r.u32()? as usize;
            let mut ast_artifacts = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ast_artifacts.push(WireAstArtifact {
                    body_hash: r.u64()?,
                    compiler: r.u8()?,
                    ast_digest: r.u128()?,
                    cost_bits: r.u64()?,
                    blob: r.bytes()?,
                });
            }
            let n = r.u32()? as usize;
            let mut lower_artifacts = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                lower_artifacts.push(WireLowerArtifact {
                    body_hash: r.u64()?,
                    compiler: r.u8()?,
                    arch: r.u8()?,
                    ast_digest: r.u128()?,
                    lower_digest: r.u128()?,
                    cost_bits: r.u64()?,
                    blob: r.bytes()?,
                });
            }
            Frame::Merge {
                client,
                records,
                ast_artifacts,
                lower_artifacts,
            }
        }
        TAG_SHUTDOWN => Frame::Shutdown,
        TAG_JOB => {
            let n = r.u32()? as usize;
            Frame::Job {
                payload: r.take(n)?.to_vec(),
            }
        }
        TAG_PING => Frame::Ping { nonce: r.u64()? },
        TAG_PONG => Frame::Pong { nonce: r.u64()? },
        _ => return Err(EvaldError::Corrupt("unknown frame tag")),
    };
    r.done()?;
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                client: 3,
                n_flags: 137,
            },
            Frame::Work {
                shard: 42,
                span: 9001,
                genomes: vec![
                    vec![true, false, true],
                    vec![],
                    (0..137).map(|i| i % 3 == 0).collect(),
                ],
            },
            Frame::Result {
                shard: 42,
                client: 3,
                evals: vec![
                    WireEval {
                        fitness_bits: 0.731f64.to_bits(),
                        failed: false,
                        wall_seconds_bits: 0.001f64.to_bits(),
                    },
                    WireEval {
                        fitness_bits: (-1.0f64).to_bits(),
                        failed: true,
                        wall_seconds_bits: 0u64,
                    },
                ],
                stats: ShardStats {
                    compiles: 2,
                    cache_hits: 0,
                    full_compiles: 1,
                    ast_reuse: 1,
                    lower_reuse: 0,
                    wall_seconds: 0.002,
                    span: 9001,
                },
                spans: vec![
                    WireSpan {
                        id: (4u64 << 48) + 1,
                        parent: 9001,
                        name: "ast".to_string(),
                        start_us: 12,
                        dur_us: 340,
                    },
                    WireSpan {
                        id: (4u64 << 48) + 2,
                        parent: (4u64 << 48) + 1,
                        name: String::new(),
                        start_us: 0,
                        dur_us: u64::MAX,
                    },
                ],
            },
            // Tracing off: span context zero, no spans — still a valid
            // v5 frame with explicit zero counts.
            Frame::Result {
                shard: 43,
                client: 0,
                evals: vec![],
                stats: ShardStats::default(),
                spans: vec![],
            },
            Frame::EndBatch { batch: 7 },
            Frame::Merge {
                client: 1,
                records: vec![MergeRecord {
                    module_hash: 0xDEAD_BEEF,
                    compiler: 0,
                    arch: 1,
                    effect_digest: (u128::from(u64::MAX) << 64) | 0x1234,
                    fitness_bits: 0.5f64.to_bits(),
                    failed: false,
                    flags: vec![true; 9],
                }],
                ast_artifacts: vec![WireAstArtifact {
                    body_hash: 0xDEAD_BEEF,
                    compiler: 0,
                    ast_digest: u128::MAX - 7,
                    cost_bits: 0.25f64.to_bits(),
                    blob: vec![0x5A; 17],
                }],
                lower_artifacts: vec![WireLowerArtifact {
                    body_hash: 0xDEAD_BEEF,
                    compiler: 0,
                    arch: 1,
                    ast_digest: u128::MAX - 7,
                    lower_digest: 0x0123_4567_89AB_CDEF,
                    cost_bits: 0.125f64.to_bits(),
                    blob: vec![],
                }],
            },
            // Empty merge: the artifact lists must encode (and decode)
            // as explicit zero counts, not be elided.
            Frame::Merge {
                client: 0,
                records: vec![],
                ast_artifacts: vec![],
                lower_artifacts: vec![],
            },
            Frame::Shutdown,
            Frame::Job {
                payload: vec![0xAB; 33],
            },
            Frame::Ping { nonce: 0xFEED },
            Frame::Pong { nonce: u64::MAX },
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let (decoded, consumed) = decode_frame(&bytes).expect("decodes");
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn concatenated_frames_decode_in_sequence() {
        let frames = sample_frames();
        let mut stream: Vec<u8> = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut off = 0;
        for expected in &frames {
            let (got, used) = decode_frame(&stream[off..]).expect("frame in stream");
            assert_eq!(&got, expected);
            off += used;
        }
        assert_eq!(off, stream.len());
    }

    #[test]
    fn truncation_at_every_boundary_is_rejected_not_misread() {
        let bytes = encode_frame(&sample_frames()[1]);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(EvaldError::Truncated { needed, got }) => {
                    assert!(needed > got, "needed {needed} got {got}");
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = encode_frame(&Frame::Shutdown);
        // The version field sits right after the length prefix + magic.
        bytes[8] = WIRE_VERSION as u8 + 1;
        match decode_frame(&bytes) {
            Err(EvaldError::VersionMismatch { got, want }) => {
                assert_eq!(got, WIRE_VERSION + 1);
                assert_eq!(want, WIRE_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_rejected() {
        let good = encode_frame(&sample_frames()[2]);
        // Flip a payload byte: checksum must catch it.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            decode_frame(&flipped),
            Err(EvaldError::Corrupt(_) | EvaldError::BadMagic | EvaldError::VersionMismatch { .. })
        ));
        // Bad magic.
        let mut bad_magic = good.clone();
        bad_magic[4] = b'X';
        assert!(matches!(
            decode_frame(&bad_magic),
            Err(EvaldError::BadMagic)
        ));
        // Oversized declared length.
        let mut huge = good;
        huge[..4].copy_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(decode_frame(&huge), Err(EvaldError::Corrupt(_))));
    }

    #[test]
    fn shard_stats_equality_is_bitwise_over_wall_time() {
        // NaN != NaN under f64 equality; telemetry equality must not
        // care (the wire carries raw bits, and round-trip assertions
        // compare whole frames).
        let nan = ShardStats {
            wall_seconds: f64::NAN,
            ..ShardStats::default()
        };
        assert_eq!(nan, nan);
        let frame = Frame::Result {
            shard: 1,
            client: 0,
            evals: vec![],
            stats: nan,
            spans: vec![],
        };
        let (decoded, _) = decode_frame(&encode_frame(&frame)).unwrap();
        assert_eq!(decoded, frame);
        // −0.0 == +0.0 as f64s, but they are different measurements on
        // the wire: bitwise equality distinguishes them.
        let pos = ShardStats {
            wall_seconds: 0.0,
            ..ShardStats::default()
        };
        let neg = ShardStats {
            wall_seconds: -0.0,
            ..ShardStats::default()
        };
        assert_ne!(pos, neg);
        assert_eq!(pos, pos);
    }

    #[test]
    fn job_payload_is_opaque_bytes() {
        for payload in [vec![], vec![0u8], (0..=255u8).collect::<Vec<u8>>()] {
            let frame = Frame::Job {
                payload: payload.clone(),
            };
            let bytes = encode_frame(&frame);
            let (decoded, used) = decode_frame(&bytes).unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(used, bytes.len());
        }
        // A declared payload length past the frame end is corrupt, not a
        // panic — even with a valid checksum over the lying bytes.
        let mut bytes = encode_frame(&Frame::Job {
            payload: vec![7; 4],
        });
        // Payload length field sits after len(4)+magic(4)+version(4)+tag(1).
        bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        let ck_at = bytes.len() - 4;
        let ck = checksum(&bytes[4..ck_at]);
        bytes[ck_at..].copy_from_slice(&ck.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(EvaldError::Corrupt(_))));
    }

    #[test]
    fn span_names_must_be_utf8() {
        let frame = Frame::Result {
            shard: 5,
            client: 1,
            evals: vec![],
            stats: ShardStats::default(),
            spans: vec![WireSpan {
                id: 1,
                parent: 0,
                name: "mir".to_string(),
                start_us: 7,
                dur_us: 8,
            }],
        };
        let mut bytes = encode_frame(&frame);
        // The span name's bytes are the only "mir" in the frame; smash
        // them with invalid UTF-8 and re-seal the checksum: the decoder
        // must reject the payload, not panic or mojibake.
        let pos = bytes
            .windows(3)
            .position(|w| w == b"mir")
            .expect("name bytes present");
        bytes[pos] = 0xFF;
        bytes[pos + 1] = 0xFE;
        let ck_at = bytes.len() - 4;
        let ck = checksum(&bytes[4..ck_at]);
        bytes[ck_at..].copy_from_slice(&ck.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(EvaldError::Corrupt(_))));
    }

    #[test]
    fn result_spans_round_trip_with_extreme_values() {
        let frame = Frame::Result {
            shard: u64::MAX,
            client: u32::MAX,
            evals: vec![WireEval {
                fitness_bits: f64::NAN.to_bits(),
                failed: true,
                wall_seconds_bits: f64::NEG_INFINITY.to_bits(),
            }],
            stats: ShardStats {
                wall_seconds: f64::INFINITY,
                span: u64::MAX,
                ..ShardStats::default()
            },
            spans: vec![WireSpan {
                id: u64::MAX,
                parent: u64::MAX - 1,
                name: "a".repeat(300),
                start_us: u64::MAX,
                dur_us: 0,
            }],
        };
        let bytes = encode_frame(&frame);
        let (decoded, used) = decode_frame(&bytes).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(used, bytes.len());
        // Truncation inside the span block is detected at every cut.
        for cut in 0..bytes.len() {
            assert!(matches!(
                decode_frame(&bytes[..cut]),
                Err(EvaldError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn genome_bitmap_edges() {
        for width in [0usize, 1, 7, 8, 9, 16, 137] {
            let genome: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
            let frame = Frame::Work {
                shard: 1,
                span: 0,
                genomes: vec![genome.clone()],
            };
            let (decoded, _) = decode_frame(&encode_frame(&frame)).unwrap();
            match decoded {
                Frame::Work { genomes, .. } => assert_eq!(genomes[0], genome),
                _ => unreachable!(),
            }
        }
    }
}
