//! The worker-client loop.
//!
//! A client is a [`ShardWorker`] (supplied by the embedder — in the
//! BinTuner reproduction, a full fitness engine with its own compiler,
//! `-O0` baseline and local caches) driven by [`run_client`]: announce
//! yourself ([`crate::wire::Frame::Hello`]), then serve `Work` frames
//! until the server says `Shutdown`. At every `EndBatch` the worker's
//! fresh local-cache records are flushed back as a `Merge` frame — the
//! client never writes any store itself; the server is the single
//! writer.

use crate::transport::Duplex;
use crate::wire::{
    decode_frame, encode_frame, Frame, MergeRecord, ShardStats, WireAstArtifact, WireEval,
    WireLowerArtifact, WireSpan,
};
use crate::{EvaldError, FaultKind};

/// The embedder's evaluation engine, as seen by the client loop.
pub trait ShardWorker {
    /// Evaluate one shard of genomes, returning one [`WireEval`] per
    /// genome in shard order, plus per-shard telemetry. Must be a pure
    /// function of the genomes (caching aside): the server's straggler
    /// re-dispatch relies on duplicate evaluations being bit-identical.
    ///
    /// `span` is the server's dispatch-span id for this shard, `0` when
    /// tracing is off; tracing workers parent their stage spans under it
    /// and echo it in [`ShardStats::span`]. Telemetry must never affect
    /// the evaluations themselves.
    fn evaluate(&mut self, genomes: &[Vec<bool>], span: u64) -> (Vec<WireEval>, ShardStats);

    /// Drain the trace spans recorded since the last drain (shipped on
    /// the same [`Frame::Result`] as the evaluations). Workers without
    /// a tracer return nothing.
    fn drain_spans(&mut self) -> Vec<WireSpan> {
        Vec::new()
    }

    /// Drain the records the local cache accumulated since the last
    /// drain (merged into the server-side store at batch end). Workers
    /// without a cache return nothing.
    fn drain_merge(&mut self) -> Vec<MergeRecord> {
        Vec::new()
    }

    /// Drain the stage artifacts produced since the last drain (folded
    /// into the server-side artifact store at batch end, alongside
    /// [`ShardWorker::drain_merge`]). Workers without an artifact cache
    /// return nothing.
    fn drain_artifacts(&mut self) -> (Vec<WireAstArtifact>, Vec<WireLowerArtifact>) {
        (Vec::new(), Vec::new())
    }

    /// React to the server's job description ([`Frame::Job`]) — opaque
    /// embedder bytes. Thread workers, which receive the job at spawn
    /// time, ignore it (the default); worker *processes* usually consume
    /// it before entering [`serve`] instead, so this hook only fires for
    /// a job re-sent mid-connection.
    fn on_job(&mut self, payload: &[u8]) {
        let _ = payload;
    }
}

/// Per-client launch options.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// Zero-based client id (reported on every result frame).
    pub client_id: u32,
    /// Chromosome width this worker evaluates (handshake-checked).
    pub n_flags: u16,
    /// Chaos hook: trigger `fault_kind` after completing this many
    /// shards (see [`crate::FaultPlan`]). `None` in production.
    pub fail_after_shards: Option<usize>,
    /// What the chaos hook does when it triggers (ignored while
    /// `fail_after_shards` is `None`).
    pub fault_kind: FaultKind,
}

/// Drive `worker` over `duplex` until the server shuts the client down
/// (clean exit) or the connection drops.
///
/// # Errors
///
/// Transport and decode errors propagate; a server that simply goes away
/// surfaces as [`EvaldError::Disconnected`], which launchers usually
/// treat as a normal end of service.
pub fn run_client(
    worker: &mut dyn ShardWorker,
    mut duplex: Duplex,
    opts: &ClientOptions,
) -> Result<(), EvaldError> {
    duplex.tx.send_frame(&encode_frame(&Frame::Hello {
        client: opts.client_id,
        n_flags: opts.n_flags,
    }))?;
    serve(worker, &mut duplex, opts)
}

/// The post-handshake serve loop: answer `Work` frames until the server
/// says `Shutdown`. Split out of [`run_client`] for worker *processes*,
/// which send their own [`Frame::Hello`] and consume the
/// [`Frame::Job`] description (to build their engine) before entering
/// the loop.
///
/// # Errors
///
/// Same contract as [`run_client`].
pub fn serve(
    worker: &mut dyn ShardWorker,
    duplex: &mut Duplex,
    opts: &ClientOptions,
) -> Result<(), EvaldError> {
    let mut shards_done = 0usize;
    let mut slow_ms: Option<u64> = None;
    let mut drop_next = false;
    loop {
        let bytes = duplex.rx.recv_frame()?;
        let (frame, _) = decode_frame(&bytes)?;
        match frame {
            Frame::Work {
                shard,
                span,
                genomes,
            } => {
                let (evals, stats) = worker.evaluate(&genomes, span);
                let spans = worker.drain_spans();
                if drop_next {
                    // Chaos: the evaluation happened but its Result is
                    // lost. The server's dispatch deadline recovers it.
                    drop_next = false;
                } else {
                    if let Some(ms) = slow_ms {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                    duplex.tx.send_frame(&encode_frame(&Frame::Result {
                        shard,
                        client: opts.client_id,
                        evals,
                        stats,
                        spans,
                    }))?;
                }
                shards_done += 1;
                if opts.fail_after_shards == Some(shards_done) {
                    match opts.fault_kind {
                        // Simulated crash: drop the connection without a
                        // word (the server recovers via re-dispatch).
                        FaultKind::Crash => return Ok(()),
                        // Simulated wedge: stop answering — no results,
                        // no Pongs — until severed or shut down. Only the
                        // server's liveness plane can recover the shards.
                        FaultKind::Hang => return drain_silently(duplex),
                        FaultKind::SlowFrame(ms) => slow_ms = Some(ms),
                        FaultKind::DropFrame => drop_next = true,
                    }
                }
            }
            Frame::EndBatch { .. } => {
                let (ast_artifacts, lower_artifacts) = worker.drain_artifacts();
                duplex.tx.send_frame(&encode_frame(&Frame::Merge {
                    client: opts.client_id,
                    records: worker.drain_merge(),
                    ast_artifacts,
                    lower_artifacts,
                }))?;
            }
            Frame::Job { payload } => worker.on_job(&payload),
            Frame::Ping { nonce } => {
                duplex
                    .tx
                    .send_frame(&encode_frame(&Frame::Pong { nonce }))?;
            }
            Frame::Shutdown => return Ok(()),
            // Server-bound frames are never addressed to a client;
            // ignore rather than die (forward compatibility).
            Frame::Hello { .. }
            | Frame::Result { .. }
            | Frame::Merge { .. }
            | Frame::Pong { .. } => {}
        }
    }
}

/// A deliberately hung client's terminal state: keep the connection open
/// but answer nothing, draining inbound frames so a Shutdown broadcast
/// or a server-side severance still ends the thread cleanly (the chaos
/// suite must never leak a wedged thread past teardown).
fn drain_silently(duplex: &mut Duplex) -> Result<(), EvaldError> {
    loop {
        let Ok(bytes) = duplex.rx.recv_frame() else {
            return Ok(()); // severed by the server's eviction
        };
        if matches!(decode_frame(&bytes), Ok((Frame::Shutdown, _))) {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel_duplex;

    struct Constant;

    impl ShardWorker for Constant {
        fn evaluate(&mut self, genomes: &[Vec<bool>], _span: u64) -> (Vec<WireEval>, ShardStats) {
            (
                genomes
                    .iter()
                    .map(|_| WireEval {
                        fitness_bits: 1.0f64.to_bits(),
                        failed: false,
                        wall_seconds_bits: 0,
                    })
                    .collect(),
                ShardStats::default(),
            )
        }
    }

    #[test]
    fn client_answers_work_and_exits_on_shutdown() {
        let (mut server, client) = channel_duplex();
        let handle = std::thread::spawn(move || {
            let mut w = Constant;
            run_client(
                &mut w,
                client,
                &ClientOptions {
                    client_id: 5,
                    n_flags: 3,
                    fail_after_shards: None,
                    fault_kind: FaultKind::Crash,
                },
            )
        });
        // Hello arrives first.
        let (hello, _) = decode_frame(&server.rx.recv_frame().unwrap()).unwrap();
        assert_eq!(
            hello,
            Frame::Hello {
                client: 5,
                n_flags: 3
            }
        );
        server
            .tx
            .send_frame(&encode_frame(&Frame::Work {
                shard: 11,
                span: 0,
                genomes: vec![vec![true, false, true]],
            }))
            .unwrap();
        let (result, _) = decode_frame(&server.rx.recv_frame().unwrap()).unwrap();
        match result {
            Frame::Result {
                shard,
                client,
                evals,
                ..
            } => {
                assert_eq!(shard, 11);
                assert_eq!(client, 5);
                assert_eq!(evals.len(), 1);
            }
            other => panic!("expected Result, got {other:?}"),
        }
        // EndBatch yields a (possibly empty) merge.
        server
            .tx
            .send_frame(&encode_frame(&Frame::EndBatch { batch: 0 }))
            .unwrap();
        let (merge, _) = decode_frame(&server.rx.recv_frame().unwrap()).unwrap();
        assert_eq!(
            merge,
            Frame::Merge {
                client: 5,
                records: vec![],
                ast_artifacts: vec![],
                lower_artifacts: vec![],
            }
        );
        server
            .tx
            .send_frame(&encode_frame(&Frame::Shutdown))
            .unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn fault_plan_drops_the_connection_after_n_shards() {
        let (mut server, client) = channel_duplex();
        let handle = std::thread::spawn(move || {
            let mut w = Constant;
            run_client(
                &mut w,
                client,
                &ClientOptions {
                    client_id: 0,
                    n_flags: 1,
                    fail_after_shards: Some(1),
                    fault_kind: FaultKind::Crash,
                },
            )
        });
        let _hello = server.rx.recv_frame().unwrap();
        server
            .tx
            .send_frame(&encode_frame(&Frame::Work {
                shard: 0,
                span: 0,
                genomes: vec![vec![true]],
            }))
            .unwrap();
        let _result = server.rx.recv_frame().unwrap();
        // The client is gone now: the next receive reports a disconnect.
        assert!(matches!(
            server.rx.recv_frame(),
            Err(EvaldError::Disconnected)
        ));
        handle.join().unwrap().unwrap();
    }
}
