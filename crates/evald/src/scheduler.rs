//! Work-stealing shard dispatch with cost-model-guided chunking.
//!
//! A batch of genomes is split into *shards* — contiguous chunks sized by
//! a [`CostModel`] seeded from the tuned module's shape features — and
//! fed to clients from one queue. The replacement for static striding
//! (the ROADMAP's "adaptive batch scheduling" item) is twofold:
//!
//! * **Work stealing** — clients pull the next pending shard whenever
//!   they finish one, so a slow client simply contributes fewer shards
//!   instead of stalling the batch behind its fixed stripe.
//! * **Straggler re-dispatch** — once the pending queue is drained, an
//!   idle client is handed a *copy* of an outstanding shard (the one
//!   with the fewest active assignees). The first result wins;
//!   late duplicates are counted in telemetry, not errors. Because
//!   evaluation is a pure function of the genome, duplicate results are
//!   bit-identical and the batch outcome is scheduling-independent.
//!
//! The scheduler is plain data behind the server's event loop — no locks
//! of its own, no threads, fully unit-testable.

use minicc::ModuleFeatures;
use std::collections::VecDeque;

/// Target modelled cost of one shard, in arbitrary cost-model units.
/// Shards far cheaper than this get coarser (framing amortization);
/// costlier modules get finer shards (stealing granularity).
const TARGET_SHARD_COST: f64 = 64.0;

/// Desired shards per client when cost does not constrain the split —
/// enough granularity that stealing can rebalance a 2–3x speed skew.
const SHARDS_PER_CLIENT: usize = 4;

/// Maximum concurrent copies of one shard (the original assignment plus
/// one straggler re-dispatch). Without hardware clocks in the dispatch
/// loop there is no straggle *detector*, so the bound is what keeps an
/// idle farm from re-evaluating the whole batch tail: redundant work is
/// capped at one extra copy per shard, while a genuinely dead or stuck
/// client still cannot stall a shard (its slot is freed on
/// [`Scheduler::client_dead`], and a sole-assignee death re-queues the
/// shard outright).
const MAX_SHARD_COPIES: usize = 2;

/// A crude per-compile cost estimate derived from module shape — enough
/// to *rank* modules (a 10x bigger module gets ~10x smaller shards), not
/// to predict wall-clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Modelled cost of compiling + scoring one genome, in arbitrary
    /// units (1.0 ≈ a small benchmark module).
    pub cost_per_genome: f64,
}

impl CostModel {
    /// A neutral model (every compile costs one unit).
    pub fn uniform() -> CostModel {
        CostModel {
            cost_per_genome: 1.0,
        }
    }

    /// Seed the model from a module's shape features: compile cost is
    /// dominated by AST size, with loops and calls weighted extra (they
    /// drive the optimizer's iterative passes).
    pub fn from_features(f: &ModuleFeatures) -> CostModel {
        let [_, _, _, ast_nodes, loops, _, calls, _] = f.counts;
        let cost = (f64::from(ast_nodes) + 8.0 * f64::from(loops) + 2.0 * f64::from(calls)) / 100.0;
        CostModel {
            cost_per_genome: cost.max(0.01),
        }
    }

    /// Shard size for a batch of `genomes` across `clients`: the finer
    /// of "≈4 shards per client" (stealing granularity) and "≤64
    /// modelled units per shard" (cost bound), floored at one genome.
    pub fn shard_size(&self, genomes: usize, clients: usize) -> usize {
        if genomes == 0 {
            return 1;
        }
        let by_granularity = (genomes as f64 / (clients.max(1) * SHARDS_PER_CLIENT) as f64).ceil();
        let by_cost = (TARGET_SHARD_COST / self.cost_per_genome).floor().max(1.0);
        by_granularity.min(by_cost).max(1.0) as usize
    }
}

struct ShardState {
    /// Offset of the shard's first genome in the batch.
    start: usize,
    genomes: Vec<Vec<bool>>,
    /// Clients currently holding a copy of this shard.
    assigned: Vec<u32>,
    done: bool,
}

/// One batch's dispatch state (see module docs).
pub struct Scheduler {
    base_id: u64,
    shards: Vec<ShardState>,
    pending: VecDeque<usize>,
    completed: usize,
    /// Shard copies handed out beyond the first assignment (straggler
    /// re-dispatch).
    pub redispatched: usize,
}

impl Scheduler {
    /// Split `genomes` into shards of `shard_size`, ids starting at
    /// `base_id` (ids must never be reused across batches, so stale
    /// results from a previous batch cannot alias a live shard).
    pub fn new(base_id: u64, genomes: &[Vec<bool>], shard_size: usize) -> Scheduler {
        let size = shard_size.max(1);
        let shards: Vec<ShardState> = genomes
            .chunks(size)
            .enumerate()
            .map(|(i, chunk)| ShardState {
                start: i * size,
                genomes: chunk.to_vec(),
                assigned: Vec::new(),
                done: false,
            })
            .collect();
        let pending = (0..shards.len()).collect();
        Scheduler {
            base_id,
            shards,
            pending,
            completed: 0,
            redispatched: 0,
        }
    }

    /// Number of shards in the batch.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether every shard has a result.
    pub fn all_done(&self) -> bool {
        self.completed == self.shards.len()
    }

    /// Hand `client` its next shard: a fresh pending one if any, else a
    /// copy of the outstanding shard with the fewest active assignees
    /// that this client is not already working on and that is below the
    /// copy cap (straggler re-dispatch, bounded by
    /// `MAX_SHARD_COPIES = 2` concurrent copies so an idle farm does not
    /// re-evaluate the entire batch tail). `None` when there is nothing
    /// useful left for this client.
    pub fn next_for(&mut self, client: u32) -> Option<(u64, Vec<Vec<bool>>)> {
        while let Some(i) = self.pending.pop_front() {
            let s = &mut self.shards[i];
            if s.done {
                continue; // completed while re-queued (racing client finished it)
            }
            s.assigned.push(client);
            return Some((self.base_id + i as u64, s.genomes.clone()));
        }
        let steal = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                !s.done && s.assigned.len() < MAX_SHARD_COPIES && !s.assigned.contains(&client)
            })
            .min_by_key(|(i, s)| (s.assigned.len(), *i))
            .map(|(i, _)| i)?;
        self.redispatched += 1;
        let s = &mut self.shards[steal];
        s.assigned.push(client);
        Some((self.base_id + steal as u64, s.genomes.clone()))
    }

    /// Record a shard result. Returns `Some(start_offset)` for the
    /// *first* result of a live shard (the caller commits the
    /// evaluations at that batch offset); `None` for duplicates and for
    /// ids outside this batch (stale results of an earlier batch's
    /// straggler copies).
    pub fn complete(&mut self, shard: u64) -> Option<usize> {
        let i = usize::try_from(shard.checked_sub(self.base_id)?).ok()?;
        let s = self.shards.get_mut(i)?;
        if s.done {
            return None;
        }
        s.done = true;
        self.completed += 1;
        Some(s.start)
    }

    /// Expected number of evaluations in `shard`'s result (`None` for a
    /// foreign id).
    pub fn shard_len(&self, shard: u64) -> Option<usize> {
        let i = usize::try_from(shard.checked_sub(self.base_id)?).ok()?;
        self.shards.get(i).map(|s| s.genomes.len())
    }

    /// Forget a dead client: shards it was the only active assignee of
    /// go back to the pending queue for someone else to pick up.
    pub fn client_dead(&mut self, client: u32) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            if s.done {
                continue;
            }
            let held = s.assigned.contains(&client);
            s.assigned.retain(|&c| c != client);
            if held && s.assigned.is_empty() && !self.pending.contains(&i) {
                self.pending.push_back(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genomes(n: usize) -> Vec<Vec<bool>> {
        (0..n).map(|i| vec![i % 2 == 0; 4]).collect()
    }

    #[test]
    fn cost_model_scales_shard_size_inversely_with_module_cost() {
        let small = CostModel {
            cost_per_genome: 0.1,
        };
        let big = CostModel {
            cost_per_genome: 40.0,
        };
        // A cheap module gets coarse shards (bounded by granularity); an
        // expensive one gets fine shards (bounded by cost).
        assert!(small.shard_size(64, 2) >= big.shard_size(64, 2));
        assert_eq!(big.shard_size(64, 2), 1);
        assert!(small.shard_size(64, 2) <= 64usize.div_ceil(2 * SHARDS_PER_CLIENT));
        // Degenerate inputs stay sane.
        assert_eq!(CostModel::uniform().shard_size(0, 4), 1);
        assert!(CostModel::uniform().shard_size(3, 0) >= 1);
    }

    #[test]
    fn features_seed_a_positive_cost() {
        let mut f = ModuleFeatures::default();
        let zero_cost = CostModel::from_features(&f).cost_per_genome;
        assert!(zero_cost > 0.0);
        f.counts[3] = 500; // ast_nodes
        f.counts[4] = 10; // loops
        let c = CostModel::from_features(&f);
        assert!(c.cost_per_genome > zero_cost);
    }

    #[test]
    fn shards_cover_the_batch_exactly_once() {
        let g = genomes(10);
        let mut sched = Scheduler::new(100, &g, 3);
        assert_eq!(sched.shard_count(), 4); // 3+3+3+1
        let mut seen = vec![false; g.len()];
        while let Some((id, shard)) = sched.next_for(0) {
            let start = sched.complete(id).expect("first result");
            assert_eq!(sched.shard_len(id), Some(shard.len()));
            for (k, genome) in shard.iter().enumerate() {
                assert!(!seen[start + k], "offset {} covered twice", start + k);
                seen[start + k] = true;
                assert_eq!(genome, &g[start + k]);
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(sched.all_done());
        assert_eq!(sched.redispatched, 0);
    }

    #[test]
    fn idle_clients_steal_outstanding_shards_first_result_wins() {
        let g = genomes(4);
        let mut sched = Scheduler::new(0, &g, 2); // 2 shards
        let (a, _) = sched.next_for(0).unwrap();
        let (b, _) = sched.next_for(1).unwrap();
        assert_ne!(a, b);
        // Client 2 has nothing fresh: it steals (lowest-assignee shard).
        let (stolen, shard) = sched.next_for(2).expect("steals a copy");
        assert!(stolen == a || stolen == b);
        assert_eq!(shard.len(), 2);
        assert_eq!(sched.redispatched, 1);
        // A client never steals a shard it already holds; with both
        // shards held, client 0 can only steal the one client 1 has.
        let (other, _) = sched.next_for(0).expect("steals the other shard");
        assert_eq!(other, b);
        // Both shards now hold two copies — the cap: a fourth client gets
        // nothing rather than a third redundant copy.
        assert!(sched.next_for(3).is_none());
        assert_eq!(sched.redispatched, 2);
        // First result wins; the duplicate is reported as such.
        assert!(sched.complete(stolen).is_some());
        assert!(sched.complete(stolen).is_none());
        // Foreign ids (earlier batches) are duplicates too, not panics.
        assert!(sched.complete(u64::MAX).is_none());
        assert!(sched.shard_len(u64::MAX).is_none());
    }

    #[test]
    fn dead_client_work_is_requeued() {
        let g = genomes(6);
        let mut sched = Scheduler::new(10, &g, 2); // 3 shards
        let (a, _) = sched.next_for(0).unwrap();
        let (_b, _) = sched.next_for(1).unwrap();
        let (_c, _) = sched.next_for(2).unwrap();
        // Client 0 dies holding shard `a`: it must come back as pending
        // and be handed to the next asking client as a *fresh* dispatch.
        sched.client_dead(0);
        let before = sched.redispatched;
        let (re, _) = sched.next_for(1).expect("requeued shard");
        assert_eq!(re, a);
        assert_eq!(sched.redispatched, before, "requeue is not a steal");
        // Death of a client holding nothing is a no-op.
        sched.client_dead(7);
    }

    #[test]
    fn steal_prefers_the_least_covered_shard() {
        let g = genomes(6);
        let mut sched = Scheduler::new(0, &g, 2); // shards 0,1,2
        let (s0, _) = sched.next_for(0).unwrap();
        let (s1, _) = sched.next_for(1).unwrap();
        let (s2, _) = sched.next_for(2).unwrap();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        // Client 3 steals shard 0 (lowest index among 1-assignee shards);
        // client 4 then steals shard 1, not shard 0 again.
        assert_eq!(sched.next_for(3).unwrap().0, 0);
        assert_eq!(sched.next_for(4).unwrap().0, 1);
        // Complete 0 and 1: the only steal target left for client 0 is 2.
        sched.complete(0);
        sched.complete(1);
        assert_eq!(sched.next_for(0).unwrap().0, 2);
        // Client 2 already holds shard 2 — nothing useful remains for it.
        assert!(sched.next_for(2).is_none());
    }
}
