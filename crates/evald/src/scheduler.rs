//! Work-stealing shard dispatch with cost-model-guided chunking.
//!
//! A batch of genomes is split into *shards* — contiguous chunks sized by
//! a [`CostModel`] seeded from the tuned module's shape features — and
//! fed to clients from one queue. The replacement for static striding
//! (the ROADMAP's "adaptive batch scheduling" item) is twofold:
//!
//! * **Work stealing** — clients pull the next pending shard whenever
//!   they finish one, so a slow client simply contributes fewer shards
//!   instead of stalling the batch behind its fixed stripe.
//! * **Straggler re-dispatch** — once the pending queue is drained, an
//!   idle client is handed a *copy* of an outstanding shard (the one
//!   with the fewest active assignees). The first result wins;
//!   late duplicates are counted in telemetry, not errors. Because
//!   evaluation is a pure function of the genome, duplicate results are
//!   bit-identical and the batch outcome is scheduling-independent.
//!
//! The scheduler is plain data behind the server's event loop — no locks
//! of its own, no threads, fully unit-testable.

use btel::Ewma;
use minicc::ModuleFeatures;
use std::collections::{BTreeMap, VecDeque};

/// Target modelled cost of one shard, in arbitrary cost-model units.
/// Shards far cheaper than this get coarser (framing amortization);
/// costlier modules get finer shards (stealing granularity).
const TARGET_SHARD_COST: f64 = 64.0;

/// Target wall-clock seconds per shard once *measured* per-genome times
/// are available: long enough to amortize framing, short enough that
/// work stealing can rebalance and a straggler re-dispatch is cheap.
pub const TARGET_SHARD_SECONDS: f64 = 0.25;

/// EWMA smoothing for observed per-genome wall time. 0.3 ≈ the last
/// ~5 shards dominate: fast enough to track a warming cache (early
/// shards compile, later ones hit), slow enough that one noisy shard
/// does not whipsaw the shard size.
const COST_EWMA_ALPHA: f64 = 0.3;

/// Observed shards required before the measured estimate overrides the
/// static module-shape prior (one shard is noise; a handful is signal).
pub const MIN_COST_OBSERVATIONS: u64 = 3;

/// Desired shards per client when cost does not constrain the split —
/// enough granularity that stealing can rebalance a 2–3x speed skew.
const SHARDS_PER_CLIENT: usize = 4;

/// Maximum concurrent copies of one shard (the original assignment plus
/// one straggler re-dispatch). Without hardware clocks in the dispatch
/// loop there is no straggle *detector*, so the bound is what keeps an
/// idle farm from re-evaluating the whole batch tail: redundant work is
/// capped at one extra copy per shard, while a genuinely dead or stuck
/// client still cannot stall a shard (its slot is freed on
/// [`Scheduler::client_dead`], and a sole-assignee death re-queues the
/// shard outright).
const MAX_SHARD_COPIES: usize = 2;

/// Per-compile cost estimation: a static module-shape *prior* refined
/// online by the wall times clients actually measure.
///
/// The prior ([`CostModel::from_features`]) only ranks modules — a 10x
/// bigger module gets ~10x smaller shards — and cannot predict
/// wall-clock. Once shards start completing, [`CostModel::observe`]
/// folds each shard's measured `wall_seconds / genomes` into a
/// per-client EWMA (clients are real processes now and genuinely
/// heterogeneous: a cold cache, a loaded core, a slower host). After
/// [`MIN_COST_OBSERVATIONS`] shards, [`CostModel::shard_size`] switches
/// from the prior's unit-cost bound to "about
/// [`TARGET_SHARD_SECONDS`] of measured work per shard", so shard sizes
/// converge to the farm's observed throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Modelled cost of compiling + scoring one genome, in arbitrary
    /// units (1.0 ≈ a small benchmark module). The static prior.
    pub cost_per_genome: f64,
    /// EWMA of observed seconds-per-genome, per reporting client
    /// (the shared [`btel::Ewma`] estimator; its convex-combination
    /// update is bit-identical to the inline math it replaced).
    per_client: BTreeMap<u32, Ewma>,
    /// Shard observations folded in so far.
    observations: u64,
}

impl CostModel {
    /// A neutral model (every compile costs one unit).
    pub fn uniform() -> CostModel {
        CostModel {
            cost_per_genome: 1.0,
            per_client: BTreeMap::new(),
            observations: 0,
        }
    }

    /// Seed the model from a module's shape features: compile cost is
    /// dominated by AST size, with loops and calls weighted extra (they
    /// drive the optimizer's iterative passes).
    pub fn from_features(f: &ModuleFeatures) -> CostModel {
        let [_, _, _, ast_nodes, loops, _, calls, _] = f.counts;
        let cost = (f64::from(ast_nodes) + 8.0 * f64::from(loops) + 2.0 * f64::from(calls)) / 100.0;
        CostModel {
            cost_per_genome: cost.max(0.01),
            per_client: BTreeMap::new(),
            observations: 0,
        }
    }

    /// Fold one completed shard's measurement into the model: `client`
    /// evaluated `genomes` genomes in `wall_seconds`. Non-finite or
    /// negative measurements (a client with a broken clock) and empty
    /// shards are ignored — the model must never be poisoned into NaN
    /// shard sizes. The non-finite/negative guard lives in
    /// [`btel::Ewma::observe`], shared with the daemon's rate
    /// estimators.
    pub fn observe(&mut self, client: u32, genomes: usize, wall_seconds: f64) {
        if genomes == 0 {
            return;
        }
        let per = wall_seconds / genomes as f64;
        let mut ewma = self
            .per_client
            .get(&client)
            .copied()
            .unwrap_or_else(|| Ewma::new(COST_EWMA_ALPHA));
        if !ewma.observe(per) {
            return;
        }
        debug_assert!(ewma.value().is_some_and(f64::is_finite));
        self.per_client.insert(client, ewma);
        self.observations += 1;
    }

    /// Shard observations folded in so far (telemetry).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The converged estimate: mean of the per-client EWMAs, or `None`
    /// while the model is still riding the static prior (fewer than
    /// [`MIN_COST_OBSERVATIONS`] shards observed).
    pub fn observed_secs_per_genome(&self) -> Option<f64> {
        if self.observations < MIN_COST_OBSERVATIONS || self.per_client.is_empty() {
            return None;
        }
        let sum: f64 = self
            .per_client
            .values()
            .filter_map(|e| e.value())
            .sum::<f64>();
        Some(sum / self.per_client.len() as f64)
    }

    /// Per-client EWMA estimates of seconds-per-genome (telemetry:
    /// heterogeneity across the farm).
    pub fn client_secs_per_genome(&self) -> Vec<(u32, f64)> {
        self.per_client
            .iter()
            .filter_map(|(&c, e)| e.value().map(|s| (c, s)))
            .collect()
    }

    /// Shard size for a batch of `genomes` across `clients`: the finer
    /// of "≈4 shards per client" (stealing granularity) and a cost
    /// bound, floored at one genome. Until enough shards have been
    /// measured the cost bound is the static prior's "≤64 modelled units
    /// per shard"; after that it is "≈[`TARGET_SHARD_SECONDS`] of
    /// *measured* work per shard".
    pub fn shard_size(&self, genomes: usize, clients: usize) -> usize {
        if genomes == 0 {
            return 1;
        }
        let by_granularity = (genomes as f64 / (clients.max(1) * SHARDS_PER_CLIENT) as f64).ceil();
        let by_cost = match self.observed_secs_per_genome() {
            // A farm of pure cache hits measures ~0 s/genome; the
            // granularity bound takes over rather than dividing by zero.
            Some(secs) if secs > 0.0 => (TARGET_SHARD_SECONDS / secs).floor().max(1.0),
            Some(_) => f64::from(u32::MAX),
            None => (TARGET_SHARD_COST / self.cost_per_genome).floor().max(1.0),
        };
        by_granularity.min(by_cost).max(1.0) as usize
    }
}

struct ShardState {
    /// Offset of the shard's first genome in the batch.
    start: usize,
    genomes: Vec<Vec<bool>>,
    /// Clients currently holding a copy of this shard.
    assigned: Vec<u32>,
    done: bool,
}

/// One batch's dispatch state (see module docs).
pub struct Scheduler {
    base_id: u64,
    shards: Vec<ShardState>,
    pending: VecDeque<usize>,
    completed: usize,
    /// Shard copies handed out beyond the first assignment (straggler
    /// re-dispatch).
    pub redispatched: usize,
}

impl Scheduler {
    /// Split `genomes` into shards of `shard_size`, ids starting at
    /// `base_id` (ids must never be reused across batches, so stale
    /// results from a previous batch cannot alias a live shard).
    pub fn new(base_id: u64, genomes: &[Vec<bool>], shard_size: usize) -> Scheduler {
        let size = shard_size.max(1);
        let shards: Vec<ShardState> = genomes
            .chunks(size)
            .enumerate()
            .map(|(i, chunk)| ShardState {
                start: i * size,
                genomes: chunk.to_vec(),
                assigned: Vec::new(),
                done: false,
            })
            .collect();
        let pending = (0..shards.len()).collect();
        Scheduler {
            base_id,
            shards,
            pending,
            completed: 0,
            redispatched: 0,
        }
    }

    /// Number of shards in the batch.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether every shard has a result.
    pub fn all_done(&self) -> bool {
        self.completed == self.shards.len()
    }

    /// Hand `client` its next shard: a fresh pending one if any, else a
    /// copy of the outstanding shard with the fewest active assignees
    /// that this client is not already working on and that is below the
    /// copy cap (straggler re-dispatch, bounded by
    /// `MAX_SHARD_COPIES = 2` concurrent copies so an idle farm does not
    /// re-evaluate the entire batch tail). `None` when there is nothing
    /// useful left for this client.
    pub fn next_for(&mut self, client: u32) -> Option<(u64, Vec<Vec<bool>>)> {
        while let Some(i) = self.pending.pop_front() {
            let s = &mut self.shards[i];
            if s.done {
                continue; // completed while re-queued (racing client finished it)
            }
            s.assigned.push(client);
            return Some((self.base_id + i as u64, s.genomes.clone()));
        }
        let steal = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                !s.done && s.assigned.len() < MAX_SHARD_COPIES && !s.assigned.contains(&client)
            })
            .min_by_key(|(i, s)| (s.assigned.len(), *i))
            .map(|(i, _)| i)?;
        self.redispatched += 1;
        let s = &mut self.shards[steal];
        s.assigned.push(client);
        Some((self.base_id + steal as u64, s.genomes.clone()))
    }

    /// Record a shard result. Returns `Some(start_offset)` for the
    /// *first* result of a live shard (the caller commits the
    /// evaluations at that batch offset); `None` for duplicates and for
    /// ids outside this batch (stale results of an earlier batch's
    /// straggler copies).
    pub fn complete(&mut self, shard: u64) -> Option<usize> {
        let i = usize::try_from(shard.checked_sub(self.base_id)?).ok()?;
        let s = self.shards.get_mut(i)?;
        if s.done {
            return None;
        }
        s.done = true;
        self.completed += 1;
        Some(s.start)
    }

    /// Expected number of evaluations in `shard`'s result (`None` for a
    /// foreign id).
    pub fn shard_len(&self, shard: u64) -> Option<usize> {
        let i = usize::try_from(shard.checked_sub(self.base_id)?).ok()?;
        self.shards.get(i).map(|s| s.genomes.len())
    }

    /// Forget a dead client: shards it was the only active assignee of
    /// go back to the pending queue for someone else to pick up.
    pub fn client_dead(&mut self, client: u32) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            if s.done {
                continue;
            }
            let held = s.assigned.contains(&client);
            s.assigned.retain(|&c| c != client);
            if held && s.assigned.is_empty() && !self.pending.contains(&i) {
                self.pending.push_back(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genomes(n: usize) -> Vec<Vec<bool>> {
        (0..n).map(|i| vec![i % 2 == 0; 4]).collect()
    }

    fn model_with_cost(cost_per_genome: f64) -> CostModel {
        let mut m = CostModel::uniform();
        m.cost_per_genome = cost_per_genome;
        m
    }

    #[test]
    fn cost_model_scales_shard_size_inversely_with_module_cost() {
        let small = model_with_cost(0.1);
        let big = model_with_cost(40.0);
        // A cheap module gets coarse shards (bounded by granularity); an
        // expensive one gets fine shards (bounded by cost).
        assert!(small.shard_size(64, 2) >= big.shard_size(64, 2));
        assert_eq!(big.shard_size(64, 2), 1);
        assert!(small.shard_size(64, 2) <= 64usize.div_ceil(2 * SHARDS_PER_CLIENT));
        // Degenerate inputs stay sane.
        assert_eq!(CostModel::uniform().shard_size(0, 4), 1);
        assert!(CostModel::uniform().shard_size(3, 0) >= 1);
    }

    #[test]
    fn features_seed_a_positive_cost() {
        let mut f = ModuleFeatures::default();
        let zero_cost = CostModel::from_features(&f).cost_per_genome;
        assert!(zero_cost > 0.0);
        f.counts[3] = 500; // ast_nodes
        f.counts[4] = 10; // loops
        let c = CostModel::from_features(&f);
        assert!(c.cost_per_genome > zero_cost);
    }

    #[test]
    fn observed_wall_times_converge_the_shard_size() {
        // A "big" module whose prior pins shards at one genome each; the
        // farm then measures 0.05 s/genome — five genomes fit the
        // 0.25 s/shard target, so the size must converge to 5 and stay
        // there.
        let mut m = model_with_cost(80.0);
        assert_eq!(m.shard_size(200, 2), 1, "prior says one genome per shard");
        assert!(m.observed_secs_per_genome().is_none());
        let mut sizes = Vec::new();
        for round in 0..12 {
            m.observe(0, 4, 0.2); // 0.05 s/genome
            m.observe(1, 4, 0.2);
            sizes.push(m.shard_size(200, 2));
            let _ = round;
        }
        assert_eq!(m.observations(), 24);
        let secs = m.observed_secs_per_genome().expect("converged estimate");
        assert!((secs - 0.05).abs() < 1e-12, "EWMA of a constant is itself");
        assert_eq!(
            *sizes.last().unwrap(),
            5,
            "0.25 s target / 0.05 s per genome"
        );
        // Convergence: once measurements stabilize, the size stops moving.
        assert!(
            sizes.windows(2).skip(2).all(|w| w[0] == w[1]),
            "sizes settle: {sizes:?}"
        );
        // Telemetry exposes the per-client estimates.
        let per_client = m.client_secs_per_genome();
        assert_eq!(per_client.len(), 2);
        assert!(per_client.iter().all(|&(_, s)| (s - 0.05).abs() < 1e-12));
    }

    #[test]
    fn cost_model_adapts_to_drifting_measurements() {
        // Early shards compile everything; later shards mostly hit the
        // client cache and run ~10x faster. The EWMA must follow the
        // drift and coarsen shards accordingly.
        let mut m = model_with_cost(80.0);
        for _ in 0..6 {
            m.observe(0, 4, 0.4); // 0.1 s/genome → 2 genomes/shard
        }
        let cold = m.shard_size(400, 1);
        assert_eq!(cold, 2);
        for _ in 0..24 {
            m.observe(0, 4, 0.04); // 0.01 s/genome → 25 genomes/shard
        }
        let warm = m.shard_size(400, 1);
        assert!(
            warm > cold,
            "faster farm ⇒ coarser shards ({cold} → {warm})"
        );
        // The EWMA keeps a vanishing tail of the old 0.1 s estimate
        // ((1-α)^24 ≈ 2e-4), so the bound floors to 24 rather than the
        // asymptotic 0.25/0.01 = 25.
        assert_eq!(warm, 24);
    }

    #[test]
    fn ewma_migration_is_bit_identical_to_the_inline_update() {
        // Unit-weight differential: replay the pre-migration inline
        // update (`and_modify` over a plain f64 map) against the
        // btel::Ewma-backed model over an uneven multi-client sequence,
        // and demand the per-client estimates — and therefore every
        // shard size the model will ever produce — match to the last
        // bit.
        let samples: &[(u32, usize, f64)] = &[
            (0, 4, 0.2),
            (1, 3, 0.33),
            (0, 7, 1.05),
            (0, 1, 0.0001),
            (2, 5, 2.5),
            (1, 4, 0.04),
            (0, 6, 0.125),
            (2, 2, 0.9),
        ];
        let mut old: BTreeMap<u32, f64> = BTreeMap::new();
        let mut model = CostModel::uniform();
        for &(client, genomes, wall) in samples {
            let per = wall / genomes as f64;
            old.entry(client)
                .and_modify(|e| *e = (1.0 - COST_EWMA_ALPHA) * *e + COST_EWMA_ALPHA * per)
                .or_insert(per);
            model.observe(client, genomes, wall);
        }
        let new: BTreeMap<u32, f64> = model.client_secs_per_genome().into_iter().collect();
        assert_eq!(old.len(), new.len());
        for (client, inline) in &old {
            assert_eq!(
                inline.to_bits(),
                new[client].to_bits(),
                "client {client} estimate diverged after the Ewma migration"
            );
        }
        assert_eq!(model.observations(), samples.len() as u64);
    }

    #[test]
    fn cost_model_ignores_degenerate_observations() {
        let mut m = CostModel::uniform();
        m.observe(0, 0, 1.0); // empty shard
        m.observe(0, 4, f64::NAN);
        m.observe(0, 4, f64::INFINITY);
        m.observe(0, 4, -1.0);
        assert_eq!(m.observations(), 0);
        assert!(m.observed_secs_per_genome().is_none());
        // All-cache-hit shards measuring ~0 seconds must not divide the
        // target by zero: the granularity bound takes over.
        for _ in 0..4 {
            m.observe(0, 8, 0.0);
        }
        let size = m.shard_size(64, 2);
        assert_eq!(size, 64usize.div_ceil(2 * SHARDS_PER_CLIENT));
    }

    /// Deterministic farm simulation: clients with fixed per-genome
    /// costs pull shards from a scheduler, an event clock advances to
    /// the earliest finish, and idle clients steal. Returns
    /// (makespan, redispatched copies).
    fn simulate_farm(mut sched: Scheduler, rates: &[f64]) -> (f64, usize) {
        // (next free time, currently held shard) per client.
        let mut busy_until = vec![0.0f64; rates.len()];
        let mut holding: Vec<Option<(u64, usize)>> = vec![None; rates.len()];
        for c in 0..rates.len() {
            if let Some((id, g)) = sched.next_for(c as u32) {
                busy_until[c] = g.len() as f64 * rates[c];
                holding[c] = Some((id, g.len()));
            }
        }
        let mut guard = 0;
        while !sched.all_done() {
            guard += 1;
            assert!(guard < 100_000, "simulation wedged");
            // Earliest busy client finishes its shard.
            let (c, _) = busy_until
                .iter()
                .enumerate()
                .filter(|(c, _)| holding[*c].is_some())
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("someone is busy while shards remain");
            let now = busy_until[c];
            let (id, _) = holding[c].take().unwrap();
            sched.complete(id);
            if let Some((next, g)) = sched.next_for(c as u32) {
                busy_until[c] = now + g.len() as f64 * rates[c];
                holding[c] = Some((next, g.len()));
            }
            // Clients idle since earlier also get a chance (mirrors the
            // server's wake_idle / re-dispatch loop).
            for (i, slot) in holding.iter_mut().enumerate() {
                if slot.is_none() {
                    if let Some((next, g)) = sched.next_for(i as u32) {
                        busy_until[i] = now.max(busy_until[i]) + g.len() as f64 * rates[i];
                        *slot = Some((next, g.len()));
                    }
                }
            }
        }
        let makespan = busy_until.iter().cloned().fold(0.0, f64::max);
        (makespan, sched.redispatched)
    }

    #[test]
    fn adaptive_shards_do_not_regress_redispatch_on_a_skewed_farm() {
        // Two clients with a 4x speed skew, 64 genomes. The static prior
        // for a cheap module yields coarse shards; the adaptive model —
        // converged on the same measurements the simulation uses —
        // yields finer ones. Straggler re-dispatch (redundant work) must
        // not regress, and the batch must not get slower.
        let rates = [0.05, 0.2]; // seconds per genome (4x skew)
        let genomes: Vec<Vec<bool>> = (0..64).map(|i| vec![i % 2 == 0; 8]).collect();

        let static_model = model_with_cost(0.5);
        let static_size = static_model.shard_size(genomes.len(), rates.len());
        let (static_span, static_redispatch) =
            simulate_farm(Scheduler::new(0, &genomes, static_size), &rates);

        let mut adaptive = model_with_cost(0.5);
        for _ in 0..4 {
            adaptive.observe(0, 8, 8.0 * rates[0]);
            adaptive.observe(1, 8, 8.0 * rates[1]);
        }
        let adaptive_size = adaptive.shard_size(genomes.len(), rates.len());
        assert_ne!(
            adaptive_size, static_size,
            "the measurement actually changed the split"
        );
        let (adaptive_span, adaptive_redispatch) =
            simulate_farm(Scheduler::new(0, &genomes, adaptive_size), &rates);

        assert!(
            adaptive_redispatch <= static_redispatch,
            "re-dispatch regressed: adaptive {adaptive_redispatch} > static {static_redispatch}"
        );
        assert!(
            adaptive_span <= static_span + 1e-9,
            "makespan regressed: adaptive {adaptive_span} > static {static_span}"
        );
    }

    #[test]
    fn shards_cover_the_batch_exactly_once() {
        let g = genomes(10);
        let mut sched = Scheduler::new(100, &g, 3);
        assert_eq!(sched.shard_count(), 4); // 3+3+3+1
        let mut seen = vec![false; g.len()];
        while let Some((id, shard)) = sched.next_for(0) {
            let start = sched.complete(id).expect("first result");
            assert_eq!(sched.shard_len(id), Some(shard.len()));
            for (k, genome) in shard.iter().enumerate() {
                assert!(!seen[start + k], "offset {} covered twice", start + k);
                seen[start + k] = true;
                assert_eq!(genome, &g[start + k]);
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(sched.all_done());
        assert_eq!(sched.redispatched, 0);
    }

    #[test]
    fn idle_clients_steal_outstanding_shards_first_result_wins() {
        let g = genomes(4);
        let mut sched = Scheduler::new(0, &g, 2); // 2 shards
        let (a, _) = sched.next_for(0).unwrap();
        let (b, _) = sched.next_for(1).unwrap();
        assert_ne!(a, b);
        // Client 2 has nothing fresh: it steals (lowest-assignee shard).
        let (stolen, shard) = sched.next_for(2).expect("steals a copy");
        assert!(stolen == a || stolen == b);
        assert_eq!(shard.len(), 2);
        assert_eq!(sched.redispatched, 1);
        // A client never steals a shard it already holds; with both
        // shards held, client 0 can only steal the one client 1 has.
        let (other, _) = sched.next_for(0).expect("steals the other shard");
        assert_eq!(other, b);
        // Both shards now hold two copies — the cap: a fourth client gets
        // nothing rather than a third redundant copy.
        assert!(sched.next_for(3).is_none());
        assert_eq!(sched.redispatched, 2);
        // First result wins; the duplicate is reported as such.
        assert!(sched.complete(stolen).is_some());
        assert!(sched.complete(stolen).is_none());
        // Foreign ids (earlier batches) are duplicates too, not panics.
        assert!(sched.complete(u64::MAX).is_none());
        assert!(sched.shard_len(u64::MAX).is_none());
    }

    #[test]
    fn dead_client_work_is_requeued() {
        let g = genomes(6);
        let mut sched = Scheduler::new(10, &g, 2); // 3 shards
        let (a, _) = sched.next_for(0).unwrap();
        let (_b, _) = sched.next_for(1).unwrap();
        let (_c, _) = sched.next_for(2).unwrap();
        // Client 0 dies holding shard `a`: it must come back as pending
        // and be handed to the next asking client as a *fresh* dispatch.
        sched.client_dead(0);
        let before = sched.redispatched;
        let (re, _) = sched.next_for(1).expect("requeued shard");
        assert_eq!(re, a);
        assert_eq!(sched.redispatched, before, "requeue is not a steal");
        // Death of a client holding nothing is a no-op.
        sched.client_dead(7);
    }

    #[test]
    fn steal_prefers_the_least_covered_shard() {
        let g = genomes(6);
        let mut sched = Scheduler::new(0, &g, 2); // shards 0,1,2
        let (s0, _) = sched.next_for(0).unwrap();
        let (s1, _) = sched.next_for(1).unwrap();
        let (s2, _) = sched.next_for(2).unwrap();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        // Client 3 steals shard 0 (lowest index among 1-assignee shards);
        // client 4 then steals shard 1, not shard 0 again.
        assert_eq!(sched.next_for(3).unwrap().0, 0);
        assert_eq!(sched.next_for(4).unwrap().0, 1);
        // Complete 0 and 1: the only steal target left for client 0 is 2.
        sched.complete(0);
        sched.complete(1);
        assert_eq!(sched.next_for(0).unwrap().0, 2);
        // Client 2 already holds shard 2 — nothing useful remains for it.
        assert!(sched.next_for(2).is_none());
    }
}
