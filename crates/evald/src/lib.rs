//! # evald — the sharded client–server evaluation service
//!
//! BinTuner's real deployment (paper §5 "Implementation") is
//! client–server: the server runs the genetic algorithm while a farm of
//! clients compiles candidate configurations and scores binary
//! difference. This crate is that deployment's machinery, kept fully
//! runnable offline: a "remote" client is a thread in the same process
//! or a pre-forked worker *process* connecting back over a Unix or TCP
//! loopback socket, but all traffic flows through the same versioned
//! wire format and transport abstraction either way, so changing the
//! deployment topology changes nothing above the transport layer.
//!
//! The crate is deliberately *generic*: it moves genome batches out and
//! evaluation results back, but knows nothing about compilers or NCD.
//! The embedder (the `bintuner` crate) supplies a [`ShardWorker`] per
//! client — there, a full fitness engine — and receives ordered results
//! plus the clients' [`MergeRecord`]s to fold into the single writable
//! fitness store it owns. That single-writer rule is the point: clients
//! only ever *send* results; the server serializes every store append.
//!
//! Layers, bottom up:
//!
//! * [`wire`] — versioned, length-prefixed, checksummed frames with
//!   canonical little-endian encodings (round-trip property-tested;
//!   truncated or version-mismatched frames are rejected, never
//!   misread).
//! * [`transport`] — [`FrameSender`]/[`FrameReceiver`] halves with
//!   three implementations: an in-process duplex channel, a Unix-domain
//!   socket, and TCP loopback (`TCP_NODELAY` on both ends).
//! * [`scheduler`] — the work-stealing shard queue: a batch's genomes
//!   are chunked by a [`CostModel`] seeded from the module's shape
//!   features and refined online from the wall times clients measure
//!   (per-client EWMA), idle clients steal outstanding shards from
//!   stragglers, and the first result for a shard wins (duplicates are
//!   counted, not errors).
//! * [`server`] / [`client`] — the dispatch loop ([`EvalServer`]) and
//!   the worker loop ([`run_client`]).
//!
//! Determinism: results are assembled by shard offset, and duplicate
//! results of a re-dispatched shard are bit-identical (evaluation is a
//! pure function of the genome), so the *batch result* is independent of
//! scheduling, client count, transport, and even mid-batch client death
//! — the property the embedder's differential tests pin.

#![warn(missing_docs)]

pub mod client;
pub mod scheduler;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{run_client, serve, ClientOptions, ShardWorker};
pub use scheduler::{CostModel, Scheduler};
pub use server::{ClientInjector, EvalServer, ServerTelemetry, ServiceStats};
pub use transport::{
    channel_duplex, tcp_connect, tcp_listener, unix_connect, unix_listener, BoundUnixListener,
    Duplex, FrameReceiver, FrameSender,
};
pub use wire::{
    Frame, MergeRecord, ShardStats, WireAstArtifact, WireEval, WireLowerArtifact, WireSpan,
    WIRE_VERSION,
};

use std::fmt;
use std::path::PathBuf;

/// Which transport carries frames between server and clients.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process duplex channel (no filesystem footprint; the fastest
    /// option when clients are threads of the tuning process).
    #[default]
    Channel,
    /// Unix-domain socket: clients connect to a socket file, exercising
    /// real stream framing.
    Unix,
    /// TCP over `127.0.0.1` loopback with `TCP_NODELAY`: the paper's
    /// networked deployment transport, required for worker processes
    /// that should one day live on other hosts.
    Tcp,
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportKind::Channel => "channel",
            TransportKind::Unix => "unix-socket",
            TransportKind::Tcp => "tcp",
        })
    }
}

/// How the farm's clients are realized.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum WorkerMode {
    /// Clients are threads of the tuning process (the offline default:
    /// no second binary needed, works on every transport).
    #[default]
    Threads,
    /// Clients are pre-forked OS processes re-exec'd from a worker
    /// binary, connecting back over a stream transport — real address
    /// spaces, real allocators, real crash isolation (the paper's farm).
    Processes(ProcessFarm),
}

/// Configuration of a pre-forked worker-process farm
/// ([`WorkerMode::Processes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessFarm {
    /// The worker binary to re-exec (must understand the embedder's
    /// hidden worker entry point). `None` means "the current
    /// executable", which is the common re-exec-yourself deployment.
    pub worker_binary: Option<PathBuf>,
    /// Grace period in milliseconds to wait for a worker process to exit
    /// after shutdown before it is killed outright.
    pub drain_grace_ms: u64,
}

impl Default for ProcessFarm {
    fn default() -> ProcessFarm {
        ProcessFarm {
            worker_binary: None,
            drain_grace_ms: 5_000,
        }
    }
}

/// A deliberate mid-run client failure, for resilience tests (chaos
/// engineering): the chosen client drops its connection after completing
/// a number of shards, and the service must finish the batch via
/// re-dispatch with an identical result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Zero-based index of the client that dies.
    pub client: usize,
    /// Shards the client completes before dropping its connection.
    pub after_shards: usize,
}

/// Configuration of one evaluation service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker clients to launch (`0` is treated as `1`).
    pub clients: usize,
    /// Transport between server and clients.
    pub transport: TransportKind,
    /// Whether clients are threads or pre-forked worker processes.
    /// Processes require a stream transport ([`TransportKind::Unix`] or
    /// [`TransportKind::Tcp`]) — there is no channel across an exec.
    pub workers: WorkerMode,
    /// Chaos hook: kill one client mid-run (see [`FaultPlan`]). `None`
    /// in production.
    pub fault: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            clients: 2,
            transport: TransportKind::Channel,
            workers: WorkerMode::Threads,
            fault: None,
        }
    }
}

/// Errors of the evaluation service.
///
/// Implements [`std::error::Error`] with source chaining (an I/O failure
/// underneath a transport error stays inspectable through
/// [`std::error::Error::source`]), so embedders can wrap it in their own
/// error types and `?` uniformly.
#[derive(Debug)]
pub enum EvaldError {
    /// An underlying I/O failure (socket create/read/write).
    Io(std::io::Error),
    /// A frame was shorter than its declared (or minimum) length.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The frame carried a different wire-format version.
    VersionMismatch {
        /// Version found in the frame header.
        got: u32,
        /// The version this build speaks ([`WIRE_VERSION`]).
        want: u32,
    },
    /// The frame did not start with the `EVLD` magic.
    BadMagic,
    /// A structurally invalid frame (bad checksum, unknown tag,
    /// malformed payload).
    Corrupt(&'static str),
    /// The peer closed the connection.
    Disconnected,
    /// No clients survived the handshake (or all died mid-batch with
    /// work outstanding).
    NoClients,
    /// A client sent a frame the protocol does not allow in its current
    /// state.
    Protocol(&'static str),
}

impl fmt::Display for EvaldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaldError::Io(e) => write!(f, "evaluation-service I/O error: {e}"),
            EvaldError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            EvaldError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "wire version mismatch: frame is v{got}, this build speaks v{want}"
                )
            }
            EvaldError::BadMagic => write!(f, "frame does not start with the EVLD magic"),
            EvaldError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            EvaldError::Disconnected => write!(f, "peer closed the connection"),
            EvaldError::NoClients => write!(f, "no live worker clients"),
            EvaldError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for EvaldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvaldError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EvaldError {
    fn from(e: std::io::Error) -> EvaldError {
        EvaldError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source_chain() {
        let io = EvaldError::Io(std::io::Error::new(
            std::io::ErrorKind::AddrInUse,
            "socket busy",
        ));
        assert!(io.to_string().contains("socket busy"));
        // Source chaining: the io::Error stays reachable.
        let src = std::error::Error::source(&io).expect("chained source");
        assert!(src.to_string().contains("socket busy"));
        assert!(std::error::Error::source(&EvaldError::Disconnected).is_none());

        let vm = EvaldError::VersionMismatch { got: 9, want: 1 };
        assert!(vm.to_string().contains("v9"));
        // `?` compatibility with Box<dyn Error>.
        fn takes_boxed() -> Result<(), Box<dyn std::error::Error>> {
            Err(EvaldError::NoClients)?
        }
        assert!(takes_boxed().is_err());
    }

    #[test]
    fn config_defaults() {
        let cfg = ServiceConfig::default();
        assert_eq!(cfg.clients, 2);
        assert_eq!(cfg.transport, TransportKind::Channel);
        assert_eq!(cfg.workers, WorkerMode::Threads);
        assert!(cfg.fault.is_none());
        assert_eq!(TransportKind::Unix.to_string(), "unix-socket");
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        let farm = ProcessFarm::default();
        assert!(farm.worker_binary.is_none());
        assert!(farm.drain_grace_ms > 0);
    }
}
