//! # evald — the sharded client–server evaluation service
//!
//! BinTuner's real deployment (paper §5 "Implementation") is
//! client–server: the server runs the genetic algorithm while a farm of
//! clients compiles candidate configurations and scores binary
//! difference. This crate is that deployment's machinery, kept fully
//! runnable offline: a "remote" client is a thread in the same process
//! or a pre-forked worker *process* connecting back over a Unix or TCP
//! loopback socket, but all traffic flows through the same versioned
//! wire format and transport abstraction either way, so changing the
//! deployment topology changes nothing above the transport layer.
//!
//! The crate is deliberately *generic*: it moves genome batches out and
//! evaluation results back, but knows nothing about compilers or NCD.
//! The embedder (the `bintuner` crate) supplies a [`ShardWorker`] per
//! client — there, a full fitness engine — and receives ordered results
//! plus the clients' [`MergeRecord`]s to fold into the single writable
//! fitness store it owns. That single-writer rule is the point: clients
//! only ever *send* results; the server serializes every store append.
//!
//! Layers, bottom up:
//!
//! * [`wire`] — versioned, length-prefixed, checksummed frames with
//!   canonical little-endian encodings (round-trip property-tested;
//!   truncated or version-mismatched frames are rejected, never
//!   misread).
//! * [`transport`] — [`FrameSender`]/[`FrameReceiver`] halves with
//!   three implementations: an in-process duplex channel, a Unix-domain
//!   socket, and TCP loopback (`TCP_NODELAY` on both ends).
//! * [`scheduler`] — the work-stealing shard queue: a batch's genomes
//!   are chunked by a [`CostModel`] seeded from the module's shape
//!   features and refined online from the wall times clients measure
//!   (per-client EWMA), idle clients steal outstanding shards from
//!   stragglers, and the first result for a shard wins (duplicates are
//!   counted, not errors).
//! * [`server`] / [`client`] — the dispatch loop ([`EvalServer`]) and
//!   the worker loop ([`run_client`]).
//!
//! Determinism: results are assembled by shard offset, and duplicate
//! results of a re-dispatched shard are bit-identical (evaluation is a
//! pure function of the genome), so the *batch result* is independent of
//! scheduling, client count, transport, and even mid-batch client death
//! — the property the embedder's differential tests pin.

#![warn(missing_docs)]

pub mod client;
pub mod scheduler;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{run_client, serve, ClientOptions, ShardWorker};
pub use scheduler::{CostModel, Scheduler};
pub use server::{ClientInjector, EvalServer, ServerTelemetry, ServiceStats};
pub use transport::{
    channel_duplex, tcp_connect, tcp_listener, unix_connect, unix_listener, BoundUnixListener,
    Duplex, FrameReceiver, FrameSender,
};
pub use wire::{
    Frame, MergeRecord, ShardStats, WireAstArtifact, WireEval, WireLowerArtifact, WireSpan,
    WIRE_VERSION,
};

use std::fmt;
use std::path::PathBuf;

/// Which transport carries frames between server and clients.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process duplex channel (no filesystem footprint; the fastest
    /// option when clients are threads of the tuning process).
    #[default]
    Channel,
    /// Unix-domain socket: clients connect to a socket file, exercising
    /// real stream framing.
    Unix,
    /// TCP over `127.0.0.1` loopback with `TCP_NODELAY`: the paper's
    /// networked deployment transport, required for worker processes
    /// that should one day live on other hosts.
    Tcp,
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportKind::Channel => "channel",
            TransportKind::Unix => "unix-socket",
            TransportKind::Tcp => "tcp",
        })
    }
}

/// How the farm's clients are realized.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum WorkerMode {
    /// Clients are threads of the tuning process (the offline default:
    /// no second binary needed, works on every transport).
    #[default]
    Threads,
    /// Clients are pre-forked OS processes re-exec'd from a worker
    /// binary, connecting back over a stream transport — real address
    /// spaces, real allocators, real crash isolation (the paper's farm).
    Processes(ProcessFarm),
}

/// Configuration of a pre-forked worker-process farm
/// ([`WorkerMode::Processes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessFarm {
    /// The worker binary to re-exec (must understand the embedder's
    /// hidden worker entry point). `None` means "the current
    /// executable", which is the common re-exec-yourself deployment.
    pub worker_binary: Option<PathBuf>,
    /// Grace period in milliseconds to wait for a worker process to exit
    /// after shutdown before it is killed outright.
    pub drain_grace_ms: u64,
    /// How long (milliseconds) launch waits for workers to connect back
    /// before giving up on the stragglers. Previously a hard-coded 30s
    /// inside the launcher; lifted here so slow CI hosts can widen it
    /// and chaos tests can shrink it.
    pub accept_deadline_ms: u64,
    /// Spawn attempts per worker slot at launch: one bad fork retries
    /// through the supervisor's deterministic backoff schedule instead
    /// of failing the whole run. `1` means no retry.
    pub spawn_attempts: u32,
}

impl Default for ProcessFarm {
    fn default() -> ProcessFarm {
        ProcessFarm {
            worker_binary: None,
            drain_grace_ms: 5_000,
            accept_deadline_ms: 30_000,
            spawn_attempts: 3,
        }
    }
}

/// What a deliberately faulted client does when its trigger shard count
/// is reached (see [`FaultPlan`]). Every kind must leave the batch
/// either bit-identical to the clean run (the server re-dispatches and
/// first-result-wins) or failed with a typed error — never hung.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultKind {
    /// Drop the connection (the original `fail_after_shards` behavior):
    /// a crashed worker.
    #[default]
    Crash,
    /// Stop answering entirely — no results, no heartbeat Pongs — while
    /// keeping the connection open: a wedged compile. Only the server's
    /// liveness plane (missed heartbeats / dispatch deadline) can
    /// recover the shard. The client drains frames silently until the
    /// server severs it or sends Shutdown, so teardown never hangs.
    Hang,
    /// Delay each subsequent Result frame by this many milliseconds: a
    /// straggler that is slow but alive.
    SlowFrame(u64),
    /// Silently drop the next Result frame after the trigger, then
    /// behave normally: a lost message. The server's dispatch deadline
    /// re-dispatches the shard elsewhere.
    DropFrame,
}

/// A deliberate mid-run client failure, for resilience tests (chaos
/// engineering): the chosen client misbehaves per [`FaultKind`] after
/// completing a number of shards, and the service must finish the batch
/// via re-dispatch with an identical result (or a typed error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Zero-based index of the client that dies.
    pub client: usize,
    /// Shards the client completes before the fault triggers.
    pub after_shards: usize,
    /// What the fault does when it triggers.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// The classic crash fault: `client` drops its connection after
    /// `after_shards` completed shards.
    pub fn crash(client: usize, after_shards: usize) -> FaultPlan {
        FaultPlan {
            client,
            after_shards,
            kind: FaultKind::Crash,
        }
    }
}

/// The server's liveness plane: heartbeat cadence and dispatch
/// deadlines. Defaults are deliberately generous — production runs
/// should never trip them on a healthy farm; chaos tests shrink them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivenessConfig {
    /// Milliseconds between heartbeat Pings to each connected client.
    /// `0` disables the heartbeat plane entirely (dispatch deadlines
    /// stay active).
    pub heartbeat_interval_ms: u64,
    /// Consecutive unanswered heartbeats before a client is evicted.
    pub max_missed_heartbeats: u32,
    /// Dispatch deadline = cost-model estimate for the shard × this
    /// multiplier (then floored at `min_dispatch_deadline_ms`). A client
    /// that blows the deadline is evicted and its shards re-dispatched.
    pub deadline_multiplier: f64,
    /// Floor on any dispatch deadline, milliseconds — also the deadline
    /// used before the cost model has enough observations. `0` disables
    /// dispatch deadlines entirely (heartbeats stay active).
    pub min_dispatch_deadline_ms: u64,
}

impl Default for LivenessConfig {
    fn default() -> LivenessConfig {
        LivenessConfig {
            heartbeat_interval_ms: 2_000,
            max_missed_heartbeats: 5,
            deadline_multiplier: 8.0,
            min_dispatch_deadline_ms: 10_000,
        }
    }
}

/// Configuration of one evaluation service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker clients to launch (`0` is treated as `1`).
    pub clients: usize,
    /// Transport between server and clients.
    pub transport: TransportKind,
    /// Whether clients are threads or pre-forked worker processes.
    /// Processes require a stream transport ([`TransportKind::Unix`] or
    /// [`TransportKind::Tcp`]) — there is no channel across an exec.
    pub workers: WorkerMode,
    /// Chaos hook: fault one client mid-run (see [`FaultPlan`]). `None`
    /// in production.
    pub fault: Option<FaultPlan>,
    /// Heartbeat and dispatch-deadline tuning (see [`LivenessConfig`]).
    pub liveness: LivenessConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            clients: 2,
            transport: TransportKind::Channel,
            workers: WorkerMode::Threads,
            fault: None,
            liveness: LivenessConfig::default(),
        }
    }
}

/// Errors of the evaluation service.
///
/// Implements [`std::error::Error`] with source chaining (an I/O failure
/// underneath a transport error stays inspectable through
/// [`std::error::Error::source`]), so embedders can wrap it in their own
/// error types and `?` uniformly.
#[derive(Debug)]
pub enum EvaldError {
    /// An underlying I/O failure (socket create/read/write).
    Io(std::io::Error),
    /// A frame was shorter than its declared (or minimum) length.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The frame carried a different wire-format version.
    VersionMismatch {
        /// Version found in the frame header.
        got: u32,
        /// The version this build speaks ([`WIRE_VERSION`]).
        want: u32,
    },
    /// The frame did not start with the `EVLD` magic.
    BadMagic,
    /// A structurally invalid frame (bad checksum, unknown tag,
    /// malformed payload).
    Corrupt(&'static str),
    /// The peer closed the connection.
    Disconnected,
    /// No clients survived the handshake (or all died mid-batch with
    /// work outstanding).
    NoClients,
    /// A client sent a frame the protocol does not allow in its current
    /// state.
    Protocol(&'static str),
}

impl fmt::Display for EvaldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaldError::Io(e) => write!(f, "evaluation-service I/O error: {e}"),
            EvaldError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            EvaldError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "wire version mismatch: frame is v{got}, this build speaks v{want}"
                )
            }
            EvaldError::BadMagic => write!(f, "frame does not start with the EVLD magic"),
            EvaldError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            EvaldError::Disconnected => write!(f, "peer closed the connection"),
            EvaldError::NoClients => write!(f, "no live worker clients"),
            EvaldError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for EvaldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvaldError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EvaldError {
    fn from(e: std::io::Error) -> EvaldError {
        EvaldError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source_chain() {
        let io = EvaldError::Io(std::io::Error::new(
            std::io::ErrorKind::AddrInUse,
            "socket busy",
        ));
        assert!(io.to_string().contains("socket busy"));
        // Source chaining: the io::Error stays reachable.
        let src = std::error::Error::source(&io).expect("chained source");
        assert!(src.to_string().contains("socket busy"));
        assert!(std::error::Error::source(&EvaldError::Disconnected).is_none());

        let vm = EvaldError::VersionMismatch { got: 9, want: 1 };
        assert!(vm.to_string().contains("v9"));
        // `?` compatibility with Box<dyn Error>.
        fn takes_boxed() -> Result<(), Box<dyn std::error::Error>> {
            Err(EvaldError::NoClients)?
        }
        assert!(takes_boxed().is_err());
    }

    #[test]
    fn config_defaults() {
        let cfg = ServiceConfig::default();
        assert_eq!(cfg.clients, 2);
        assert_eq!(cfg.transport, TransportKind::Channel);
        assert_eq!(cfg.workers, WorkerMode::Threads);
        assert!(cfg.fault.is_none());
        assert_eq!(TransportKind::Unix.to_string(), "unix-socket");
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        let farm = ProcessFarm::default();
        assert!(farm.worker_binary.is_none());
        assert!(farm.drain_grace_ms > 0);
        assert!(farm.accept_deadline_ms >= 1_000);
        assert!(farm.spawn_attempts >= 1);
        // Liveness defaults must be generous enough that a healthy farm
        // under CI load never trips them by accident.
        let live = cfg.liveness;
        assert!(live.heartbeat_interval_ms >= 1_000);
        assert!(live.max_missed_heartbeats >= 3);
        assert!(live.deadline_multiplier >= 4.0);
        assert!(live.min_dispatch_deadline_ms >= 5_000);
        assert_eq!(FaultPlan::crash(1, 2).kind, FaultKind::Crash);
    }
}
