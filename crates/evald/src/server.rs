//! The server side: dispatch loop, result assembly, merge sink.
//!
//! [`EvalServer`] owns one sender per client connection plus a single
//! event queue fed by per-connection reader threads. One call to
//! [`EvalServer::evaluate`] is one batch:
//!
//! 1. the batch is chunked into shards ([`crate::Scheduler`]),
//! 2. every live client is primed with a shard and re-fed as results
//!    arrive (work stealing + straggler re-dispatch),
//! 3. results are committed at their shard's batch offset — first result
//!    wins, duplicates are counted,
//! 4. after the last shard, every live client is asked to flush its
//!    local cache ([`crate::wire::Frame::EndBatch`]); the returned
//!    [`MergeRecord`]s accumulate in the server (the *single writer* of
//!    the embedder's persistent store — the answer to the "concurrent
//!    store writers" roadmap item is that nobody else ever writes).
//!
//! A dead client (closed connection, failed send, undecodable frame) is
//! dropped from the rotation and its outstanding shards are re-queued;
//! the batch completes as long as one client survives.
//!
//! A *hung* client — one that neither answers nor disconnects — is
//! handled by the liveness plane ([`crate::LivenessConfig`]): the event
//! loop waits in bounded ticks, probes idle clients with
//! [`crate::wire::Frame::Ping`] heartbeats, and holds every outstanding
//! dispatch to a wall-clock deadline derived from the adaptive cost
//! model. A client that misses its heartbeat budget or blows a dispatch
//! deadline is *evicted* exactly like a dead client. Eviction only
//! changes scheduling; because evaluation is a pure function of the
//! genome, results stay bit-identical to an unfaulted run.

use crate::scheduler::{CostModel, Scheduler};
use crate::transport::{Duplex, FrameReceiver, FrameSender};
use crate::wire::{
    decode_frame, encode_frame, Frame, MergeRecord, WireAstArtifact, WireEval, WireLowerArtifact,
    WireSpan,
};
use crate::{EvaldError, LivenessConfig};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cumulative service telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Batches evaluated.
    pub batches: usize,
    /// Shards dispatched (first assignments).
    pub shards: usize,
    /// Shard copies handed to idle clients beyond the first assignment
    /// (straggler re-dispatch).
    pub redispatched_shards: usize,
    /// Individual evaluations discarded because another client answered
    /// the shard first (first result wins; duplicates are bit-identical).
    pub duplicate_results: usize,
    /// Client-cache records received in merge frames.
    pub merged_records: usize,
    /// Client-produced stage artifacts received in merge frames (v4).
    pub merged_artifacts: usize,
    /// Real compiles reported by clients (includes duplicated straggler
    /// work — the farm's actual effort, unlike the embedder's logical
    /// compile count).
    pub client_compiles: u64,
    /// Client-side cache hits reported by clients.
    pub client_cache_hits: u64,
    /// Client compiles that ran the full pipeline (no stage artifact
    /// reused; same farm-effort caveat as `client_compiles`).
    pub client_full_compiles: u64,
    /// Client compiles that reused a cached stage-1 artifact.
    pub client_ast_reuse: u64,
    /// Client compiles that reused a cached stage-2 artifact.
    pub client_lower_reuse: u64,
    /// Clients lost over the service's lifetime.
    pub clients_lost: usize,
    /// Clients that joined *after* launch (reconnecting or respawned
    /// worker processes absorbed mid-run via [`ClientInjector`]).
    pub clients_joined: usize,
    /// Shard wall-time measurements folded into the adaptive cost model.
    pub cost_observations: u64,
    /// Heartbeat probes that were still unanswered when the next probe
    /// came due (the liveness plane's early-warning signal).
    pub heartbeat_misses: u64,
    /// Clients the liveness plane condemned — too many missed
    /// heartbeats or a blown dispatch deadline. A subset of
    /// [`ServiceStats::clients_lost`].
    pub evicted_clients: usize,
}

/// The embedder's telemetry handles for the dispatch server, resolved
/// once against a `btel::Registry` and installed via
/// [`EvalServer::set_telemetry`]. Absent (the default), the server
/// takes no clock readings and sends span id `0` on every `Work` frame
/// — bit-identical to pre-telemetry behavior.
pub struct ServerTelemetry {
    /// Records shard-dispatch spans and stitches in worker spans.
    pub tracer: btel::Tracer,
    /// Dispatch latency: `Work` sent → first `Result` received.
    pub dispatch_seconds: Arc<btel::Histogram>,
    /// Shard copies handed out beyond the first assignment.
    pub redispatched: Arc<btel::Counter>,
    /// Clients admitted after launch (reconnects).
    pub clients_joined: Arc<btel::Counter>,
    /// Clients lost over the service's lifetime.
    pub clients_lost: Arc<btel::Counter>,
    /// Heartbeat probes unanswered when the next probe fired.
    pub heartbeat_misses: Arc<btel::Counter>,
    /// Liveness evictions (missed heartbeats or blown dispatch
    /// deadlines).
    pub evictions: Arc<btel::Counter>,
}

enum Event {
    Frame(u32, Frame),
    Gone(u32, EvaldError),
    /// A connection injected after launch (see [`ClientInjector`]): the
    /// server must complete the Hello handshake before handing it work.
    Joined(u32, Box<dyn FrameSender>),
}

/// Spawn the per-connection reader thread: decode frames off `rx` and
/// forward them as events until the connection or the server goes away.
fn spawn_reader(
    id: u32,
    mut frame_rx: Box<dyn FrameReceiver>,
    tx: mpsc::Sender<Event>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match frame_rx.recv_frame() {
            Ok(bytes) => match decode_frame(&bytes) {
                Ok((frame, _)) => {
                    if tx.send(Event::Frame(id, frame)).is_err() {
                        return; // server gone
                    }
                }
                Err(e) => {
                    let _ = tx.send(Event::Gone(id, e));
                    return;
                }
            },
            Err(e) => {
                let _ = tx.send(Event::Gone(id, e));
                return;
            }
        }
    })
}

/// A handle for feeding new client connections into a running
/// [`EvalServer`] — the reconnect path of the process farm: an acceptor
/// thread keeps `accept()`ing on the farm's listener and injects every
/// late connection here. The server handshakes the newcomer (Hello,
/// width check), re-sends the current job description, and folds it into
/// the dispatch rotation; a client that died earlier simply comes back
/// under a fresh id.
///
/// Cloneable and `Send`: the acceptor owns a clone while the server
/// keeps running.
#[derive(Clone)]
pub struct ClientInjector {
    events: mpsc::Sender<Event>,
    next_id: Arc<AtomicU32>,
}

impl ClientInjector {
    /// Hand a freshly accepted connection to the server, returning the
    /// client id it will serve under. The injection is ordered before
    /// anything the connection's reader produces, so the newcomer's
    /// `Hello` always finds the server expecting it.
    pub fn inject(&self, duplex: Duplex) -> u32 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Joined must enter the queue before the reader's first frame;
        // sending it *before* the reader thread exists guarantees that.
        // (A send after server teardown is simply dropped — the
        // connection is severed when `duplex` goes out of scope.)
        let _ = self.events.send(Event::Joined(id, duplex.tx));
        // The reader is not joined at teardown (the server never learns
        // its handle); it exits on its own once the sender half is
        // closed and the severed connection surfaces as Disconnected.
        let _ = spawn_reader(id, duplex.rx, self.events.clone());
        id
    }
}

/// The dispatch server (see module docs).
pub struct EvalServer {
    senders: Vec<Option<Box<dyn crate::transport::FrameSender>>>,
    events: mpsc::Receiver<Event>,
    /// Kept for [`EvalServer::injector`] clones; the server itself never
    /// sends on it.
    events_tx: mpsc::Sender<Event>,
    /// Next id for injected clients (initial clients take 0..n).
    next_client_id: Arc<AtomicU32>,
    readers: Vec<JoinHandle<()>>,
    cost: CostModel,
    /// Chromosome width every client must announce.
    expect_n_flags: u16,
    /// The embedder's job description, re-sent to every late joiner.
    job: Option<Vec<u8>>,
    /// Injected clients that have not completed their Hello yet — not
    /// eligible for work until they do.
    pending_hello: HashSet<u32>,
    next_shard_id: u64,
    next_batch: u64,
    stats: ServiceStats,
    merged: Vec<MergeRecord>,
    merged_ast: Vec<WireAstArtifact>,
    merged_lower: Vec<WireLowerArtifact>,
    /// Shard size chosen for each batch, in batch order (convergence
    /// telemetry for the adaptive cost model).
    shard_sizes: Vec<usize>,
    /// Why the most recently lost client went away (diagnostics).
    last_loss: Option<String>,
    /// Clients with no useful work at last dispatch — re-poked when a
    /// client death re-queues shards.
    idle: HashSet<u32>,
    /// Telemetry handles; `None` (the default) is the Off-mode purity
    /// contract: no telemetry clocks, no spans, no metric writes. (The
    /// liveness plane keeps its own clock regardless — it steers
    /// scheduling, which never changes results, not telemetry.)
    tel: Option<ServerTelemetry>,
    /// Heartbeat cadence and dispatch-deadline policy (see
    /// [`LivenessConfig`]); installed via [`EvalServer::set_liveness`].
    liveness: LivenessConfig,
    /// Pings sent to a client since its last frame (any frame counts as
    /// proof of life). Reset to zero on receive; eviction when it
    /// exceeds [`LivenessConfig::max_missed_heartbeats`].
    unanswered_pings: HashMap<u32, u32>,
    /// Wall-clock deadline for each client's outstanding dispatch
    /// (a client holds at most one `Work` frame at a time). Set on
    /// dispatch, cleared on its `Result`; blowing it is an eviction.
    dispatch_deadlines: HashMap<u32, Instant>,
    /// When the last round of heartbeat probes went out.
    last_ping: Option<Instant>,
    /// Monotonically increasing ping nonce (diagnostics only — any
    /// inbound frame proves liveness, not just the matching Pong).
    next_nonce: u64,
    /// Send time per outstanding dispatch span, keyed by span id
    /// (telemetry only). Keyed by span — not shard — so each straggler
    /// copy of a re-dispatched shard closes its *own* dispatch span (the
    /// one its worker parented stage spans under, echoed back in
    /// [`crate::wire::ShardStats::span`]).
    inflight_spans: HashMap<u64, Instant>,
}

impl EvalServer {
    /// Build a server over established connections and complete the
    /// handshake: every client must send [`Frame::Hello`] with a
    /// matching chromosome width. Clients that fail the handshake are
    /// dropped (counted in [`ServiceStats::clients_lost`]).
    ///
    /// # Errors
    ///
    /// [`EvaldError::NoClients`] when no client survives the handshake.
    pub fn new(
        connections: Vec<Duplex>,
        cost: CostModel,
        expect_n_flags: u16,
    ) -> Result<EvalServer, EvaldError> {
        let (tx, rx) = mpsc::channel();
        let mut senders = Vec::new();
        let mut readers = Vec::new();
        for (id, duplex) in connections.into_iter().enumerate() {
            senders.push(Some(duplex.tx));
            readers.push(spawn_reader(id as u32, duplex.rx, tx.clone()));
        }
        let next_client_id = Arc::new(AtomicU32::new(senders.len() as u32));
        let mut server = EvalServer {
            senders,
            events: rx,
            events_tx: tx,
            next_client_id,
            readers,
            cost,
            expect_n_flags,
            job: None,
            pending_hello: HashSet::new(),
            next_shard_id: 0,
            next_batch: 0,
            stats: ServiceStats::default(),
            merged: Vec::new(),
            merged_ast: Vec::new(),
            merged_lower: Vec::new(),
            shard_sizes: Vec::new(),
            last_loss: None,
            idle: HashSet::new(),
            tel: None,
            liveness: LivenessConfig::default(),
            unanswered_pings: HashMap::new(),
            dispatch_deadlines: HashMap::new(),
            last_ping: None,
            next_nonce: 0,
            inflight_spans: HashMap::new(),
        };
        server.handshake()?;
        Ok(server)
    }

    /// Install telemetry handles. Dispatches from here on carry real
    /// span ids on their `Work` frames, dispatch latency lands in the
    /// histogram, and worker-recorded spans are stitched into the
    /// tracer as results arrive.
    pub fn set_telemetry(&mut self, tel: ServerTelemetry) {
        self.tel = Some(tel);
    }

    /// Install the liveness policy: heartbeat cadence, miss budget, and
    /// dispatch-deadline scaling. The default ([`LivenessConfig`]) is
    /// deliberately generous — tune it down only in chaos tests.
    pub fn set_liveness(&mut self, liveness: LivenessConfig) {
        self.liveness = liveness;
    }

    /// A handle for injecting client connections accepted *after*
    /// launch (the farm's reconnect path).
    pub fn injector(&self) -> ClientInjector {
        ClientInjector {
            events: self.events_tx.clone(),
            next_id: Arc::clone(&self.next_client_id),
        }
    }

    /// Install the embedder's job description and broadcast it to every
    /// live client. Late joiners receive it again right after their
    /// handshake, so a worker process can always build its engine before
    /// its first `Work` frame.
    pub fn set_job(&mut self, payload: Vec<u8>) {
        for c in self.ready_ids() {
            self.send_to(
                c,
                &Frame::Job {
                    payload: payload.clone(),
                },
            );
        }
        self.job = Some(payload);
    }

    fn alive(&self) -> usize {
        self.senders.iter().filter(|s| s.is_some()).count()
    }

    fn alive_ids(&self) -> Vec<u32> {
        self.senders
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i as u32))
            .collect()
    }

    /// Clients eligible for work: connected *and* past their handshake.
    fn ready_ids(&self) -> Vec<u32> {
        self.alive_ids()
            .into_iter()
            .filter(|c| !self.pending_hello.contains(c))
            .collect()
    }

    /// Grow the sender table to cover an injected client id.
    fn ensure_slot(&mut self, client: u32) {
        let need = client as usize + 1;
        if self.senders.len() < need {
            self.senders.resize_with(need, || None);
        }
    }

    /// Register an injected connection: it owes us a Hello before it can
    /// take work.
    fn register_joined(&mut self, client: u32, sender: Box<dyn FrameSender>) {
        self.ensure_slot(client);
        self.senders[client as usize] = Some(sender);
        self.pending_hello.insert(client);
    }

    /// Handle a Hello from an injected client: width-check it, replay
    /// the job description, and admit it to the rotation. Returns
    /// `false` when the Hello was *not* a valid admission (repeated
    /// Hello from an established client, or width mismatch) — the
    /// caller treats that as a protocol violation / lost client.
    fn admit_joined(&mut self, client: u32, n_flags: u16) -> bool {
        if !self.pending_hello.remove(&client) {
            return false;
        }
        if n_flags != self.expect_n_flags {
            self.drop_client(client);
            return false;
        }
        self.stats.clients_joined += 1;
        if let Some(t) = &self.tel {
            t.clients_joined.inc();
        }
        if let Some(job) = self.job.clone() {
            if !self.send_to(client, &Frame::Job { payload: job }) {
                return false;
            }
        }
        true
    }

    fn drop_client(&mut self, client: u32) {
        self.ensure_slot(client);
        if let Some(mut sender) = self.senders[client as usize].take() {
            // Sever the connection: a still-alive client (protocol
            // violation, handshake mismatch) and our own reader thread
            // must both observe EOF instead of blocking forever.
            sender.close();
            self.stats.clients_lost += 1;
            if let Some(t) = &self.tel {
                t.clients_lost.inc();
            }
        }
        self.pending_hello.remove(&client);
        self.idle.remove(&client);
        self.unanswered_pings.remove(&client);
        self.dispatch_deadlines.remove(&client);
    }

    /// How long one event wait may block before the liveness plane gets
    /// a turn. Derived from the heartbeat cadence; bounded so even a
    /// heartbeat-free configuration keeps checking dispatch deadlines.
    fn liveness_tick(&self) -> Duration {
        let ms = if self.liveness.heartbeat_interval_ms == 0 {
            500
        } else {
            (self.liveness.heartbeat_interval_ms / 2).clamp(25, 500)
        };
        Duration::from_millis(ms)
    }

    /// The wall-clock budget for a dispatch of `genomes` genomes: the
    /// cost model's converged estimate scaled by the configured
    /// multiplier, floored generously while the model is still cold.
    fn dispatch_deadline(&self, genomes: usize) -> Option<Instant> {
        if self.liveness.min_dispatch_deadline_ms == 0 {
            return None; // dispatch deadlines disabled
        }
        let floor = Duration::from_millis(self.liveness.min_dispatch_deadline_ms);
        let budget = match self.cost.observed_secs_per_genome() {
            Some(secs) if secs > 0.0 => {
                let scaled = secs * genomes as f64 * self.liveness.deadline_multiplier;
                floor.max(Duration::from_secs_f64(scaled))
            }
            _ => floor,
        };
        Some(Instant::now() + budget)
    }

    /// One turn of the liveness plane, run whenever an event wait times
    /// out: evict dispatches past their deadline, fire due heartbeat
    /// probes, and condemn clients whose miss budget is spent. Returns
    /// the condemned client ids; the caller evicts them through the
    /// same path as a dead client.
    fn liveness_sweep(&mut self) -> Vec<u32> {
        let now = Instant::now();
        let mut condemned: Vec<u32> = self
            .dispatch_deadlines
            .iter()
            .filter(|&(_, deadline)| now >= *deadline)
            .map(|(&c, _)| c)
            .collect();
        let due = self.liveness.heartbeat_interval_ms > 0
            && !self.last_ping.is_some_and(|t| {
                now.duration_since(t) < Duration::from_millis(self.liveness.heartbeat_interval_ms)
            });
        if due {
            self.last_ping = Some(now);
            for c in self.ready_ids() {
                if self.dispatch_deadlines.contains_key(&c) {
                    // Busy on a shard: the client loop cannot answer a
                    // probe mid-evaluation, so the dispatch deadline —
                    // not the heartbeat — governs it.
                    continue;
                }
                let missed = self.unanswered_pings.get(&c).copied().unwrap_or(0);
                if missed > 0 {
                    self.stats.heartbeat_misses += 1;
                    if let Some(t) = &self.tel {
                        t.heartbeat_misses.inc();
                    }
                }
                if missed >= self.liveness.max_missed_heartbeats {
                    condemned.push(c);
                    continue;
                }
                self.unanswered_pings.insert(c, missed + 1);
                let nonce = self.next_nonce;
                self.next_nonce += 1;
                self.send_to(c, &Frame::Ping { nonce });
            }
        }
        condemned.sort_unstable();
        condemned.dedup();
        condemned
    }

    /// Book-keeping shared by every liveness eviction (the severance
    /// itself goes through [`EvalServer::drop_client`] as usual).
    fn note_eviction(&mut self, client: u32) {
        self.last_loss = Some(format!(
            "client {client} evicted: missed heartbeats or blew its dispatch deadline"
        ));
        self.stats.evicted_clients += 1;
        if let Some(t) = &self.tel {
            t.evictions.inc();
        }
    }

    /// Send a frame to `client`; on failure the client is dropped and
    /// `false` returned.
    fn send_to(&mut self, client: u32, frame: &Frame) -> bool {
        let Some(sender) = self
            .senders
            .get_mut(client as usize)
            .and_then(Option::as_mut)
        else {
            return false;
        };
        if sender.send_frame(&encode_frame(frame)).is_err() {
            self.drop_client(client);
            return false;
        }
        true
    }

    fn handshake(&mut self) -> Result<(), EvaldError> {
        let mut pending: HashSet<u32> = self.alive_ids().into_iter().collect();
        while !pending.is_empty() {
            // deadline: the launch handshake is bounded by the embedder
            // (thread clients Hello before their first recv; process
            // farms gate admission behind their own accept deadline).
            match self.events.recv() {
                Ok(Event::Frame(c, Frame::Hello { n_flags, .. })) => {
                    if self.pending_hello.contains(&c) {
                        // An injected client racing the launch
                        // handshake; admit it on the side.
                        self.admit_joined(c, n_flags);
                    } else {
                        if n_flags != self.expect_n_flags {
                            self.drop_client(c);
                        }
                        pending.remove(&c);
                    }
                }
                Ok(Event::Frame(c, _)) => {
                    // Anything before Hello is a protocol violation.
                    self.drop_client(c);
                    pending.remove(&c);
                }
                Ok(Event::Gone(c, e)) => {
                    self.last_loss = Some(e.to_string());
                    self.drop_client(c);
                    pending.remove(&c);
                }
                Ok(Event::Joined(c, sender)) => self.register_joined(c, sender),
                Err(_) => break, // all readers gone
            }
        }
        if self.alive() == 0 {
            return Err(EvaldError::NoClients);
        }
        Ok(())
    }

    /// Fold one shard's measured wall time into the adaptive cost model.
    fn observe_cost(&mut self, client: u32, genomes: usize, wall_seconds: f64) {
        self.cost.observe(client, genomes, wall_seconds);
        self.stats.cost_observations = self.cost.observations();
    }

    /// Give `client` its next shard if the scheduler has one; otherwise
    /// mark it idle.
    fn dispatch_next(&mut self, sched: &mut Scheduler, client: u32) {
        let connected = self
            .senders
            .get(client as usize)
            .is_some_and(Option::is_some);
        if !connected || self.pending_hello.contains(&client) {
            return;
        }
        let Some((shard, genomes)) = sched.next_for(client) else {
            self.idle.insert(client);
            return;
        };
        let span = match &self.tel {
            Some(t) if t.tracer.is_enabled() => {
                let id = t.tracer.alloc_id();
                self.inflight_spans.insert(id, Instant::now());
                id
            }
            _ => 0,
        };
        let deadline = self.dispatch_deadline(genomes.len());
        if self.send_to(
            client,
            &Frame::Work {
                shard,
                span,
                genomes,
            },
        ) {
            self.idle.remove(&client);
            // The dispatch deadline takes over liveness duty from the
            // heartbeat until the shard's Result comes back.
            self.unanswered_pings.insert(client, 0);
            if let Some(deadline) = deadline {
                self.dispatch_deadlines.insert(client, deadline);
            }
        } else {
            // Send failed: the client was dropped mid-dispatch. Release
            // its shards; the reader's Gone event (a closed connection
            // always produces one) re-pokes idle clients.
            sched.client_dead(client);
        }
    }

    /// Close out a shard's dispatch span and stitch the worker's spans
    /// into the trace (no-op without telemetry). `span` is the dispatch
    /// span the worker echoed back ([`crate::wire::ShardStats::span`]):
    /// the copy that
    /// actually produced this result, `0` when the Work frame predates
    /// telemetry.
    fn fold_result_telemetry(&mut self, client: u32, span: u64, spans: Vec<WireSpan>) {
        let Some(t) = &self.tel else { return };
        if let Some(sent) = self.inflight_spans.remove(&span) {
            t.tracer.record_with_id(span, "dispatch", 0, sent);
            t.dispatch_seconds
                .observe_seconds(sent.elapsed().as_secs_f64());
        }
        t.tracer.import(spans.into_iter().map(|s| btel::SpanRecord {
            id: s.id,
            parent: s.parent,
            name: s.name,
            start_us: s.start_us,
            dur_us: s.dur_us,
            client,
        }));
    }

    /// Re-poke idle clients (after a death re-queued shards).
    fn wake_idle(&mut self, sched: &mut Scheduler) {
        let idle: Vec<u32> = self.idle.iter().copied().collect();
        for c in idle {
            self.dispatch_next(sched, c);
        }
    }

    /// Evaluate one batch of genomes across the client farm, returning
    /// one [`WireEval`] per genome in input order.
    ///
    /// # Errors
    ///
    /// [`EvaldError::NoClients`] when every client is dead with shards
    /// still outstanding; [`EvaldError::Protocol`] when a client returns
    /// a result of the wrong length (a broken worker build).
    pub fn evaluate(&mut self, genomes: &[Vec<bool>]) -> Result<Vec<WireEval>, EvaldError> {
        if genomes.is_empty() {
            return Ok(Vec::new());
        }
        if self.alive() == 0 {
            return Err(EvaldError::NoClients);
        }
        let shard_size = self.cost.shard_size(genomes.len(), self.alive());
        self.shard_sizes.push(shard_size);
        let mut sched = Scheduler::new(self.next_shard_id, genomes, shard_size);
        self.next_shard_id += sched.shard_count() as u64;
        self.stats.batches += 1;
        self.stats.shards += sched.shard_count();
        let mut out: Vec<Option<WireEval>> = vec![None; genomes.len()];

        self.idle.clear();
        for c in self.ready_ids() {
            self.dispatch_next(&mut sched, c);
        }
        while !sched.all_done() {
            if self.alive() == 0 {
                return Err(EvaldError::NoClients);
            }
            // deadline: bounded wait — every timeout tick runs the
            // liveness sweep, so a hung client is evicted (shards
            // requeued) instead of stalling the batch forever.
            let event = match self.events.recv_timeout(self.liveness_tick()) {
                Ok(event) => event,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    for c in self.liveness_sweep() {
                        self.note_eviction(c);
                        self.drop_client(c);
                        sched.client_dead(c);
                        self.wake_idle(&mut sched);
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(EvaldError::NoClients),
            };
            if let Event::Frame(c, _) = &event {
                // Any frame is proof of life.
                self.unanswered_pings.insert(*c, 0);
            }
            match event {
                Event::Frame(
                    c,
                    Frame::Result {
                        shard,
                        evals,
                        stats,
                        spans,
                        ..
                    },
                ) => {
                    self.dispatch_deadlines.remove(&c);
                    self.stats.client_compiles += u64::from(stats.compiles);
                    self.stats.client_cache_hits += u64::from(stats.cache_hits);
                    self.stats.client_full_compiles += u64::from(stats.full_compiles);
                    self.stats.client_ast_reuse += u64::from(stats.ast_reuse);
                    self.stats.client_lower_reuse += u64::from(stats.lower_reuse);
                    self.observe_cost(c, evals.len(), stats.wall_seconds);
                    self.fold_result_telemetry(c, stats.span, spans);
                    match sched.complete(shard) {
                        Some(start) if sched.shard_len(shard) == Some(evals.len()) => {
                            for (k, e) in evals.into_iter().enumerate() {
                                out[start + k] = Some(e);
                            }
                        }
                        Some(_) => {
                            // Malformed result length: treat the client as
                            // broken, re-queue the shard for someone else.
                            // (complete() already marked it done — undo by
                            // treating this as fatal for the client and
                            // failing loudly instead of silently zeroing.)
                            return Err(EvaldError::Protocol(
                                "result length does not match its shard",
                            ));
                        }
                        None => self.stats.duplicate_results += evals.len(),
                    }
                    self.dispatch_next(&mut sched, c);
                }
                Event::Frame(
                    _,
                    Frame::Merge {
                        records,
                        ast_artifacts,
                        lower_artifacts,
                        ..
                    },
                ) => self.apply_merge(records, ast_artifacts, lower_artifacts),
                Event::Frame(c, Frame::Hello { n_flags, .. }) => {
                    if self.admit_joined(c, n_flags) {
                        // A reconnecting worker joins the running batch:
                        // the straggler/steal machinery absorbs it.
                        self.dispatch_next(&mut sched, c);
                    } else {
                        // Repeated Hello from an established client:
                        // protocol violation.
                        self.drop_client(c);
                        sched.client_dead(c);
                        self.wake_idle(&mut sched);
                    }
                }
                Event::Frame(_, Frame::Pong { .. }) => {
                    // Heartbeat answer: the proof-of-life reset above
                    // already did the work.
                }
                Event::Frame(c, _) => {
                    // Work/EndBatch/Shutdown/Job from a client: protocol
                    // violation — drop it.
                    self.drop_client(c);
                    sched.client_dead(c);
                    self.wake_idle(&mut sched);
                }
                Event::Gone(c, e) => {
                    self.last_loss = Some(e.to_string());
                    self.drop_client(c);
                    sched.client_dead(c);
                    self.wake_idle(&mut sched);
                }
                Event::Joined(c, sender) => self.register_joined(c, sender),
            }
        }

        self.stats.redispatched_shards += sched.redispatched;
        if let Some(t) = &self.tel {
            t.redispatched.add(sched.redispatched as u64);
        }
        self.flush_merges()?;
        // Dispatch spans whose results never arrived (copies sent to
        // clients that died mid-shard) would otherwise leak across
        // batches. Cleared *after* the merge barrier: stragglers
        // finishing re-dispatched copies during the barrier still close
        // their own dispatch spans.
        self.inflight_spans.clear();
        Ok(out
            .into_iter()
            .map(|e| e.expect("every shard completed"))
            .collect())
    }

    /// End-of-batch barrier: ask every live client to flush its local
    /// cache and wait for the merge frames (results of still-running
    /// straggler copies arriving meanwhile are counted as duplicates).
    fn flush_merges(&mut self) -> Result<(), EvaldError> {
        let batch = self.next_batch;
        self.next_batch += 1;
        let mut waiting: HashSet<u32> = HashSet::new();
        for c in self.ready_ids() {
            if self.send_to(c, &Frame::EndBatch { batch }) {
                waiting.insert(c);
            }
        }
        while !waiting.is_empty() {
            // deadline: bounded wait — the liveness sweep on timeout
            // ticks evicts hung clients out of `waiting`, so the merge
            // barrier cannot wedge on a worker that never answers.
            let event = match self.events.recv_timeout(self.liveness_tick()) {
                Ok(event) => event,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    for c in self.liveness_sweep() {
                        self.note_eviction(c);
                        self.drop_client(c);
                        waiting.remove(&c);
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            if let Event::Frame(c, _) = &event {
                // Any frame is proof of life.
                self.unanswered_pings.insert(*c, 0);
            }
            match event {
                Event::Frame(
                    c,
                    Frame::Merge {
                        records,
                        ast_artifacts,
                        lower_artifacts,
                        ..
                    },
                ) => {
                    self.apply_merge(records, ast_artifacts, lower_artifacts);
                    waiting.remove(&c);
                }
                Event::Frame(
                    c,
                    Frame::Result {
                        evals,
                        stats,
                        spans,
                        ..
                    },
                ) => {
                    self.dispatch_deadlines.remove(&c);
                    // A straggler finishing a re-dispatched copy after the
                    // batch completed: pure duplicate — but still a real
                    // wall-time measurement for the cost model, and its
                    // trace spans still stitch under their own dispatch.
                    self.fold_result_telemetry(c, stats.span, spans);
                    self.stats.client_compiles += u64::from(stats.compiles);
                    self.stats.client_cache_hits += u64::from(stats.cache_hits);
                    self.stats.client_full_compiles += u64::from(stats.full_compiles);
                    self.stats.client_ast_reuse += u64::from(stats.ast_reuse);
                    self.stats.client_lower_reuse += u64::from(stats.lower_reuse);
                    self.observe_cost(c, evals.len(), stats.wall_seconds);
                    self.stats.duplicate_results += evals.len();
                }
                Event::Frame(c, Frame::Hello { n_flags, .. }) => {
                    // A worker reconnecting between batches: admit it —
                    // the next batch's dispatch will pick it up. A bad
                    // Hello is a protocol violation as usual.
                    if !self.admit_joined(c, n_flags) {
                        self.drop_client(c);
                        waiting.remove(&c);
                    }
                }
                Event::Frame(_, Frame::Pong { .. }) => {
                    // Heartbeat answer: the proof-of-life reset above
                    // already did the work.
                }
                Event::Frame(c, _) => {
                    self.drop_client(c);
                    waiting.remove(&c);
                }
                Event::Gone(c, e) => {
                    self.last_loss = Some(e.to_string());
                    self.drop_client(c);
                    waiting.remove(&c);
                }
                Event::Joined(c, sender) => self.register_joined(c, sender),
            }
        }
        Ok(())
    }

    fn apply_merge(
        &mut self,
        records: Vec<MergeRecord>,
        ast: Vec<WireAstArtifact>,
        lower: Vec<WireLowerArtifact>,
    ) {
        self.stats.merged_records += records.len();
        self.stats.merged_artifacts += ast.len() + lower.len();
        self.merged.extend(records);
        self.merged_ast.extend(ast);
        self.merged_lower.extend(lower);
    }

    /// Drain the accumulated client-cache records (the embedder folds
    /// them into its store — the single write path).
    pub fn take_merged(&mut self) -> Vec<MergeRecord> {
        std::mem::take(&mut self.merged)
    }

    /// Drain the accumulated client-produced stage artifacts (the
    /// embedder folds them into its artifact store — same single-writer
    /// rule as [`EvalServer::take_merged`]).
    pub fn take_merged_artifacts(&mut self) -> (Vec<WireAstArtifact>, Vec<WireLowerArtifact>) {
        (
            std::mem::take(&mut self.merged_ast),
            std::mem::take(&mut self.merged_lower),
        )
    }

    /// A snapshot of the service telemetry.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// The (adaptive) cost model, including its observed per-client
    /// rates — convergence telemetry.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Shard size chosen for each batch, in batch order: the trace that
    /// shows the adaptive model converging away from the static prior.
    pub fn shard_sizes(&self) -> &[usize] {
        &self.shard_sizes
    }

    /// Why the most recently lost client disconnected, if any did
    /// (clean shard-drop deaths read as "peer closed the connection").
    pub fn last_loss(&self) -> Option<&str> {
        self.last_loss.as_deref()
    }

    /// Shut the service down: tell every live client to exit, then join
    /// the reader threads. Returns the final telemetry.
    pub fn shutdown(mut self) -> ServiceStats {
        self.teardown();
        self.stats
    }

    /// Idempotent teardown shared by [`EvalServer::shutdown`] and `Drop`.
    fn teardown(&mut self) {
        for c in self.alive_ids() {
            self.send_to(c, &Frame::Shutdown);
        }
        // Sever every connection (queued frames drain first): channel
        // transports close when the sender drops, stream transports need
        // the explicit shutdown so clients and readers see EOF even if a
        // client never processes the Shutdown frame.
        for sender in self.senders.iter_mut().flatten() {
            sender.close();
        }
        self.senders.clear();
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for EvalServer {
    /// A server dropped without [`EvalServer::shutdown`] — an embedder
    /// error path between launch and teardown — must still sever every
    /// connection and join its readers: on stream transports, merely
    /// dropping the write halves would leave clients *and* readers
    /// blocked forever (each holds its own clone of the stream).
    fn drop(&mut self) {
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{run_client, ClientOptions, ShardWorker};
    use crate::transport::channel_duplex;
    use crate::wire::ShardStats;
    use crate::FaultKind;

    /// Toy worker: fitness = popcount; remembers seen genomes to report
    /// cache hits; merges one record per shard for sink coverage.
    struct Popcount {
        seen: std::collections::BTreeSet<Vec<bool>>,
        pending: Vec<MergeRecord>,
    }

    impl Popcount {
        fn new() -> Popcount {
            Popcount {
                seen: Default::default(),
                pending: Vec::new(),
            }
        }
    }

    impl ShardWorker for Popcount {
        fn evaluate(&mut self, genomes: &[Vec<bool>], _span: u64) -> (Vec<WireEval>, ShardStats) {
            let mut stats = ShardStats::default();
            let evals = genomes
                .iter()
                .map(|g| {
                    if self.seen.insert(g.clone()) {
                        stats.compiles += 1;
                    } else {
                        stats.cache_hits += 1;
                    }
                    WireEval {
                        fitness_bits: (g.iter().filter(|&&b| b).count() as f64).to_bits(),
                        failed: false,
                        wall_seconds_bits: 0,
                    }
                })
                .collect();
            self.pending.push(MergeRecord {
                module_hash: 1,
                compiler: 0,
                arch: 0,
                effect_digest: self.seen.len() as u128,
                fitness_bits: 0,
                failed: false,
                flags: vec![],
            });
            (evals, stats)
        }

        fn drain_merge(&mut self) -> Vec<MergeRecord> {
            std::mem::take(&mut self.pending)
        }
    }

    fn launch(n_clients: usize, fail: Option<(usize, usize)>) -> (EvalServer, Vec<JoinHandle<()>>) {
        launch_faulty(n_clients, fail, FaultKind::Crash)
    }

    fn launch_faulty(
        n_clients: usize,
        fail: Option<(usize, usize)>,
        fault_kind: FaultKind,
    ) -> (EvalServer, Vec<JoinHandle<()>>) {
        let mut server_side = Vec::new();
        let mut handles = Vec::new();
        for i in 0..n_clients {
            let (s, c) = channel_duplex();
            server_side.push(s);
            let opts = ClientOptions {
                client_id: i as u32,
                n_flags: 4,
                fail_after_shards: fail.and_then(|(who, after)| (who == i).then_some(after)),
                fault_kind,
            };
            handles.push(std::thread::spawn(move || {
                let mut w = Popcount::new();
                let _ = run_client(&mut w, c, &opts);
            }));
        }
        let server = EvalServer::new(server_side, CostModel::uniform(), 4).unwrap();
        (server, handles)
    }

    fn batch(n: usize) -> Vec<Vec<bool>> {
        (0..n)
            .map(|i| (0..4).map(|b| (i >> b) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn batch_results_are_ordered_and_correct() {
        let (mut server, handles) = launch(3, None);
        let genomes = batch(16);
        let evals = server.evaluate(&genomes).unwrap();
        assert_eq!(evals.len(), 16);
        for (g, e) in genomes.iter().zip(&evals) {
            assert_eq!(e.fitness(), g.iter().filter(|&&b| b).count() as f64);
        }
        let stats = server.stats();
        assert_eq!(stats.batches, 1);
        assert!(stats.shards >= 3);
        assert!(stats.merged_records > 0, "clients flushed their caches");
        assert!(!server.take_merged().is_empty());
        let final_stats = server.shutdown();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(final_stats.clients_lost, 0);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let (mut server, handles) = launch(1, None);
        assert!(server.evaluate(&[]).unwrap().is_empty());
        server.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn repeated_batches_reuse_the_farm() {
        let (mut server, handles) = launch(2, None);
        for round in 0..3 {
            let evals = server.evaluate(&batch(12)).unwrap();
            assert_eq!(evals.len(), 12, "round {round}");
        }
        let stats = server.stats();
        assert_eq!(stats.batches, 3);
        // Rounds 2 and 3 are pure client-cache hits.
        assert!(stats.client_cache_hits > 0);
        server.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn client_death_mid_run_is_survived_with_identical_results() {
        // The victim dies after two shards; the batch must still complete
        // with results identical to a healthy farm's.
        let (mut healthy_server, healthy_handles) = launch(3, None);
        let reference = healthy_server.evaluate(&batch(16)).unwrap();
        healthy_server.shutdown();
        for h in healthy_handles {
            h.join().unwrap();
        }

        let (mut server, handles) = launch(3, Some((1, 2)));
        let genomes = batch(16);
        let evals = server.evaluate(&genomes).unwrap();
        assert_eq!(evals, reference, "results are scheduling-independent");
        // A second batch still works on the surviving clients.
        let again = server.evaluate(&genomes).unwrap();
        assert_eq!(again, reference);
        let stats = server.shutdown();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.clients_lost, 1);
    }

    #[test]
    fn hung_client_is_evicted_with_identical_results() {
        // Reference trajectory from a healthy farm.
        let (mut healthy, healthy_handles) = launch(3, None);
        let reference = healthy.evaluate(&batch(16)).unwrap();
        healthy.shutdown();
        for h in healthy_handles {
            h.join().unwrap();
        }

        // Client 1 wedges after two shards — keeps its connection open,
        // answers nothing. Tuned-down liveness so the eviction fires
        // inside the test budget.
        let (mut server, handles) = launch_faulty(3, Some((1, 2)), FaultKind::Hang);
        server.set_liveness(LivenessConfig {
            heartbeat_interval_ms: 50,
            max_missed_heartbeats: 4,
            deadline_multiplier: 4.0,
            min_dispatch_deadline_ms: 250,
        });
        let evals = server.evaluate(&batch(16)).unwrap();
        assert_eq!(evals, reference, "eviction is scheduling-only");
        // A second batch still works on the survivors.
        let again = server.evaluate(&batch(16)).unwrap();
        assert_eq!(again, reference);
        let stats = server.shutdown();
        // Joining IS the no-hang assertion: the wedged client's thread
        // unblocks when its severed connection surfaces.
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.clients_lost, 1, "only the wedged client fell");
        assert_eq!(stats.evicted_clients, 1, "and it fell by eviction");
    }

    #[test]
    fn losing_every_client_is_an_error_not_a_hang() {
        let (mut server, handles) = launch(2, Some((0, 1)));
        // Kill the second client too (fail plans only cover one, so use a
        // batch large enough that the survivor carries it, then drop the
        // server to tear everything down — here we only assert the
        // one-client-dead path still completes, and that a server with
        // zero clients errors).
        let evals = server.evaluate(&batch(16)).unwrap();
        assert_eq!(evals.len(), 16);
        server.shutdown();
        for h in handles {
            h.join().unwrap();
        }

        // All clients dead from the start: handshake fails.
        let (s, c) = channel_duplex();
        drop(c);
        assert!(matches!(
            EvalServer::new(vec![s], CostModel::uniform(), 4),
            Err(EvaldError::NoClients)
        ));
    }

    #[test]
    fn dropping_a_live_unix_client_severs_the_socket() {
        // A client that fails the handshake over a *stream* transport
        // must be actively disconnected (socket shutdown), or it would
        // block in recv forever and joining its thread would deadlock —
        // dropping the server's write-half clone alone is not enough.
        let path = std::env::temp_dir().join(format!("evald_{}_width.sock", std::process::id()));
        let listener = crate::transport::unix_listener(&path).unwrap();
        let client_path = path.clone();
        let handle = std::thread::spawn(move || {
            let duplex = crate::transport::unix_connect(&client_path).unwrap();
            let mut w = Popcount::new();
            // Wrong width: the server drops us; run_client must return
            // (Disconnected) instead of blocking.
            let _ = run_client(
                &mut w,
                duplex,
                &ClientOptions {
                    client_id: 0,
                    n_flags: 9,
                    fail_after_shards: None,
                    fault_kind: FaultKind::Crash,
                },
            );
        });
        let server_end = crate::transport::unix_accept(&listener).unwrap();
        assert!(matches!(
            EvalServer::new(vec![server_end], CostModel::uniform(), 4),
            Err(EvaldError::NoClients)
        ));
        // The join completing IS the assertion.
        handle.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dropping_the_server_without_shutdown_releases_unix_clients() {
        // An embedder error path may drop the server between launch and
        // shutdown(); Drop must still sever connections so clients and
        // readers unblock (join completing is the assertion).
        let path = std::env::temp_dir().join(format!("evald_{}_drop.sock", std::process::id()));
        let listener = crate::transport::unix_listener(&path).unwrap();
        let client_path = path.clone();
        let handle = std::thread::spawn(move || {
            let duplex = crate::transport::unix_connect(&client_path).unwrap();
            let mut w = Popcount::new();
            let _ = run_client(
                &mut w,
                duplex,
                &ClientOptions {
                    client_id: 0,
                    n_flags: 4,
                    fail_after_shards: None,
                    fault_kind: FaultKind::Crash,
                },
            );
        });
        let server_end = crate::transport::unix_accept(&listener).unwrap();
        let server = EvalServer::new(vec![server_end], CostModel::uniform(), 4).unwrap();
        drop(server);
        handle.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_clients_join_the_rotation_mid_run() {
        let (mut server, mut handles) = launch(1, None);
        server.set_job(vec![1, 2, 3]);
        let injector = server.injector();
        let (s, c) = channel_duplex();
        handles.push(std::thread::spawn(move || {
            let mut w = Popcount::new();
            let _ = run_client(
                &mut w,
                c,
                &ClientOptions {
                    client_id: 99,
                    n_flags: 4,
                    fail_after_shards: None,
                    fault_kind: FaultKind::Crash,
                },
            );
        }));
        // Ids continue past the initial farm.
        assert_eq!(injector.inject(s), 1);
        // The joiner's Hello races the batch; keep evaluating until the
        // admission lands (each batch drains the event queue).
        let mut rounds = 0;
        while server.stats().clients_joined == 0 {
            rounds += 1;
            assert!(rounds < 100, "joiner never admitted");
            let evals = server.evaluate(&batch(16)).unwrap();
            assert_eq!(evals.len(), 16);
        }
        let stats = server.stats();
        assert_eq!(stats.clients_joined, 1);
        assert_eq!(stats.clients_lost, 0);
        assert!(stats.cost_observations > 0, "wall times fed the cost model");
        assert!(!server.shard_sizes().is_empty());
        server.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn injected_client_with_wrong_width_is_rejected() {
        let (mut server, mut handles) = launch(1, None);
        let injector = server.injector();
        let (s, c) = channel_duplex();
        handles.push(std::thread::spawn(move || {
            let mut w = Popcount::new();
            let _ = run_client(
                &mut w,
                c,
                &ClientOptions {
                    client_id: 0,
                    n_flags: 9, // farm speaks 4
                    fail_after_shards: None,
                    fault_kind: FaultKind::Crash,
                },
            );
        }));
        injector.inject(s);
        let mut rounds = 0;
        while server.stats().clients_lost == 0 {
            rounds += 1;
            assert!(rounds < 100, "mismatched joiner never rejected");
            server.evaluate(&batch(8)).unwrap();
        }
        assert_eq!(server.stats().clients_joined, 0);
        server.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn width_mismatch_fails_the_handshake() {
        let (s, c) = channel_duplex();
        let handle = std::thread::spawn(move || {
            let mut w = Popcount::new();
            let _ = run_client(
                &mut w,
                c,
                &ClientOptions {
                    client_id: 0,
                    n_flags: 9, // server expects 4
                    fail_after_shards: None,
                    fault_kind: FaultKind::Crash,
                },
            );
        });
        assert!(matches!(
            EvalServer::new(vec![s], CostModel::uniform(), 4),
            Err(EvaldError::NoClients)
        ));
        // The dropped client unblocks once its channel closes.
        handle.join().unwrap();
    }
}
