//! # satz — a DPLL SAT solver and flag-constraint layer
//!
//! BinTuner (paper §4.1) uses Z3 to verify that a newly generated
//! optimization sequence respects the dependency/conflict constraints GCC
//! and LLVM document between flags. The constraint language needed is purely
//! boolean, so this crate provides a small, complete DPLL solver
//! ([`solve`]) plus the domain layer ([`ConstraintSet`]) that translates
//! flag constraints into CNF, checks concrete flag vectors, and — for the
//! genetic algorithm — repairs invalid chromosomes into valid ones.
//!
//! ## Example
//!
//! ```
//! use satz::{Constraint, ConstraintSet};
//!
//! // -fpartial-inlining (0) has effect only with -finline-functions (1);
//! // flags 2 and 3 conflict.
//! let mut cs = ConstraintSet::new(4);
//! cs.add(Constraint::Requires(0, 1));
//! cs.add(Constraint::Conflicts(2, 3));
//!
//! assert!(!cs.is_valid(&[true, false, false, false]));
//! let repaired = cs.repair(&[true, false, true, true], 42);
//! assert!(cs.is_valid(&repaired));
//! ```

#![warn(missing_docs)]

mod cnf;
mod dpll;
mod flags;
mod proptests;

pub use cnf::{Clause, Cnf, Lit};
pub use dpll::{solve, solve_with_assumptions, SatResult};
pub use flags::{Constraint, ConstraintSet, Violation};
