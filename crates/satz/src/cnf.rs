//! CNF formula representation.

/// A literal: variable index (1-based) with sign. `Lit(3)` is *x₃*,
/// `Lit(-3)` is *¬x₃*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub i32);

impl Lit {
    /// Positive literal for variable `var` (0-based).
    pub fn pos(var: usize) -> Lit {
        Lit(var as i32 + 1)
    }

    /// Negative literal for variable `var` (0-based).
    pub fn neg(var: usize) -> Lit {
        Lit(-(var as i32 + 1))
    }

    /// 0-based variable index.
    pub fn var(self) -> usize {
        (self.0.unsigned_abs() as usize) - 1
    }

    /// Whether the literal is positive.
    pub fn is_pos(self) -> bool {
        self.0 > 0
    }

    /// The negated literal.
    pub fn negate(self) -> Lit {
        Lit(-self.0)
    }

    /// Evaluate under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var()] == self.is_pos()
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A formula in conjunctive normal form.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    /// Number of variables (vars are `0..num_vars`).
    pub num_vars: usize,
    /// Conjoined clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty (trivially satisfiable) formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Add a clause. Empty clauses make the formula unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable `>= num_vars`.
    pub fn add(&mut self, clause: Clause) {
        for l in &clause {
            assert!(l.var() < self.num_vars, "literal out of range");
        }
        self.clauses.push(clause);
    }

    /// Add the implication `a → b` as the clause `(¬a ∨ b)`.
    pub fn add_implies(&mut self, a: Lit, b: Lit) {
        self.add(vec![a.negate(), b]);
    }

    /// Evaluate the formula under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_round_trip() {
        let p = Lit::pos(4);
        let n = Lit::neg(4);
        assert_eq!(p.var(), 4);
        assert_eq!(n.var(), 4);
        assert!(p.is_pos());
        assert!(!n.is_pos());
        assert_eq!(p.negate(), n);
    }

    #[test]
    fn eval_clauses() {
        let mut f = Cnf::new(2);
        f.add(vec![Lit::pos(0), Lit::pos(1)]);
        f.add_implies(Lit::pos(0), Lit::pos(1));
        assert!(f.eval(&[false, true]));
        assert!(f.eval(&[true, true]));
        assert!(!f.eval(&[true, false]));
        assert!(!f.eval(&[false, false]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut f = Cnf::new(1);
        f.add(vec![Lit::pos(5)]);
    }
}
