//! Iterative DPLL SAT solver with unit propagation.
//!
//! Complete for the boolean flag-constraint fragment BinTuner needs (the
//! paper uses Z3 for the same purpose). Formulas here are small — a couple
//! of hundred variables — so watched literals are unnecessary; plain
//! counting propagation keeps the code short and obviously correct.

use crate::cnf::{Cnf, Lit};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Unassigned,
    True,
    False,
}

/// The result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model (one bool per variable).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }

    /// Whether the result is SAT.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

struct Solver<'a> {
    cnf: &'a Cnf,
    values: Vec<Value>,
    trail: Vec<usize>,
    // Decision points: (trail length, decided var).
    decisions: Vec<(usize, usize, bool)>,
}

impl<'a> Solver<'a> {
    fn lit_value(&self, l: Lit) -> Value {
        match self.values[l.var()] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if l.is_pos() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if l.is_pos() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    fn assign(&mut self, l: Lit) {
        self.values[l.var()] = if l.is_pos() {
            Value::True
        } else {
            Value::False
        };
        self.trail.push(l.var());
    }

    /// Unit propagation: returns false on conflict.
    fn propagate(&mut self) -> bool {
        loop {
            let mut progressed = false;
            for clause in &self.cnf.clauses {
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &l in clause {
                    match self.lit_value(l) {
                        Value::True => {
                            satisfied = true;
                            break;
                        }
                        Value::Unassigned => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                        Value::False => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return false, // conflict
                    1 => {
                        self.assign(unassigned.unwrap());
                        progressed = true;
                    }
                    _ => {}
                }
            }
            if !progressed {
                return true;
            }
        }
    }

    fn pick_branch(&self) -> Option<usize> {
        self.values.iter().position(|&v| v == Value::Unassigned)
    }

    fn backtrack(&mut self) -> bool {
        while let Some((trail_len, var, tried_true)) = self.decisions.pop() {
            while self.trail.len() > trail_len {
                let v = self.trail.pop().unwrap();
                self.values[v] = Value::Unassigned;
            }
            if tried_true {
                // Try the other branch: false.
                self.decisions.push((self.trail.len(), var, false));
                self.assign(Lit::neg(var));
                return true;
            }
        }
        false
    }

    fn solve(mut self) -> SatResult {
        // Top-level propagation first.
        if !self.propagate() {
            return SatResult::Unsat;
        }
        loop {
            match self.pick_branch() {
                None => {
                    let model = self.values.iter().map(|&v| v == Value::True).collect();
                    return SatResult::Sat(model);
                }
                Some(var) => {
                    self.decisions.push((self.trail.len(), var, true));
                    self.assign(Lit::pos(var));
                }
            }
            while !self.propagate() {
                if !self.backtrack() {
                    return SatResult::Unsat;
                }
            }
        }
    }
}

/// Decide satisfiability of `cnf`.
pub fn solve(cnf: &Cnf) -> SatResult {
    solve_with_assumptions(cnf, &[])
}

/// Decide satisfiability under the given assumed literals.
///
/// Assumptions are forced assignments — useful for "is this partial flag
/// selection extensible to a valid configuration?" queries.
pub fn solve_with_assumptions(cnf: &Cnf, assumptions: &[Lit]) -> SatResult {
    let mut s = Solver {
        cnf,
        values: vec![Value::Unassigned; cnf.num_vars],
        trail: Vec::new(),
        decisions: Vec::new(),
    };
    for &a in assumptions {
        match s.lit_value(a) {
            Value::False => return SatResult::Unsat,
            Value::Unassigned => s.assign(a),
            Value::True => {}
        }
    }
    s.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_sat(cnf: &Cnf) -> bool {
        let n = cnf.num_vars;
        (0..(1u32 << n)).any(|bits| {
            let a: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            cnf.eval(&a)
        })
    }

    #[test]
    fn simple_sat() {
        let mut f = Cnf::new(3);
        f.add(vec![Lit::pos(0), Lit::pos(1)]);
        f.add(vec![Lit::neg(0)]);
        f.add_implies(Lit::pos(1), Lit::pos(2));
        let r = solve(&f);
        let m = r.model().expect("sat");
        assert!(f.eval(m));
        assert!(!m[0] && m[1] && m[2]);
    }

    #[test]
    fn simple_unsat() {
        let mut f = Cnf::new(1);
        f.add(vec![Lit::pos(0)]);
        f.add(vec![Lit::neg(0)]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut f = Cnf::new(1);
        f.add(vec![]);
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn assumptions_conflict() {
        let mut f = Cnf::new(2);
        f.add_implies(Lit::pos(0), Lit::pos(1));
        assert!(solve_with_assumptions(&f, &[Lit::pos(0), Lit::neg(1)]) == SatResult::Unsat);
        assert!(solve_with_assumptions(&f, &[Lit::pos(0), Lit::pos(1)]).is_sat());
        // Contradictory assumptions on the same variable.
        assert_eq!(
            solve_with_assumptions(&f, &[Lit::pos(0), Lit::neg(0)]),
            SatResult::Unsat
        );
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let var = |i: usize, j: usize| i * 2 + j;
        let mut f = Cnf::new(6);
        for i in 0..3 {
            f.add(vec![Lit::pos(var(i, 0)), Lit::pos(var(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    f.add(vec![Lit::neg(var(i1, j)), Lit::neg(var(i2, j))]);
                }
            }
        }
        assert_eq!(solve(&f), SatResult::Unsat);
    }

    #[test]
    fn agrees_with_brute_force_on_random_formulas() {
        // Deterministic pseudo-random 3-SAT near the phase transition.
        let mut x = 0x2545f491u32;
        let mut rnd = move |m: u32| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x % m
        };
        for _ in 0..200 {
            let n = 4 + (rnd(8) as usize); // 4..11 vars
            let m = (n as f64 * 4.2) as usize;
            let mut f = Cnf::new(n);
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rnd(n as u32) as usize;
                    c.push(if rnd(2) == 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    });
                }
                f.add(c);
            }
            let got = solve(&f);
            let want = brute_force_sat(&f);
            assert_eq!(got.is_sat(), want, "mismatch on {f:?}");
            if let SatResult::Sat(m) = got {
                assert!(f.eval(&m));
            }
        }
    }
}
