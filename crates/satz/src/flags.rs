//! Optimization-flag constraint layer (the paper's "Constraints
//! Verification" component, §4.1).
//!
//! GCC and LLVM document adverse interactions and dependency relationships
//! between optimization flags; BinTuner translates them into logical
//! formulas offline and uses a solver online to reject or repair conflicting
//! optimization sequences. This module provides that translation and the
//! repair operation used by the genetic algorithm.

use crate::cnf::{Cnf, Lit};
use crate::dpll::solve_with_assumptions;

/// A constraint between flags (flags are indices into a flag vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// `a` only has an effect / is only legal when `b` is enabled
    /// (e.g. `-fpartial-inlining` requires `-finline-functions`):
    /// `a → b`.
    Requires(usize, usize),
    /// Enabling both causes a compilation error: `¬(a ∧ b)`.
    Conflicts(usize, usize),
    /// `a` requires at least one of `bs`: `a → (b₁ ∨ … ∨ bₙ)`.
    RequiresAny(usize, Vec<usize>),
    /// At most one of the group may be enabled (mutually exclusive family).
    AtMostOne(Vec<usize>),
}

/// A violation report from [`ConstraintSet::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the violated constraint.
    pub constraint: usize,
    /// Human-readable description.
    pub message: String,
}

/// A set of constraints over a fixed-size flag vector.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    n_flags: usize,
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty set over `n_flags` flags.
    pub fn new(n_flags: usize) -> ConstraintSet {
        ConstraintSet {
            n_flags,
            constraints: Vec::new(),
        }
    }

    /// Number of flags.
    pub fn n_flags(&self) -> usize {
        self.n_flags
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Add a constraint.
    ///
    /// # Panics
    ///
    /// Panics if a flag index is out of range.
    pub fn add(&mut self, c: Constraint) {
        let check = |i: usize| assert!(i < self.n_flags, "flag {i} out of range");
        match &c {
            Constraint::Requires(a, b) | Constraint::Conflicts(a, b) => {
                check(*a);
                check(*b);
            }
            Constraint::RequiresAny(a, bs) => {
                check(*a);
                bs.iter().copied().for_each(check);
            }
            Constraint::AtMostOne(xs) => xs.iter().copied().for_each(check),
        }
        self.constraints.push(c);
    }

    /// Translate to CNF (one variable per flag).
    pub fn to_cnf(&self) -> Cnf {
        let mut f = Cnf::new(self.n_flags);
        for c in &self.constraints {
            match c {
                Constraint::Requires(a, b) => f.add_implies(Lit::pos(*a), Lit::pos(*b)),
                Constraint::Conflicts(a, b) => f.add(vec![Lit::neg(*a), Lit::neg(*b)]),
                Constraint::RequiresAny(a, bs) => {
                    let mut clause = vec![Lit::neg(*a)];
                    clause.extend(bs.iter().map(|&b| Lit::pos(b)));
                    f.add(clause);
                }
                Constraint::AtMostOne(xs) => {
                    for i in 0..xs.len() {
                        for j in (i + 1)..xs.len() {
                            f.add(vec![Lit::neg(xs[i]), Lit::neg(xs[j])]);
                        }
                    }
                }
            }
        }
        f
    }

    /// Check a concrete flag vector, returning every violation.
    ///
    /// # Panics
    ///
    /// Panics if `flags.len() != n_flags`.
    pub fn check(&self, flags: &[bool]) -> Vec<Violation> {
        assert_eq!(flags.len(), self.n_flags);
        let mut out = Vec::new();
        for (idx, c) in self.constraints.iter().enumerate() {
            let violated = match c {
                Constraint::Requires(a, b) => flags[*a] && !flags[*b],
                Constraint::Conflicts(a, b) => flags[*a] && flags[*b],
                Constraint::RequiresAny(a, bs) => flags[*a] && !bs.iter().any(|&b| flags[b]),
                Constraint::AtMostOne(xs) => xs.iter().filter(|&&x| flags[x]).count() > 1,
            };
            if violated {
                out.push(Violation {
                    constraint: idx,
                    message: format!("{c:?}"),
                });
            }
        }
        out
    }

    /// Whether a concrete flag vector satisfies all constraints.
    pub fn is_valid(&self, flags: &[bool]) -> bool {
        self.check(flags).is_empty()
    }

    /// Whether fixing the given `(flag, value)` pairs still admits a valid
    /// configuration (a SAT query with assumptions).
    pub fn satisfiable_with(&self, fixed: &[(usize, bool)]) -> bool {
        let cnf = self.to_cnf();
        let assumptions: Vec<Lit> = fixed
            .iter()
            .map(|&(f, v)| if v { Lit::pos(f) } else { Lit::neg(f) })
            .collect();
        solve_with_assumptions(&cnf, &assumptions).is_sat()
    }

    /// Repair a flag vector into a valid one, changing as few flags as the
    /// greedy strategy allows. Deterministic given `seed`.
    ///
    /// Strategy: iterate violations; for `Requires(a,b)` either enable `b`
    /// or disable `a` (seed-dependent), for `Conflicts` disable one side,
    /// for `RequiresAny` enable one option or disable the source, for
    /// `AtMostOne` keep one member. Loops to a fixpoint; falls back to
    /// disabling all flags involved in still-violated constraints (always
    /// valid for implication/conflict systems with this shape).
    pub fn repair(&self, flags: &[bool], seed: u64) -> Vec<bool> {
        assert_eq!(flags.len(), self.n_flags);
        let mut out = flags.to_vec();
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..self.constraints.len() + 8 {
            let violations = self.check(&out);
            if violations.is_empty() {
                return out;
            }
            for v in violations {
                match &self.constraints[v.constraint] {
                    Constraint::Requires(a, b) => {
                        if rnd() & 1 == 0 {
                            out[*b] = true;
                        } else {
                            out[*a] = false;
                        }
                    }
                    Constraint::Conflicts(a, b) => {
                        if rnd() & 1 == 0 {
                            out[*a] = false;
                        } else {
                            out[*b] = false;
                        }
                    }
                    Constraint::RequiresAny(a, bs) => {
                        if rnd() & 1 == 0 && !bs.is_empty() {
                            let pick = bs[(rnd() as usize) % bs.len()];
                            out[pick] = true;
                        } else {
                            out[*a] = false;
                        }
                    }
                    Constraint::AtMostOne(xs) => {
                        let enabled: Vec<usize> = xs.iter().copied().filter(|&x| out[x]).collect();
                        // Earlier repairs in this round may already have
                        // emptied the group — the violation list is stale.
                        if enabled.len() > 1 {
                            let keep = enabled[(rnd() as usize) % enabled.len()];
                            for x in enabled {
                                out[x] = x == keep;
                            }
                        }
                    }
                }
            }
        }
        // Fallback: disable every flag mentioned by a violated constraint.
        loop {
            let violations = self.check(&out);
            if violations.is_empty() {
                return out;
            }
            for v in violations {
                match &self.constraints[v.constraint] {
                    Constraint::Requires(a, _) => out[*a] = false,
                    Constraint::Conflicts(a, b) => {
                        out[*a] = false;
                        out[*b] = false;
                    }
                    Constraint::RequiresAny(a, _) => out[*a] = false,
                    Constraint::AtMostOne(xs) => {
                        for &x in xs {
                            out[x] = false;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConstraintSet {
        let mut cs = ConstraintSet::new(6);
        cs.add(Constraint::Requires(0, 1)); // partial-inlining -> inline-functions
        cs.add(Constraint::Conflicts(2, 3));
        cs.add(Constraint::RequiresAny(4, vec![1, 3]));
        cs.add(Constraint::AtMostOne(vec![3, 5]));
        cs
    }

    #[test]
    fn check_reports_each_violation() {
        let cs = sample();
        let v = cs.check(&[true, false, true, true, true, true]);
        // Violated: Requires(0,1), Conflicts(2,3), AtMostOne(3,5).
        assert_eq!(v.len(), 3);
        assert!(cs.is_valid(&[true, true, false, false, true, false]));
    }

    #[test]
    fn cnf_agrees_with_check() {
        let cs = sample();
        let cnf = cs.to_cnf();
        for bits in 0..(1u32 << 6) {
            let flags: Vec<bool> = (0..6).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(cnf.eval(&flags), cs.is_valid(&flags), "flags {flags:?}");
        }
    }

    #[test]
    fn repair_always_produces_valid_vectors() {
        let cs = sample();
        for bits in 0..(1u32 << 6) {
            let flags: Vec<bool> = (0..6).map(|i| bits & (1 << i) != 0).collect();
            for seed in [1, 42, 0xdead] {
                let repaired = cs.repair(&flags, seed);
                assert!(cs.is_valid(&repaired), "bits {bits:#b} seed {seed}");
            }
        }
    }

    #[test]
    fn repair_keeps_valid_vectors_unchanged() {
        let cs = sample();
        let ok = vec![true, true, false, false, true, false];
        assert_eq!(cs.repair(&ok, 7), ok);
    }

    #[test]
    fn satisfiable_with_assumptions() {
        let cs = sample();
        assert!(cs.satisfiable_with(&[(0, true)]));
        // Flag 4 with both 1 and 3 forced off is impossible.
        assert!(!cs.satisfiable_with(&[(4, true), (1, false), (3, false)]));
    }
}
