//! Property-based tests for the solver and constraint layer.

#![cfg(test)]

use crate::cnf::{Cnf, Lit};
use crate::dpll::{solve, SatResult};
use crate::flags::{Constraint, ConstraintSet};
use proptest::prelude::*;

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    (2usize..9).prop_flat_map(|n| {
        let lit =
            (0..n, any::<bool>()).prop_map(|(v, s)| if s { Lit::pos(v) } else { Lit::neg(v) });
        let clause = proptest::collection::vec(lit, 1..4);
        proptest::collection::vec(clause, 0..24).prop_map(move |clauses| {
            let mut f = Cnf::new(n);
            for c in clauses {
                f.add(c);
            }
            f
        })
    })
}

fn arb_constraints() -> impl Strategy<Value = ConstraintSet> {
    let n = 10usize;
    let c = prop_oneof![
        (0..n, 0..n).prop_map(|(a, b)| Constraint::Requires(a, b)),
        (0..n, 0..n)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Constraint::Conflicts(a, b)),
        (0..n, proptest::collection::vec(0..n, 1..4))
            .prop_map(|(a, bs)| Constraint::RequiresAny(a, bs)),
        proptest::collection::vec(0..n, 2..4).prop_map(Constraint::AtMostOne),
    ];
    proptest::collection::vec(c, 0..12).prop_map(move |cs| {
        let mut set = ConstraintSet::new(n);
        for c in cs {
            set.add(c);
        }
        set
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any model the solver returns actually satisfies the formula.
    #[test]
    fn prop_models_are_real(f in arb_cnf()) {
        if let SatResult::Sat(m) = solve(&f) {
            prop_assert!(f.eval(&m));
        }
    }

    /// Solver agrees with brute force on small formulas.
    #[test]
    fn prop_agrees_with_brute_force(f in arb_cnf()) {
        let brute = (0..(1u32 << f.num_vars)).any(|bits| {
            let a: Vec<bool> = (0..f.num_vars).map(|i| bits & (1 << i) != 0).collect();
            f.eval(&a)
        });
        prop_assert_eq!(solve(&f).is_sat(), brute);
    }

    /// Repair output is always valid, and valid inputs are fixpoints.
    #[test]
    fn prop_repair_validity(cs in arb_constraints(),
                            flags in proptest::collection::vec(any::<bool>(), 10),
                            seed in any::<u64>()) {
        // Note: `Requires(a, a)` is vacuously fine; contradictions like
        // Requires(a,b) + Conflicts(a,b) force a off, which repair handles.
        let repaired = cs.repair(&flags, seed);
        prop_assert!(cs.is_valid(&repaired));
        let again = cs.repair(&repaired, seed);
        prop_assert_eq!(again, repaired);
    }

    /// The CNF translation agrees with direct checking.
    #[test]
    fn prop_cnf_translation(cs in arb_constraints(),
                            flags in proptest::collection::vec(any::<bool>(), 10)) {
        prop_assert_eq!(cs.to_cnf().eval(&flags), cs.is_valid(&flags));
    }
}
