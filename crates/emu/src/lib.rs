//! # emu — interpreter for the binrep mini-ISA
//!
//! Executes [`binrep::Binary`] images with precise FLAGS semantics
//! (including the x86 warts the paper's branch-free tricks rely on: `sbb`
//! after `cmp`, `inc` preserving CF, the `loop` instruction not touching
//! FLAGS at all), a word-granular memory, and deterministic implementations
//! of the import table ("library functions").
//!
//! The emulator is the ground truth for the whole workspace:
//! * every `minicc` optimization pass is validated by differential
//!   execution (O0 vs optimized must produce identical observable output);
//! * `difftools`' IMF-SIM re-implementation samples function I/O through
//!   [`Machine::run_function`];
//! * `perfmodel` consumes [`ExecStats`] to estimate execution speed.
//!
//! ## Example
//!
//! ```
//! use binrep::{Arch, Binary, BlockId, FuncId, Function, Gpr, Insn, Opcode};
//! use emu::Machine;
//!
//! // fn add1(x) { return x + 1 }  (arg in ecx, result in eax)
//! let mut f = Function::new(FuncId(0), "add1", 1);
//! let entry = f.cfg.block_mut(BlockId(0));
//! entry.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ecx));
//! entry.insns.push(Insn::op1(Opcode::Inc, Gpr::Eax));
//! let mut bin = Binary::new("demo", Arch::X86);
//! bin.functions.push(f);
//!
//! let result = Machine::new(&bin).run(&[41], &[], 1_000).unwrap();
//! assert_eq!(result.ret, 42);
//! ```

#![warn(missing_docs)]

mod interp;

pub use interp::{EmuError, ExecResult, ExecStats, Flags, Machine};

#[cfg(test)]
mod tests {
    use super::*;
    use binrep::{
        Arch, Binary, Block, BlockId, Cond, FuncId, Function, Gpr, Insn, MemRef, Opcode, Operand,
        Terminator, Xmm,
    };

    fn one_func_bin(build: impl FnOnce(&mut Function, &mut Binary)) -> Binary {
        let mut bin = Binary::new("t", Arch::X86);
        let mut f = Function::new(FuncId(0), "main", 4);
        build(&mut f, &mut bin);
        bin.functions.push(f);
        bin.validate().unwrap();
        bin
    }

    fn run(bin: &Binary, args: &[u32]) -> u32 {
        Machine::new(bin).run(args, &[], 100_000).unwrap().ret
    }

    #[test]
    fn loop_instruction_sums_without_flags() {
        // sum = 0; for (i = 10; i > 0; i--) sum += i;   via `loop`.
        let bin = one_func_bin(|f, _| {
            let body = f.cfg.fresh_id();
            let exit = f.cfg.fresh_id();
            let e = f.cfg.block_mut(BlockId(0));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, 0i64));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Ecx, 10i64));
            e.term = Terminator::Jmp(body);
            f.cfg.push(Block::new(
                body,
                vec![Insn::op2(Opcode::Add, Gpr::Eax, Gpr::Ecx)],
                Terminator::LoopBack { body, exit },
            ));
            f.cfg.push(Block::new(exit, vec![], Terminator::Ret));
        });
        assert_eq!(run(&bin, &[]), 55);
    }

    #[test]
    fn sbb_branch_free_ge_test() {
        // Figure 2(b) pattern: eax = ([mem] >= 10) ? 1 : 0 without branches:
        //   cmp [addr], 10 ; sbb eax, eax ; inc eax  — wait, sbb gives
        //   -CF, so after cmp a,10 (CF = a < 10): sbb -> 0 or -1; inc -> 1
        //   when a >= 10 and 0 when a < 10... inc of -1 is 0, of 0 is 1. ✓
        for (val, want) in [(5u32, 0u32), (10, 1), (200, 1)] {
            let bin = one_func_bin(|f, bin| {
                let addr = bin.add_data_word(val, false);
                let e = f.cfg.block_mut(BlockId(0));
                e.insns
                    .push(Insn::op2(Opcode::Cmp, MemRef::abs(addr as i32), 10i64));
                e.insns.push(Insn::op2(Opcode::Sbb, Gpr::Eax, Gpr::Eax));
                e.insns.push(Insn::op1(Opcode::Inc, Gpr::Eax));
            });
            assert_eq!(run(&bin, &[]), want, "val {val}");
        }
    }

    #[test]
    fn setcc_and_cmov() {
        // eax = (ecx == 5) ? 1 : 0, then edx = eax ? 100 : 7 via cmov.
        let bin = one_func_bin(|f, _| {
            let e = f.cfg.block_mut(BlockId(0));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Ebx, 100i64));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, 7i64));
            e.insns.push(Insn::op2(Opcode::Cmp, Gpr::Ecx, 5i64));
            e.insns
                .push(Insn::op2(Opcode::Cmov(Cond::E), Gpr::Eax, Gpr::Ebx));
        });
        assert_eq!(run(&bin, &[5]), 100);
        assert_eq!(run(&bin, &[6]), 7);
    }

    #[test]
    fn setcc_produces_bool() {
        let bin = one_func_bin(|f, _| {
            let e = f.cfg.block_mut(BlockId(0));
            e.insns.push(Insn::op2(Opcode::Cmp, Gpr::Ecx, Gpr::Edx));
            e.insns.push(Insn::op1(Opcode::Set(Cond::B), Gpr::Eax));
        });
        assert_eq!(run(&bin, &[3, 9]), 1); // 3 < 9 unsigned
        assert_eq!(run(&bin, &[9, 3]), 0);
        assert_eq!(run(&bin, &[0xffff_fff0, 3]), 0); // unsigned compare
    }

    #[test]
    fn jump_table_dispatch() {
        // switch (ecx) { case 0: 11; case 1: 22; case 2: 33 }
        let bin = one_func_bin(|f, _| {
            let cases: Vec<BlockId> = (0..3).map(|_| f.cfg.fresh_id()).collect();
            let exit = f.cfg.fresh_id();
            f.cfg.block_mut(BlockId(0)).term = Terminator::JumpTable {
                index: Gpr::Ecx,
                targets: cases.clone(),
            };
            for (i, &c) in cases.iter().enumerate() {
                f.cfg.push(Block::new(
                    c,
                    vec![Insn::op2(Opcode::Mov, Gpr::Eax, 11 * (i as i64 + 1))],
                    Terminator::Jmp(exit),
                ));
            }
            f.cfg.push(Block::new(exit, vec![], Terminator::Ret));
        });
        assert_eq!(run(&bin, &[0]), 11);
        assert_eq!(run(&bin, &[1]), 22);
        assert_eq!(run(&bin, &[2]), 33);
        let r = Machine::new(&bin).run(&[7], &[], 1000);
        assert!(matches!(r, Err(EmuError::BadTableIndex { .. })));
    }

    #[test]
    fn push_pop_and_frames() {
        let bin = one_func_bin(|f, _| {
            let e = f.cfg.block_mut(BlockId(0));
            e.insns.push(Insn::op1(Opcode::Push, Gpr::Ebp));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Ebp, Gpr::Esp));
            e.insns.push(Insn::op2(Opcode::Sub, Gpr::Esp, 16i64));
            e.insns.push(Insn::op2(
                Opcode::Mov,
                MemRef::base_disp(Gpr::Ebp, -4),
                Gpr::Ecx,
            ));
            e.insns.push(Insn::op2(
                Opcode::Mov,
                Gpr::Eax,
                MemRef::base_disp(Gpr::Ebp, -4),
            ));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Esp, Gpr::Ebp));
            e.insns.push(Insn::op1(Opcode::Pop, Gpr::Ebp));
        });
        assert_eq!(run(&bin, &[77]), 77);
    }

    #[test]
    fn call_and_return_value() {
        // main calls square(ecx).
        let mut bin = Binary::new("t", Arch::X86);
        let mut main = Function::new(FuncId(0), "main", 1);
        main.cfg
            .block_mut(BlockId(0))
            .insns
            .push(Insn::call(FuncId(1)));
        let mut sq = Function::new(FuncId(1), "square", 1);
        {
            let e = sq.cfg.block_mut(BlockId(0));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ecx));
            e.insns.push(Insn::op2(Opcode::Imul, Gpr::Eax, Gpr::Ecx));
        }
        bin.functions.push(main);
        bin.functions.push(sq);
        bin.validate().unwrap();
        assert_eq!(run(&bin, &[9]), 81);
    }

    #[test]
    fn vector_ops_match_scalar_sum() {
        // Sum data[0..8] with SIMD: two vloads + vadd + hsum.
        let bin = one_func_bin(|f, bin| {
            let base = bin.add_data_word(1, false);
            for w in 2..=8 {
                bin.add_data_word(w, false);
            }
            let e = f.cfg.block_mut(BlockId(0));
            e.insns
                .push(Insn::op2(Opcode::Vload, Xmm(0), MemRef::abs(base as i32)));
            e.insns.push(Insn::op2(
                Opcode::Vload,
                Xmm(1),
                MemRef::abs(base as i32 + 16),
            ));
            e.insns.push(Insn::op2(Opcode::Vadd, Xmm(0), Xmm(1)));
            e.insns
                .push(Insn::op2(Opcode::Vhsum, Gpr::Eax, Operand::Vec(Xmm(0))));
        });
        assert_eq!(run(&bin, &[]), 36);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let bin = one_func_bin(|f, _| {
            let e = f.cfg.block_mut(BlockId(0));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ecx));
            e.insns.push(Insn::op2(Opcode::Udiv, Gpr::Eax, Gpr::Edx));
        });
        assert_eq!(run(&bin, &[100, 5]), 20);
        assert_eq!(run(&bin, &[100, 0]), 0);
    }

    #[test]
    fn strcpy_import_copies_strings() {
        let bin = one_func_bin(|f, bin| {
            let s = bin.add_string("Hello World!");
            let id = bin.import_by_name("strcpy");
            let strlen = bin.import_by_name("strlen");
            let e = f.cfg.block_mut(BlockId(0));
            // strcpy(heap_scratch, s); return strlen(heap_scratch).
            e.insns
                .push(Insn::op2(Opcode::Mov, Gpr::Ecx, binrep::HEAP_BASE));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Edx, s));
            e.insns.push(Insn::call_import(id));
            e.insns
                .push(Insn::op2(Opcode::Mov, Gpr::Ecx, binrep::HEAP_BASE));
            e.insns.push(Insn::call_import(strlen));
        });
        assert_eq!(run(&bin, &[]), 12);
    }

    #[test]
    fn fuel_limit_is_enforced() {
        let bin = one_func_bin(|f, _| {
            f.cfg.block_mut(BlockId(0)).term = Terminator::Jmp(BlockId(0));
        });
        let r = Machine::new(&bin).run(&[], &[], 100);
        assert_eq!(r.unwrap_err(), EmuError::OutOfFuel);
    }

    #[test]
    fn recursion_depth_is_bounded() {
        let mut bin = Binary::new("t", Arch::X86);
        let mut f = Function::new(FuncId(0), "rec", 0);
        f.cfg
            .block_mut(BlockId(0))
            .insns
            .push(Insn::call(FuncId(0)));
        bin.functions.push(f);
        let r = Machine::new(&bin).run(&[], &[], u64::MAX / 2);
        assert_eq!(r.unwrap_err(), EmuError::StackOverflow);
    }

    #[test]
    fn stats_track_execution() {
        let bin = one_func_bin(|f, _| {
            let t = f.cfg.fresh_id();
            let e = f.cfg.fresh_id();
            f.cfg
                .block_mut(BlockId(0))
                .insns
                .push(Insn::op2(Opcode::Cmp, Gpr::Ecx, 0i64));
            f.cfg.block_mut(BlockId(0)).term = Terminator::Branch {
                cond: Cond::E,
                then_bb: t,
                else_bb: e,
            };
            f.cfg.push(Block::new(t, vec![], Terminator::Ret));
            f.cfg.push(Block::new(e, vec![], Terminator::Ret));
        });
        let r = Machine::new(&bin).run(&[0], &[], 1000).unwrap();
        assert_eq!(r.stats.branches, 1);
        assert_eq!(r.stats.op_counts["cmp"], 1);
        assert!(r.stats.steps >= 2);
    }

    #[test]
    fn exit_import_short_circuits() {
        let bin = one_func_bin(|f, bin| {
            let exit = bin.import_by_name("exit");
            let e = f.cfg.block_mut(BlockId(0));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Ecx, 3i64));
            e.insns.push(Insn::call_import(exit));
            // Unreachable: would return 99.
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, 99i64));
        });
        assert_eq!(run(&bin, &[]), 3);
    }

    #[test]
    fn inc_preserves_carry() {
        // cmp sets CF, inc must not clobber it, sbb then consumes it.
        let bin = one_func_bin(|f, _| {
            let e = f.cfg.block_mut(BlockId(0));
            e.insns.push(Insn::op2(Opcode::Mov, Gpr::Ebx, 0i64));
            e.insns.push(Insn::op2(Opcode::Cmp, Gpr::Ecx, 10i64)); // CF = ecx < 10
            e.insns.push(Insn::op1(Opcode::Inc, Gpr::Ebx));
            e.insns.push(Insn::op2(Opcode::Sbb, Gpr::Eax, Gpr::Eax)); // -CF
            e.insns.push(Insn::op1(Opcode::Neg, Gpr::Eax)); // CF
        });
        assert_eq!(run(&bin, &[5]), 1);
        assert_eq!(run(&bin, &[15]), 0);
    }
}
