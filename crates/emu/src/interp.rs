//! The interpreter: CPU state, FLAGS semantics, memory, imports.

use binrep::{
    Binary, BlockId, Cond, FuncId, Insn, MemRef, Opcode, Operand, Terminator, DATA_BASE, HEAP_BASE,
    STACK_TOP,
};
use std::collections::{BTreeMap, HashMap};

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Instruction budget exhausted.
    OutOfFuel,
    /// Misaligned memory access.
    Unaligned(u32),
    /// Jump-table index out of range.
    BadTableIndex {
        /// The out-of-range index value.
        index: u32,
        /// The table's length.
        len: usize,
    },
    /// Call depth exceeded the limit.
    StackOverflow,
    /// Import with no emulator semantics.
    UnknownImport(String),
    /// Structurally invalid operand for an opcode.
    BadOperand(&'static str),
}

impl std::fmt::Display for EmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmuError::OutOfFuel => f.write_str("out of fuel"),
            EmuError::Unaligned(a) => write!(f, "unaligned access at {a:#x}"),
            EmuError::BadTableIndex { index, len } => {
                write!(f, "jump table index {index} out of range 0..{len}")
            }
            EmuError::StackOverflow => f.write_str("call depth limit exceeded"),
            EmuError::UnknownImport(n) => write!(f, "unknown import {n}"),
            EmuError::BadOperand(what) => write!(f, "bad operand: {what}"),
        }
    }
}

impl std::error::Error for EmuError {}

/// FLAGS register.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

impl Flags {
    /// Evaluate a condition code against the current flags.
    pub fn cond(&self, c: Cond) -> bool {
        match c {
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::L => self.sf != self.of,
            Cond::Le => self.zf || self.sf != self.of,
            Cond::G => !self.zf && self.sf == self.of,
            Cond::Ge => self.sf == self.of,
            Cond::B => self.cf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::Ae => !self.cf,
        }
    }

    fn set_zs(&mut self, r: u32) {
        self.zf = r == 0;
        self.sf = (r as i32) < 0;
    }
}

/// Counters collected during execution (consumed by `perfmodel`).
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Total instructions executed (terminators included).
    pub steps: u64,
    /// Executed-count per mnemonic.
    pub op_counts: BTreeMap<String, u64>,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches whose direction differed from the previous
    /// execution of the same branch site (a crude misprediction proxy).
    pub direction_changes: u64,
    /// Indirect (jump-table) transfers.
    pub table_jumps: u64,
    /// Calls executed (local + import).
    pub calls: u64,
    /// Vector instructions executed.
    pub vector_ops: u64,
}

/// The outcome of a successful run.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Return value of the entry function (`eax`).
    pub ret: u32,
    /// Values emitted through output imports (`print_u32`, `printf`, ...).
    pub output: Vec<u32>,
    /// Names of imports called, in order (the dynamic API trace).
    pub api_trace: Vec<String>,
    /// Execution counters.
    pub stats: ExecStats,
}

// The interpreter recurses one Rust frame per emulated call; 128 levels is
// generous for the corpus (which bounds recursion) while staying well within
// the 2 MiB default test-thread stack.
const MAX_CALL_DEPTH: usize = 128;

struct FuncIndex {
    block_pos: HashMap<(u32, u32), usize>,
}

/// A loaded binary ready to execute.
pub struct Machine<'a> {
    bin: &'a Binary,
    index: FuncIndex,
}

struct Cpu {
    regs: [u32; 16],
    xmm: [[u32; 4]; 8],
    flags: Flags,
    mem: HashMap<u32, u32>,
    heap_next: u32,
    rng_state: u32,
    output: Vec<u32>,
    api_trace: Vec<String>,
    stats: ExecStats,
    branch_history: HashMap<(u32, u32), bool>,
    inputs: Vec<u32>,
    input_pos: usize,
    exited: Option<u32>,
}

impl<'a> Machine<'a> {
    /// Load a binary (indexes blocks; memory is created per-run).
    pub fn new(bin: &'a Binary) -> Machine<'a> {
        let mut block_pos = HashMap::new();
        for f in &bin.functions {
            for (i, b) in f.cfg.blocks.iter().enumerate() {
                block_pos.insert((f.id.0, b.id.0), i);
            }
        }
        Machine {
            bin,
            index: FuncIndex { block_pos },
        }
    }

    /// The loaded binary.
    pub fn binary(&self) -> &Binary {
        self.bin
    }

    /// Run the entry function with `args` in the argument registers and
    /// `inputs` available through the `read_input` import.
    ///
    /// # Errors
    ///
    /// See [`EmuError`]; `fuel` bounds the executed instruction count.
    pub fn run(&self, args: &[u32], inputs: &[u32], fuel: u64) -> Result<ExecResult, EmuError> {
        self.run_function(self.bin.entry, args, inputs, fuel)
    }

    /// Run an arbitrary function (used by IMF-SIM-style samplers).
    ///
    /// # Errors
    ///
    /// See [`EmuError`].
    pub fn run_function(
        &self,
        func: FuncId,
        args: &[u32],
        inputs: &[u32],
        fuel: u64,
    ) -> Result<ExecResult, EmuError> {
        let mut cpu = Cpu {
            regs: [0; 16],
            xmm: [[0; 4]; 8],
            flags: Flags::default(),
            mem: HashMap::new(),
            heap_next: HEAP_BASE as u32,
            rng_state: 0x9e3779b9,
            output: Vec::new(),
            api_trace: Vec::new(),
            stats: ExecStats::default(),
            branch_history: HashMap::new(),
            inputs: inputs.to_vec(),
            input_pos: 0,
            exited: None,
        };
        // Load the data section.
        for (i, w) in self.bin.data.iter().enumerate() {
            cpu.mem.insert((DATA_BASE as u32) + (i as u32) * 4, *w);
        }
        cpu.regs[binrep::Gpr::Esp.number() as usize] = STACK_TOP as u32;
        // Argument registers: ecx, edx, esi, edi.
        let arg_regs = [
            binrep::Gpr::Ecx,
            binrep::Gpr::Edx,
            binrep::Gpr::Esi,
            binrep::Gpr::Edi,
        ];
        for (i, &a) in args.iter().take(4).enumerate() {
            cpu.regs[arg_regs[i].number() as usize] = a;
        }

        let mut remaining = fuel;
        self.exec_call(&mut cpu, func, 0, &mut remaining)?;
        Ok(ExecResult {
            ret: cpu.exited.unwrap_or(cpu.regs[0]),
            output: cpu.output,
            api_trace: cpu.api_trace,
            stats: cpu.stats,
        })
    }

    fn block_at(&self, func: FuncId, block: BlockId) -> &binrep::Block {
        let pos = self.index.block_pos[&(func.0, block.0)];
        &self.bin.function(func).cfg.blocks[pos]
    }

    fn exec_call(
        &self,
        cpu: &mut Cpu,
        func: FuncId,
        depth: usize,
        fuel: &mut u64,
    ) -> Result<(), EmuError> {
        if depth >= MAX_CALL_DEPTH {
            return Err(EmuError::StackOverflow);
        }
        let f = self.bin.function(func);
        let mut block = f.cfg.entry;
        loop {
            if cpu.exited.is_some() {
                return Ok(());
            }
            let b = self.block_at(func, block);
            for insn in &b.insns {
                if *fuel == 0 {
                    return Err(EmuError::OutOfFuel);
                }
                *fuel -= 1;
                cpu.stats.steps += 1;
                self.exec_insn(cpu, insn, depth, fuel)?;
                if cpu.exited.is_some() {
                    return Ok(());
                }
            }
            if *fuel == 0 {
                return Err(EmuError::OutOfFuel);
            }
            *fuel -= 1;
            cpu.stats.steps += 1;
            match &b.term {
                Terminator::Jmp(t) => block = *t,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    cpu.stats.branches += 1;
                    let taken = cpu.flags.cond(*cond);
                    let key = (func.0, b.id.0);
                    if let Some(prev) = cpu.branch_history.insert(key, taken) {
                        if prev != taken {
                            cpu.stats.direction_changes += 1;
                        }
                    }
                    block = if taken { *then_bb } else { *else_bb };
                }
                Terminator::JumpTable { index, targets } => {
                    cpu.stats.table_jumps += 1;
                    let idx = cpu.regs[index.number() as usize];
                    let t = targets.get(idx as usize).ok_or(EmuError::BadTableIndex {
                        index: idx,
                        len: targets.len(),
                    })?;
                    block = *t;
                }
                Terminator::LoopBack { body, exit } => {
                    cpu.stats.branches += 1;
                    let ecx = binrep::Gpr::Ecx.number() as usize;
                    cpu.regs[ecx] = cpu.regs[ecx].wrapping_sub(1);
                    block = if cpu.regs[ecx] != 0 { *body } else { *exit };
                }
                Terminator::Ret => return Ok(()),
                Terminator::TailCall(callee) => {
                    // Semantically `call; ret` without frame growth — run
                    // the callee in this frame's continuation.
                    cpu.stats.calls += 1;
                    let callee = *callee;
                    return self.exec_call(cpu, callee, depth, fuel);
                }
            }
        }
    }

    fn exec_insn(
        &self,
        cpu: &mut Cpu,
        insn: &Insn,
        depth: usize,
        fuel: &mut u64,
    ) -> Result<(), EmuError> {
        *cpu.stats.op_counts.entry(insn.op.mnemonic()).or_insert(0) += 1;
        match insn.op {
            Opcode::Vload
            | Opcode::Vstore
            | Opcode::Vadd
            | Opcode::Vsub
            | Opcode::Vmul
            | Opcode::Vhsum => cpu.stats.vector_ops += 1,
            Opcode::Call | Opcode::CallImport => cpu.stats.calls += 1,
            _ => {}
        }
        match insn.op {
            Opcode::Mov => {
                let v = cpu.read(&insn.b.unwrap())?;
                cpu.write(&insn.a.unwrap(), v)?;
            }
            Opcode::Lea => {
                let m = insn
                    .b
                    .and_then(|o| o.as_mem())
                    .ok_or(EmuError::BadOperand("lea needs mem src"))?;
                let addr = cpu.effective_addr(&m);
                cpu.write(&insn.a.unwrap(), addr)?;
            }
            Opcode::Add => cpu.alu2(insn, |cpu, a, b| {
                let r = a.wrapping_add(b);
                cpu.flags.cf = r < a;
                cpu.flags.of = ((a ^ !b) & (a ^ r)) >> 31 != 0;
                cpu.flags.set_zs(r);
                r
            })?,
            Opcode::Sub => cpu.alu2(insn, |cpu, a, b| {
                let r = a.wrapping_sub(b);
                cpu.flags.cf = a < b;
                cpu.flags.of = ((a ^ b) & (a ^ r)) >> 31 != 0;
                cpu.flags.set_zs(r);
                r
            })?,
            Opcode::Sbb => cpu.alu2(insn, |cpu, a, b| {
                let borrow = cpu.flags.cf as u32;
                let r = a.wrapping_sub(b).wrapping_sub(borrow);
                let wide = (b as u64) + (borrow as u64);
                cpu.flags.cf = (a as u64) < wide;
                let signed = (a as i32 as i64) - (b as i32 as i64) - (borrow as i64);
                cpu.flags.of = signed != (r as i32 as i64);
                cpu.flags.set_zs(r);
                r
            })?,
            Opcode::Adc => cpu.alu2(insn, |cpu, a, b| {
                let carry = cpu.flags.cf as u32;
                let r = a.wrapping_add(b).wrapping_add(carry);
                let wide = (a as u64) + (b as u64) + (carry as u64);
                cpu.flags.cf = wide > u32::MAX as u64;
                let signed = (a as i32 as i64) + (b as i32 as i64) + (carry as i64);
                cpu.flags.of = signed != (r as i32 as i64);
                cpu.flags.set_zs(r);
                r
            })?,
            Opcode::Imul => cpu.alu2(insn, |cpu, a, b| {
                let r = a.wrapping_mul(b);
                cpu.flags.cf = false;
                cpu.flags.of = false;
                cpu.flags.set_zs(r);
                r
            })?,
            Opcode::Udiv => cpu.alu2(insn, |cpu, a, b| {
                // ISA definition: division by zero yields zero.
                let r = a.checked_div(b).unwrap_or(0);
                cpu.flags.cf = false;
                cpu.flags.of = false;
                cpu.flags.set_zs(r);
                r
            })?,
            Opcode::Urem => cpu.alu2(insn, |cpu, a, b| {
                // ISA definition: modulo zero yields the dividend.
                let r = if b == 0 { a } else { a % b };
                cpu.flags.cf = false;
                cpu.flags.of = false;
                cpu.flags.set_zs(r);
                r
            })?,
            Opcode::Umulh => cpu.alu2(insn, |cpu, a, b| {
                let r = (((a as u64) * (b as u64)) >> 32) as u32;
                cpu.flags.cf = false;
                cpu.flags.of = false;
                cpu.flags.set_zs(r);
                r
            })?,
            Opcode::And => cpu.logic2(insn, |a, b| a & b)?,
            Opcode::Or => cpu.logic2(insn, |a, b| a | b)?,
            Opcode::Xor => cpu.logic2(insn, |a, b| a ^ b)?,
            Opcode::Not => {
                let a = insn.a.unwrap();
                let v = cpu.read(&a)?;
                cpu.write(&a, !v)?;
            }
            Opcode::Neg => {
                let a = insn.a.unwrap();
                let v = cpu.read(&a)?;
                let r = 0u32.wrapping_sub(v);
                cpu.flags.cf = v != 0;
                cpu.flags.of = v == 0x8000_0000;
                cpu.flags.set_zs(r);
                cpu.write(&a, r)?;
            }
            Opcode::Inc => {
                let a = insn.a.unwrap();
                let v = cpu.read(&a)?;
                let r = v.wrapping_add(1);
                // inc preserves CF (classic x86 wart the paper's `sbb`
                // branch-free trick depends on).
                cpu.flags.of = v == 0x7fff_ffff;
                cpu.flags.set_zs(r);
                cpu.write(&a, r)?;
            }
            Opcode::Dec => {
                let a = insn.a.unwrap();
                let v = cpu.read(&a)?;
                let r = v.wrapping_sub(1);
                cpu.flags.of = v == 0x8000_0000;
                cpu.flags.set_zs(r);
                cpu.write(&a, r)?;
            }
            Opcode::Shl => cpu.shift(insn, |a, s| {
                (a.checked_shl(s).unwrap_or(0), (a >> (32 - s)) & 1 == 1)
            })?,
            Opcode::Shr => cpu.shift(insn, |a, s| {
                (a.checked_shr(s).unwrap_or(0), (a >> (s - 1)) & 1 == 1)
            })?,
            Opcode::Sar => cpu.shift(insn, |a, s| {
                (
                    ((a as i32) >> s.min(31)) as u32,
                    ((a as i32) >> (s - 1)) & 1 == 1,
                )
            })?,
            Opcode::Cmp => {
                let a = cpu.read(&insn.a.unwrap())?;
                let b = cpu.read(&insn.b.unwrap())?;
                let r = a.wrapping_sub(b);
                cpu.flags.cf = a < b;
                cpu.flags.of = ((a ^ b) & (a ^ r)) >> 31 != 0;
                cpu.flags.set_zs(r);
            }
            Opcode::Test => {
                let a = cpu.read(&insn.a.unwrap())?;
                let b = cpu.read(&insn.b.unwrap())?;
                let r = a & b;
                cpu.flags.cf = false;
                cpu.flags.of = false;
                cpu.flags.set_zs(r);
            }
            Opcode::Set(c) => {
                let v = cpu.flags.cond(c) as u32;
                cpu.write(&insn.a.unwrap(), v)?;
            }
            Opcode::Cmov(c) => {
                if cpu.flags.cond(c) {
                    let v = cpu.read(&insn.b.unwrap())?;
                    cpu.write(&insn.a.unwrap(), v)?;
                }
            }
            Opcode::Push => {
                let v = cpu.read(&insn.a.unwrap())?;
                let esp = binrep::Gpr::Esp.number() as usize;
                cpu.regs[esp] = cpu.regs[esp].wrapping_sub(4);
                let addr = cpu.regs[esp];
                cpu.store(addr, v)?;
            }
            Opcode::Pop => {
                let esp = binrep::Gpr::Esp.number() as usize;
                let addr = cpu.regs[esp];
                let v = cpu.load(addr)?;
                cpu.regs[esp] = cpu.regs[esp].wrapping_add(4);
                cpu.write(&insn.a.unwrap(), v)?;
            }
            Opcode::Call => {
                let callee = insn.callee().ok_or(EmuError::BadOperand("call target"))?;
                self.exec_call(cpu, callee, depth + 1, fuel)?;
            }
            Opcode::CallImport => {
                let imp = insn.import().ok_or(EmuError::BadOperand("import id"))?;
                let name = self.bin.import_name(imp).to_string();
                cpu.call_import(&name)?;
            }
            Opcode::Vload => {
                let x = match insn.a.unwrap() {
                    Operand::Vec(x) => x,
                    _ => return Err(EmuError::BadOperand("vload dst")),
                };
                let m = insn
                    .b
                    .and_then(|o| o.as_mem())
                    .ok_or(EmuError::BadOperand("vload src"))?;
                let base = cpu.effective_addr(&m);
                for lane in 0..4 {
                    cpu.xmm[x.0 as usize][lane] = cpu.load(base.wrapping_add(lane as u32 * 4))?;
                }
            }
            Opcode::Vstore => {
                let m = insn
                    .a
                    .and_then(|o| o.as_mem())
                    .ok_or(EmuError::BadOperand("vstore dst"))?;
                let x = match insn.b.unwrap() {
                    Operand::Vec(x) => x,
                    _ => return Err(EmuError::BadOperand("vstore src")),
                };
                let base = cpu.effective_addr(&m);
                for lane in 0..4 {
                    cpu.store(
                        base.wrapping_add(lane as u32 * 4),
                        cpu.xmm[x.0 as usize][lane],
                    )?;
                }
            }
            Opcode::Vadd | Opcode::Vsub | Opcode::Vmul => {
                let (a, b) = match (insn.a.unwrap(), insn.b.unwrap()) {
                    (Operand::Vec(a), Operand::Vec(b)) => (a, b),
                    _ => return Err(EmuError::BadOperand("vector alu")),
                };
                for lane in 0..4 {
                    let x = cpu.xmm[a.0 as usize][lane];
                    let y = cpu.xmm[b.0 as usize][lane];
                    cpu.xmm[a.0 as usize][lane] = match insn.op {
                        Opcode::Vadd => x.wrapping_add(y),
                        Opcode::Vsub => x.wrapping_sub(y),
                        _ => x.wrapping_mul(y),
                    };
                }
            }
            Opcode::Vhsum => {
                let x = match insn.b.unwrap() {
                    Operand::Vec(x) => x,
                    _ => return Err(EmuError::BadOperand("vhsum src")),
                };
                let sum = cpu.xmm[x.0 as usize]
                    .iter()
                    .fold(0u32, |acc, &v| acc.wrapping_add(v));
                cpu.write(&insn.a.unwrap(), sum)?;
            }
            Opcode::Nop => {}
        }
        Ok(())
    }
}

impl Cpu {
    fn effective_addr(&self, m: &MemRef) -> u32 {
        let mut addr = m.disp as u32;
        if let Some(b) = m.base {
            addr = addr.wrapping_add(self.regs[b.number() as usize]);
        }
        if let Some(i) = m.index {
            addr = addr.wrapping_add(self.regs[i.number() as usize].wrapping_mul(m.scale as u32));
        }
        addr
    }

    fn load(&self, addr: u32) -> Result<u32, EmuError> {
        if !addr.is_multiple_of(4) {
            return Err(EmuError::Unaligned(addr));
        }
        Ok(*self.mem.get(&addr).unwrap_or(&0))
    }

    fn store(&mut self, addr: u32, v: u32) -> Result<(), EmuError> {
        if !addr.is_multiple_of(4) {
            return Err(EmuError::Unaligned(addr));
        }
        self.mem.insert(addr, v);
        Ok(())
    }

    fn read(&self, o: &Operand) -> Result<u32, EmuError> {
        Ok(match o {
            Operand::Reg(r) => self.regs[r.number() as usize],
            Operand::Imm(v) => *v as u32,
            Operand::Mem(m) => self.load(self.effective_addr(m))?,
            Operand::Vec(_) => return Err(EmuError::BadOperand("scalar read of xmm")),
        })
    }

    fn write(&mut self, o: &Operand, v: u32) -> Result<(), EmuError> {
        match o {
            Operand::Reg(r) => self.regs[r.number() as usize] = v,
            Operand::Mem(m) => self.store(self.effective_addr(m), v)?,
            _ => return Err(EmuError::BadOperand("bad write destination")),
        }
        Ok(())
    }

    fn alu2(&mut self, insn: &Insn, f: impl Fn(&mut Cpu, u32, u32) -> u32) -> Result<(), EmuError> {
        let a = self.read(&insn.a.unwrap())?;
        let b = self.read(&insn.b.unwrap())?;
        let r = f(self, a, b);
        self.write(&insn.a.unwrap(), r)
    }

    fn logic2(&mut self, insn: &Insn, f: impl Fn(u32, u32) -> u32) -> Result<(), EmuError> {
        let a = self.read(&insn.a.unwrap())?;
        let b = self.read(&insn.b.unwrap())?;
        let r = f(a, b);
        self.flags.cf = false;
        self.flags.of = false;
        self.flags.set_zs(r);
        self.write(&insn.a.unwrap(), r)
    }

    fn shift(&mut self, insn: &Insn, f: impl Fn(u32, u32) -> (u32, bool)) -> Result<(), EmuError> {
        let a = self.read(&insn.a.unwrap())?;
        let s = self.read(&insn.b.unwrap())? & 31;
        if s == 0 {
            // Zero-count shifts leave FLAGS untouched, like x86.
            return Ok(());
        }
        let (r, cf) = f(a, s);
        self.flags.cf = cf;
        self.flags.of = false;
        self.flags.set_zs(r);
        self.write(&insn.a.unwrap(), r)
    }

    fn load_byte(&self, addr: u32) -> Result<u8, EmuError> {
        let w = self.load(addr & !3)?;
        Ok(((w >> ((addr % 4) * 8)) & 0xff) as u8)
    }

    fn read_cstr(&self, mut addr: u32) -> Result<Vec<u8>, EmuError> {
        let mut out = Vec::new();
        for _ in 0..65536 {
            let b = self.load_byte(addr)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            addr = addr.wrapping_add(1);
        }
        Ok(out)
    }

    fn call_import(&mut self, name: &str) -> Result<(), EmuError> {
        self.api_trace.push(name.to_string());
        let ecx = self.regs[binrep::Gpr::Ecx.number() as usize];
        let edx = self.regs[binrep::Gpr::Edx.number() as usize];
        let esi = self.regs[binrep::Gpr::Esi.number() as usize];
        let ret: u32 = match name {
            "read_input" => {
                let v = if self.inputs.is_empty() {
                    0
                } else {
                    self.inputs[self.input_pos % self.inputs.len()]
                };
                self.input_pos += 1;
                v
            }
            "print_u32" | "putchar" => {
                self.output.push(ecx);
                ecx
            }
            "printf" => {
                // fmt in ecx (hashed into output), first vararg in edx.
                let fmt = self.read_cstr(ecx)?;
                let h = fmt
                    .iter()
                    .fold(5381u32, |h, &b| h.wrapping_mul(33).wrapping_add(b as u32));
                self.output.push(h);
                self.output.push(edx);
                0
            }
            "puts" => {
                let s = self.read_cstr(ecx)?;
                let h = s
                    .iter()
                    .fold(5381u32, |h, &b| h.wrapping_mul(33).wrapping_add(b as u32));
                self.output.push(h);
                s.len() as u32
            }
            "malloc" => {
                let size = (ecx.max(4) + 3) & !3;
                let p = self.heap_next;
                self.heap_next = self.heap_next.wrapping_add(size).wrapping_add(16);
                p
            }
            "free" => 0,
            "strlen" => self.read_cstr(ecx)?.len() as u32,
            "strcpy" => {
                // Word-wise copy until (and including) a word containing a
                // zero byte — consistent with the builtin-expansion pass.
                let mut off = 0u32;
                loop {
                    let w = self.load(edx.wrapping_add(off))?;
                    self.store(ecx.wrapping_add(off), w)?;
                    if w.to_le_bytes().contains(&0) {
                        break;
                    }
                    off = off.wrapping_add(4);
                    if off > 1 << 16 {
                        break;
                    }
                }
                ecx
            }
            "strcmp" => {
                let a = self.read_cstr(ecx)?;
                let b = self.read_cstr(edx)?;
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => 0xffff_ffff,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }
            }
            "memcpy" => {
                // Copies ceil(n/4) words.
                let words = esi.div_ceil(4);
                for i in 0..words.min(1 << 16) {
                    let w = self.load(edx.wrapping_add(i * 4))?;
                    self.store(ecx.wrapping_add(i * 4), w)?;
                }
                ecx
            }
            "memset" => {
                let words = esi.div_ceil(4);
                let fill = edx & 0xff;
                let w = fill | fill << 8 | fill << 16 | fill << 24;
                for i in 0..words.min(1 << 16) {
                    self.store(ecx.wrapping_add(i * 4), w)?;
                }
                ecx
            }
            "atoi" => {
                let s = self.read_cstr(ecx)?;
                let mut v: u32 = 0;
                for &b in s.iter().take_while(|b| b.is_ascii_digit()) {
                    v = v.wrapping_mul(10).wrapping_add((b - b'0') as u32);
                }
                v
            }
            "rand" => {
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 17;
                self.rng_state ^= self.rng_state << 5;
                self.rng_state & 0x7fff_ffff
            }
            "time" => 0x5f5e_1000,
            "getpid" => 0x1234,
            "exit" => {
                self.exited = Some(ecx);
                ecx
            }
            // Network/process APIs used by the IoT-malware corpus. They
            // return deterministic pseudo-handles; the AV scanner keys on
            // their presence, not their behaviour.
            "socket" => 3,
            "connect" | "bind" | "listen" | "setsockopt" | "kill" | "ptrace" | "unlink"
            | "prctl" | "ioctl" => 0,
            "accept" => 4,
            "send" | "write" => {
                self.output.push(edx);
                edx
            }
            "recv" | "read" => {
                let v = if self.inputs.is_empty() {
                    0
                } else {
                    self.inputs[self.input_pos % self.inputs.len()]
                };
                self.input_pos += 1;
                v & 0xff
            }
            "fork" => 0x42,
            "execve" | "system" => 0,
            other => return Err(EmuError::UnknownImport(other.to_string())),
        };
        self.regs[0] = ret;
        Ok(())
    }
}
