//! Property tests pinning the FLAGS semantics the paper's branch-free
//! idioms depend on, against a pure-Rust reference model.

use binrep::{Arch, Binary, BlockId, Cond, FuncId, Function, Gpr, Insn, Opcode};
use emu::Machine;
use proptest::prelude::*;

/// Run a tiny program: insns operate on ecx/edx (args), result in eax.
fn run(insns: Vec<Insn>, a: u32, b: u32) -> u32 {
    let mut f = Function::new(FuncId(0), "main", 2);
    f.cfg.block_mut(BlockId(0)).insns = insns;
    let mut bin = Binary::new("t", Arch::X86);
    bin.functions.push(f);
    Machine::new(&bin).run(&[a, b], &[], 10_000).unwrap().ret
}

fn setcc(cond: Cond) -> Vec<Insn> {
    vec![
        Insn::op2(Opcode::Cmp, Gpr::Ecx, Gpr::Edx),
        Insn::op1(Opcode::Set(cond), Gpr::Eax),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every condition code after `cmp a, b` equals its mathematical
    /// definition (unsigned and signed).
    #[test]
    fn prop_setcc_matches_reference(a in any::<u32>(), b in any::<u32>()) {
        let sa = a as i32;
        let sb = b as i32;
        let expect: [(Cond, bool); 10] = [
            (Cond::E, a == b),
            (Cond::Ne, a != b),
            (Cond::B, a < b),
            (Cond::Be, a <= b),
            (Cond::A, a > b),
            (Cond::Ae, a >= b),
            (Cond::L, sa < sb),
            (Cond::Le, sa <= sb),
            (Cond::G, sa > sb),
            (Cond::Ge, sa >= sb),
        ];
        for (cond, want) in expect {
            prop_assert_eq!(run(setcc(cond), a, b), want as u32, "{:?} {} {}", cond, a, b);
        }
    }

    /// The Figure 2(b) `sbb` trick: cmp; sbb eax,eax; inc eax == (a >= b).
    #[test]
    fn prop_sbb_trick(a in any::<u32>(), b in any::<u32>()) {
        let insns = vec![
            Insn::op2(Opcode::Cmp, Gpr::Ecx, Gpr::Edx),
            Insn::op2(Opcode::Sbb, Gpr::Eax, Gpr::Eax),
            Insn::op1(Opcode::Inc, Gpr::Eax),
        ];
        prop_assert_eq!(run(insns, a, b), (a >= b) as u32);
    }

    /// cmov selects exactly like an if-else.
    #[test]
    fn prop_cmov_is_select(a in any::<u32>(), b in any::<u32>()) {
        let insns = vec![
            Insn::op2(Opcode::Mov, Gpr::Eax, 111i64),
            Insn::op2(Opcode::Mov, Gpr::Ebx, 222i64),
            Insn::op2(Opcode::Cmp, Gpr::Ecx, Gpr::Edx),
            Insn::op2(Opcode::Cmov(Cond::B), Gpr::Eax, Gpr::Ebx),
        ];
        let want = if a < b { 222 } else { 111 };
        prop_assert_eq!(run(insns, a, b), want);
    }

    /// Arithmetic matches wrapping u32 semantics.
    #[test]
    fn prop_alu_reference(a in any::<u32>(), b in any::<u32>()) {
        let cases: Vec<(Opcode, u32)> = vec![
            (Opcode::Add, a.wrapping_add(b)),
            (Opcode::Sub, a.wrapping_sub(b)),
            (Opcode::Imul, a.wrapping_mul(b)),
            (Opcode::And, a & b),
            (Opcode::Or, a | b),
            (Opcode::Xor, a ^ b),
            (Opcode::Udiv, a.checked_div(b).unwrap_or(0)),
            (Opcode::Urem, if b == 0 { a } else { a % b }),
            (Opcode::Umulh, (((a as u64) * (b as u64)) >> 32) as u32),
        ];
        for (op, want) in cases {
            let insns = vec![
                Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ecx),
                Insn::op2(op, Gpr::Eax, Gpr::Edx),
            ];
            prop_assert_eq!(run(insns, a, b), want, "{:?}", op);
        }
    }

    /// Shifts mask their count to 5 bits and match Rust semantics.
    #[test]
    fn prop_shift_reference(a in any::<u32>(), s in 0u32..64) {
        let sh = s & 31;
        let cases: Vec<(Opcode, u32)> = vec![
            (Opcode::Shl, a << sh),
            (Opcode::Shr, a >> sh),
            (Opcode::Sar, ((a as i32) >> sh) as u32),
        ];
        for (op, want) in cases {
            let insns = vec![
                Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ecx),
                Insn::op2(op, Gpr::Eax, Gpr::Edx),
            ];
            prop_assert_eq!(run(insns, a, s), want, "{:?} {} {}", op, a, s);
        }
    }

    /// push/pop is the identity on any value.
    #[test]
    fn prop_push_pop_identity(a in any::<u32>()) {
        let insns = vec![
            Insn::op1(Opcode::Push, Gpr::Ecx),
            Insn::op1(Opcode::Pop, Gpr::Eax),
        ];
        prop_assert_eq!(run(insns, a, 0), a);
    }
}
