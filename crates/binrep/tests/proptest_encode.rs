//! Property tests: arbitrary instruction streams survive the
//! encode → decode round trip on every architecture.

use binrep::{Arch, BlockId, Cond, FuncId, Function, Gpr, Insn, Item, MemRef, Opcode, Xmm};
use proptest::prelude::*;

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(|n| Gpr::from_number(n).unwrap())
}

fn arb_mem() -> impl Strategy<Value = MemRef> {
    (
        proptest::option::of(arb_gpr()),
        proptest::option::of(arb_gpr()),
        prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
        any::<i32>(),
    )
        .prop_map(|(base, index, scale, disp)| MemRef {
            base,
            index,
            scale,
            disp,
        })
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..10).prop_map(|n| Cond::from_number(n).unwrap())
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_gpr(), arb_gpr()).prop_map(|(a, b)| Insn::op2(Opcode::Mov, a, b)),
        (arb_gpr(), any::<i32>()).prop_map(|(a, v)| Insn::op2(Opcode::Add, a, v as i64)),
        (arb_gpr(), arb_mem()).prop_map(|(a, m)| Insn::op2(Opcode::Sub, a, m)),
        (arb_mem(), arb_gpr()).prop_map(|(m, b)| Insn::op2(Opcode::Mov, m, b)),
        (arb_gpr(), arb_mem()).prop_map(|(a, m)| Insn::op2(Opcode::Lea, a, m)),
        arb_gpr().prop_map(|a| Insn::op1(Opcode::Not, a)),
        arb_gpr().prop_map(|a| Insn::op1(Opcode::Push, a)),
        (arb_cond(), arb_gpr()).prop_map(|(c, a)| Insn::op1(Opcode::Set(c), a)),
        (arb_cond(), arb_gpr(), arb_gpr()).prop_map(|(c, a, b)| Insn::op2(Opcode::Cmov(c), a, b)),
        (0u8..8, arb_mem()).prop_map(|(x, m)| Insn::op2(Opcode::Vload, Xmm(x), m)),
        (0u16..999).prop_map(|f| Insn::call(FuncId(f as u32))),
        Just(Insn::op0(Opcode::Nop)),
        (arb_gpr(), arb_gpr()).prop_map(|(a, b)| Insn::op2(Opcode::Umulh, a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_round_trip_all_arches(insns in proptest::collection::vec(arb_insn(), 0..40)) {
        for arch in Arch::ALL {
            let mut f = Function::new(FuncId(0), "f", 0);
            f.cfg.block_mut(BlockId(0)).insns = insns.clone();
            let mut buf = bytes::BytesMut::new();
            binrep::encode_function(&mut buf, &f, arch);
            let items = binrep::decode(&buf, arch)
                .unwrap_or_else(|e| panic!("{arch:?}: {e}"));
            let decoded: Vec<Insn> = items
                .into_iter()
                .filter_map(|i| match i {
                    Item::Insn(i) => Some(i),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(&decoded, &insns, "{:?}", arch);
        }
    }

    #[test]
    fn prop_layout_order_changes_bytes_only(insns in proptest::collection::vec(arb_insn(), 1..12)) {
        // Swapping block layout preserves decodability.
        let mut f = Function::new(FuncId(0), "f", 0);
        let b1 = f.cfg.fresh_id();
        f.cfg.block_mut(BlockId(0)).insns = insns.clone();
        f.cfg.block_mut(BlockId(0)).term = binrep::Terminator::Jmp(b1);
        f.cfg.push(binrep::Block::new(
            b1,
            vec![Insn::op0(Opcode::Nop)],
            binrep::Terminator::Ret,
        ));
        let mut a = bytes::BytesMut::new();
        binrep::encode_function(&mut a, &f, Arch::X86);
        f.cfg.blocks.swap(0, 1);
        let mut b = bytes::BytesMut::new();
        binrep::encode_function(&mut b, &f, Arch::X86);
        prop_assert!(binrep::decode(&a, Arch::X86).is_ok());
        prop_assert!(binrep::decode(&b, Arch::X86).is_ok());
    }
}
