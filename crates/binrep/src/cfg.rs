//! Basic blocks, terminators, and the control flow graph.

use crate::insn::{BlockId, Cond, Insn};
use crate::reg::Gpr;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How control leaves a basic block.
///
/// Terminators are structured (rather than raw jump instructions) so that
/// optimization passes can rewrite control flow without re-deriving edges;
/// the byte [encoder](crate::encode) lowers them to branch instructions,
/// eliding fall-through jumps, which makes the encoded bytes sensitive to
/// block layout — exactly the property `-freorder-blocks` exploits.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch on the current FLAGS.
    Branch {
        /// Branch condition.
        cond: Cond,
        /// Target when the condition holds.
        then_bb: BlockId,
        /// Target when it does not.
        else_bb: BlockId,
    },
    /// Indirect jump through a jump table: `jmp [table + index*4]`.
    ///
    /// `index` must already be in range `0..targets.len()`; switch lowering
    /// emits the bounds check before the terminator.
    JumpTable {
        /// Register holding the zero-based case index.
        index: Gpr,
        /// One target per case value.
        targets: Vec<BlockId>,
    },
    /// `loop` instruction: decrement `ecx` (without touching FLAGS) and
    /// branch to `body` while non-zero, else fall through to `exit`.
    LoopBack {
        /// Loop header to re-enter.
        body: BlockId,
        /// Block reached when `ecx` hits zero.
        exit: BlockId,
    },
    /// Return to the caller (return value in `eax`).
    Ret,
    /// Tail call: jump to another function's entry (`-foptimize-sibling-
    /// calls`). Encodes as a jump, so static call-graph recovery misses the
    /// edge — exactly the effect §3.1.1 of the paper describes.
    TailCall(crate::insn::FuncId),
}

impl Terminator {
    /// Successor blocks in deterministic order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jmp(t) => vec![*t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::JumpTable { targets, .. } => {
                let mut v: Vec<BlockId> = targets.clone();
                v.sort();
                v.dedup();
                v
            }
            Terminator::LoopBack { body, exit } => vec![*body, *exit],
            Terminator::Ret | Terminator::TailCall(_) => vec![],
        }
    }

    /// Rewrite every referenced block id through `f`.
    pub fn retarget(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jmp(t) => *t = f(*t),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::JumpTable { targets, .. } => {
                for t in targets {
                    *t = f(*t);
                }
            }
            Terminator::LoopBack { body, exit } => {
                *body = f(*body);
                *exit = f(*exit);
            }
            Terminator::Ret | Terminator::TailCall(_) => {}
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Block id, unique within the owning function.
    pub id: BlockId,
    /// Straight-line body.
    pub insns: Vec<Insn>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Block {
    /// A block holding `insns` and ending in `term`.
    pub fn new(id: BlockId, insns: Vec<Insn>, term: Terminator) -> Block {
        Block { id, insns, term }
    }
}

/// A function body: blocks in **layout order**, with a designated entry.
///
/// Layout order is meaningful — it is the order blocks are encoded into the
/// code section, so reordering passes permute `blocks` without touching ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cfg {
    /// Blocks in layout order.
    pub blocks: Vec<Block>,
    /// Entry block id (not necessarily `blocks[0]` after reordering).
    pub entry: BlockId,
    next_id: u32,
}

impl Cfg {
    /// An empty CFG with a fresh entry block ending in `Ret`.
    pub fn new() -> Cfg {
        Cfg {
            blocks: vec![Block::new(BlockId(0), Vec::new(), Terminator::Ret)],
            entry: BlockId(0),
            next_id: 1,
        }
    }

    /// Allocate a fresh block id (the block must be pushed separately).
    pub fn fresh_id(&mut self) -> BlockId {
        let id = BlockId(self.next_id);
        self.next_id += 1;
        id
    }

    /// The id-allocation watermark — every allocated `BlockId` is below
    /// it. Serialization seam for [`crate::codec`]: `next_id` is part of
    /// the CFG's identity (a decode that guessed it could hand out ids
    /// that collide with removed-then-referenced blocks).
    pub(crate) fn next_id(&self) -> u32 {
        self.next_id
    }

    /// Reassemble a CFG from its serialized parts ([`crate::codec`]
    /// decode path). `next_id` must bound every block id present.
    pub(crate) fn from_raw_parts(blocks: Vec<Block>, entry: BlockId, next_id: u32) -> Cfg {
        debug_assert!(
            blocks.iter().all(|b| b.id.0 < next_id),
            "block id at or above the allocation watermark"
        );
        Cfg {
            blocks,
            entry,
            next_id,
        }
    }

    /// Append a block.
    pub fn push(&mut self, block: Block) {
        debug_assert!(block.id.0 < self.next_id, "block id not allocated");
        self.blocks.push(block);
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (never true for well-formed bodies).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Shared access to a block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        self.blocks
            .iter()
            .find(|b| b.id == id)
            .unwrap_or_else(|| panic!("no block {id}"))
    }

    /// Mutable access to a block by id.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        self.blocks
            .iter_mut()
            .find(|b| b.id == id)
            .unwrap_or_else(|| panic!("no block {id}"))
    }

    /// Whether a block with this id exists.
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.iter().any(|b| b.id == id)
    }

    /// All `(from, to)` edges, deduplicated, in deterministic order.
    pub fn edges(&self) -> Vec<(BlockId, BlockId)> {
        let mut out = BTreeSet::new();
        for b in &self.blocks {
            for s in b.term.successors() {
                out.insert((b.id, s));
            }
        }
        out.into_iter().collect()
    }

    /// Predecessor map.
    pub fn predecessors(&self) -> BTreeMap<BlockId, Vec<BlockId>> {
        let mut preds: BTreeMap<BlockId, Vec<BlockId>> =
            self.blocks.iter().map(|b| (b.id, Vec::new())).collect();
        for (from, to) in self.edges() {
            preds.entry(to).or_default().push(from);
        }
        preds
    }

    /// Reverse post-order starting at the entry block.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut visited = BTreeSet::new();
        let mut post = Vec::new();
        // Iterative DFS to avoid recursion depth limits on long chains.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited.insert(self.entry);
        while let Some((id, child)) = stack.pop() {
            let succs = self.block(id).term.successors();
            if child < succs.len() {
                stack.push((id, child + 1));
                let s = succs[child];
                if visited.insert(s) {
                    stack.push((s, 0));
                }
            } else {
                post.push(id);
            }
        }
        post.reverse();
        post
    }

    /// Blocks unreachable from the entry.
    pub fn unreachable_blocks(&self) -> Vec<BlockId> {
        let reach: BTreeSet<BlockId> = self.rpo().into_iter().collect();
        self.blocks
            .iter()
            .map(|b| b.id)
            .filter(|id| !reach.contains(id))
            .collect()
    }

    /// Remove blocks unreachable from the entry. Returns how many were
    /// removed.
    pub fn remove_unreachable(&mut self) -> usize {
        let dead: BTreeSet<BlockId> = self.unreachable_blocks().into_iter().collect();
        let before = self.blocks.len();
        self.blocks.retain(|b| !dead.contains(&b.id));
        before - self.blocks.len()
    }

    /// Total instruction count (terminators excluded).
    pub fn insn_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insns.len()).sum()
    }

    /// Validate structural invariants; returns a human-readable error.
    ///
    /// Checked invariants: entry exists, ids are unique, every terminator
    /// target exists, jump tables are non-empty.
    pub fn validate(&self) -> Result<(), String> {
        if !self.contains(self.entry) {
            return Err(format!("entry {} missing", self.entry));
        }
        let mut seen = BTreeSet::new();
        for b in &self.blocks {
            if !seen.insert(b.id) {
                return Err(format!("duplicate block id {}", b.id));
            }
        }
        for b in &self.blocks {
            if let Terminator::JumpTable { targets, .. } = &b.term {
                if targets.is_empty() {
                    return Err(format!("{}: empty jump table", b.id));
                }
            }
            for s in b.term.successors() {
                if !self.contains(s) {
                    return Err(format!("{}: dangling edge to {}", b.id, s));
                }
            }
        }
        Ok(())
    }
}

impl Default for Cfg {
    fn default() -> Self {
        Cfg::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Opcode;

    fn diamond() -> Cfg {
        // 0 -> {1, 2} -> 3
        let mut cfg = Cfg::new();
        let b1 = cfg.fresh_id();
        let b2 = cfg.fresh_id();
        let b3 = cfg.fresh_id();
        cfg.block_mut(BlockId(0)).term = Terminator::Branch {
            cond: Cond::E,
            then_bb: b1,
            else_bb: b2,
        };
        cfg.push(Block::new(
            b1,
            vec![Insn::op0(Opcode::Nop)],
            Terminator::Jmp(b3),
        ));
        cfg.push(Block::new(b2, vec![], Terminator::Jmp(b3)));
        cfg.push(Block::new(b3, vec![], Terminator::Ret));
        cfg
    }

    #[test]
    fn edges_and_preds() {
        let cfg = diamond();
        assert_eq!(cfg.edges().len(), 4);
        let preds = cfg.predecessors();
        assert_eq!(preds[&BlockId(3)].len(), 2);
        assert!(preds[&BlockId(0)].is_empty());
        cfg.validate().unwrap();
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let cfg = diamond();
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn unreachable_removal() {
        let mut cfg = diamond();
        let dead = cfg.fresh_id();
        cfg.push(Block::new(dead, vec![], Terminator::Ret));
        assert_eq!(cfg.unreachable_blocks(), vec![dead]);
        assert_eq!(cfg.remove_unreachable(), 1);
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_dangling_edge() {
        let mut cfg = Cfg::new();
        cfg.block_mut(BlockId(0)).term = Terminator::Jmp(BlockId(99));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn retarget_rewrites_all_targets() {
        let mut t = Terminator::Branch {
            cond: Cond::L,
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        t.retarget(|b| BlockId(b.0 + 10));
        assert_eq!(t.successors(), vec![BlockId(11), BlockId(12)]);
    }
}
