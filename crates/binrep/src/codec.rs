//! Lossless canonical serialization of [`Binary`] images.
//!
//! [`crate::encode`] is the *lossy* byte encoding the NCD fitness
//! function compresses — it elides fall-through jumps and forgets block
//! ids, so it cannot reconstruct the structured program. This module is
//! the other direction: a reversible codec so a compiled binary can be
//! persisted (the artifact store in `bintuner::store`) and shipped
//! across processes, bit-exactly.
//!
//! Mirrors `minicc::codec` in shape and discipline: a fixed magic,
//! little-endian integers, declaration-order enum tags that must never
//! be renumbered, defensive decoding (forged lengths, truncation and bad
//! tags are typed errors, never panics or huge pre-allocations), and a
//! trailing-bytes check so concatenated payloads cannot alias.

use crate::cfg::{Block, Cfg, Terminator};
use crate::insn::{BlockId, Cond, FuncId, ImportId, Insn, MemRef, Opcode, Operand};
use crate::program::{Arch, Binary, Function, Import};
use crate::reg::{Gpr, Xmm};

/// Format magic: "BRC" + version byte. Bump the version byte on any
/// layout change so stale artifact payloads decode to a typed error.
pub const MAGIC: [u8; 4] = *b"BRC\x01";

/// Decoding failure. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input does not start with [`MAGIC`].
    BadMagic,
    /// Input ended before the structure did (or a length field claimed
    /// more bytes than remain).
    Truncated,
    /// An enum tag byte outside the known range, with the site name.
    BadTag(&'static str, u8),
    /// A length-prefixed string was not UTF-8.
    BadString,
    /// Bytes left over after the binary was fully decoded.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a binrep codec payload (bad magic)"),
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::BadTag(what, t) => write!(f, "bad {what} tag {t}"),
            CodecError::BadString => write!(f, "string is not UTF-8"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after binary"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialize a binary to its canonical byte form.
pub fn encode_binary(b: &Binary) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&MAGIC);
    put_str(&mut out, &b.name);
    out.push(arch_tag(b.arch));
    out.extend_from_slice(&b.entry.0.to_le_bytes());
    put_len(&mut out, b.functions.len());
    for f in &b.functions {
        put_func(&mut out, f);
    }
    put_len(&mut out, b.data.len());
    for w in &b.data {
        out.extend_from_slice(&w.to_le_bytes());
    }
    put_len(&mut out, b.imports.len());
    for imp in &b.imports {
        out.extend_from_slice(&imp.id.0.to_le_bytes());
        put_str(&mut out, &imp.name);
    }
    out
}

/// Inverse of [`encode_binary`]. The whole input must be consumed.
pub fn decode_binary(bytes: &[u8]) -> Result<Binary, CodecError> {
    let mut r = Reader { buf: bytes, at: 0 };
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let name = r.string()?;
    let arch = arch_from_tag(r.u8()?)?;
    let entry = FuncId(r.u32()?);
    let mut functions = Vec::new();
    for _ in 0..r.len()? {
        functions.push(r.func()?);
    }
    let mut data = Vec::new();
    for _ in 0..r.len()? {
        data.push(r.u32()?);
    }
    let mut imports = Vec::new();
    for _ in 0..r.len()? {
        let id = ImportId(r.u16()?);
        imports.push(Import {
            id,
            name: r.string()?,
        });
    }
    if r.at != r.buf.len() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(Binary {
        name,
        arch,
        functions,
        entry,
        data,
        imports,
    })
}

/// Stable one-byte arch tag — declaration order of [`Arch::ALL`], which
/// is also the tag `bintuner::store` keys fitness records by.
fn arch_tag(a: Arch) -> u8 {
    Arch::ALL.iter().position(|&x| x == a).unwrap() as u8
}

fn arch_from_tag(t: u8) -> Result<Arch, CodecError> {
    Arch::ALL
        .get(t as usize)
        .copied()
        .ok_or(CodecError::BadTag("arch", t))
}

/// Stable one-byte opcode tag. Exhaustive match: adding an `Opcode`
/// variant without assigning a tag here is a compile error, and the
/// assignments must never be reordered or reused (they are persisted).
/// `Set`/`Cmov` carry their condition as a following byte.
fn opcode_tag(op: Opcode) -> u8 {
    match op {
        Opcode::Mov => 0,
        Opcode::Lea => 1,
        Opcode::Add => 2,
        Opcode::Sub => 3,
        Opcode::Sbb => 4,
        Opcode::Adc => 5,
        Opcode::Imul => 6,
        Opcode::Udiv => 7,
        Opcode::Urem => 8,
        Opcode::Umulh => 9,
        Opcode::And => 10,
        Opcode::Or => 11,
        Opcode::Xor => 12,
        Opcode::Not => 13,
        Opcode::Neg => 14,
        Opcode::Inc => 15,
        Opcode::Dec => 16,
        Opcode::Shl => 17,
        Opcode::Shr => 18,
        Opcode::Sar => 19,
        Opcode::Cmp => 20,
        Opcode::Test => 21,
        Opcode::Set(_) => 22,
        Opcode::Cmov(_) => 23,
        Opcode::Push => 24,
        Opcode::Pop => 25,
        Opcode::Call => 26,
        Opcode::CallImport => 27,
        Opcode::Vload => 28,
        Opcode::Vstore => 29,
        Opcode::Vadd => 30,
        Opcode::Vsub => 31,
        Opcode::Vmul => 32,
        Opcode::Vhsum => 33,
        Opcode::Nop => 34,
    }
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_func(out: &mut Vec<u8>, f: &Function) {
    out.extend_from_slice(&f.id.0.to_le_bytes());
    put_str(out, &f.name);
    put_len(out, f.params);
    out.push(f.is_library as u8);
    out.push(f.align_pad);
    out.extend_from_slice(&f.cfg.entry.0.to_le_bytes());
    out.extend_from_slice(&f.cfg.next_id().to_le_bytes());
    put_len(out, f.cfg.blocks.len());
    for b in &f.cfg.blocks {
        put_block(out, b);
    }
}

fn put_block(out: &mut Vec<u8>, b: &Block) {
    out.extend_from_slice(&b.id.0.to_le_bytes());
    put_len(out, b.insns.len());
    for i in &b.insns {
        put_insn(out, i);
    }
    put_term(out, &b.term);
}

fn put_insn(out: &mut Vec<u8>, i: &Insn) {
    out.push(opcode_tag(i.op));
    match i.op {
        Opcode::Set(c) | Opcode::Cmov(c) => out.push(c.number()),
        _ => {}
    }
    put_operand_opt(out, &i.a);
    put_operand_opt(out, &i.b);
}

fn put_operand_opt(out: &mut Vec<u8>, o: &Option<Operand>) {
    match o {
        None => out.push(0),
        Some(Operand::Reg(r)) => {
            out.push(1);
            out.push(r.number());
        }
        Some(Operand::Vec(x)) => {
            out.push(2);
            out.push(x.0);
        }
        Some(Operand::Imm(v)) => {
            out.push(3);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Some(Operand::Mem(m)) => {
            out.push(4);
            put_gpr_opt(out, m.base);
            put_gpr_opt(out, m.index);
            out.push(m.scale);
            out.extend_from_slice(&m.disp.to_le_bytes());
        }
    }
}

fn put_gpr_opt(out: &mut Vec<u8>, r: Option<Gpr>) {
    match r {
        None => out.push(0xff),
        Some(r) => out.push(r.number()),
    }
}

fn put_term(out: &mut Vec<u8>, t: &Terminator) {
    match t {
        Terminator::Jmp(bb) => {
            out.push(0);
            out.extend_from_slice(&bb.0.to_le_bytes());
        }
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            out.push(1);
            out.push(cond.number());
            out.extend_from_slice(&then_bb.0.to_le_bytes());
            out.extend_from_slice(&else_bb.0.to_le_bytes());
        }
        Terminator::JumpTable { index, targets } => {
            out.push(2);
            out.push(index.number());
            put_len(out, targets.len());
            for t in targets {
                out.extend_from_slice(&t.0.to_le_bytes());
            }
        }
        Terminator::LoopBack { body, exit } => {
            out.push(3);
            out.extend_from_slice(&body.0.to_le_bytes());
            out.extend_from_slice(&exit.0.to_le_bytes());
        }
        Terminator::Ret => out.push(4),
        Terminator::TailCall(f) => {
            out.push(5);
            out.extend_from_slice(&f.0.to_le_bytes());
        }
    }
}

/// Bounds-checked cursor over the input.
struct Reader<'b> {
    buf: &'b [u8],
    at: usize,
}

impl<'b> Reader<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], CodecError> {
        let end = self.at.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(self.u32()? as i32)
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A sequence length. Sanity-capped by remaining input (every
    /// element is ≥ 1 byte), so a forged huge length cannot drive a
    /// pre-allocation.
    fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.at {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let n = self.len()?;
        let s = std::str::from_utf8(self.take(n)?).map_err(|_| CodecError::BadString)?;
        Ok(s.to_owned())
    }

    fn cond(&mut self) -> Result<Cond, CodecError> {
        let t = self.u8()?;
        Cond::from_number(t).ok_or(CodecError::BadTag("cond", t))
    }

    fn gpr(&mut self) -> Result<Gpr, CodecError> {
        let t = self.u8()?;
        Gpr::from_number(t).ok_or(CodecError::BadTag("gpr", t))
    }

    fn gpr_opt(&mut self) -> Result<Option<Gpr>, CodecError> {
        let t = self.u8()?;
        if t == 0xff {
            return Ok(None);
        }
        Gpr::from_number(t)
            .map(Some)
            .ok_or(CodecError::BadTag("gpr", t))
    }

    fn func(&mut self) -> Result<Function, CodecError> {
        let id = FuncId(self.u32()?);
        let name = self.string()?;
        let params = self.len()?;
        let is_library = match self.u8()? {
            0 => false,
            1 => true,
            t => return Err(CodecError::BadTag("bool", t)),
        };
        let align_pad = self.u8()?;
        let entry = BlockId(self.u32()?);
        let next_id = self.u32()?;
        let mut blocks = Vec::new();
        for _ in 0..self.len()? {
            let b = self.block()?;
            if b.id.0 >= next_id {
                return Err(CodecError::BadTag("block-id-watermark", 0));
            }
            blocks.push(b);
        }
        let mut f = Function::new(id, name, params);
        f.is_library = is_library;
        f.align_pad = align_pad;
        f.cfg = Cfg::from_raw_parts(blocks, entry, next_id);
        Ok(f)
    }

    fn block(&mut self) -> Result<Block, CodecError> {
        let id = BlockId(self.u32()?);
        let mut insns = Vec::new();
        for _ in 0..self.len()? {
            insns.push(self.insn()?);
        }
        let term = self.term()?;
        Ok(Block { id, insns, term })
    }

    fn insn(&mut self) -> Result<Insn, CodecError> {
        const PLAIN: [Opcode; 35] = [
            Opcode::Mov,
            Opcode::Lea,
            Opcode::Add,
            Opcode::Sub,
            Opcode::Sbb,
            Opcode::Adc,
            Opcode::Imul,
            Opcode::Udiv,
            Opcode::Urem,
            Opcode::Umulh,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Not,
            Opcode::Neg,
            Opcode::Inc,
            Opcode::Dec,
            Opcode::Shl,
            Opcode::Shr,
            Opcode::Sar,
            Opcode::Cmp,
            Opcode::Test,
            Opcode::Set(Cond::E),  // placeholder, cond read below
            Opcode::Cmov(Cond::E), // placeholder, cond read below
            Opcode::Push,
            Opcode::Pop,
            Opcode::Call,
            Opcode::CallImport,
            Opcode::Vload,
            Opcode::Vstore,
            Opcode::Vadd,
            Opcode::Vsub,
            Opcode::Vmul,
            Opcode::Vhsum,
            Opcode::Nop,
        ];
        let t = self.u8()?;
        let op = match *PLAIN
            .get(t as usize)
            .ok_or(CodecError::BadTag("opcode", t))?
        {
            Opcode::Set(_) => Opcode::Set(self.cond()?),
            Opcode::Cmov(_) => Opcode::Cmov(self.cond()?),
            plain => plain,
        };
        let a = self.operand_opt()?;
        let b = self.operand_opt()?;
        Ok(Insn { op, a, b })
    }

    fn operand_opt(&mut self) -> Result<Option<Operand>, CodecError> {
        Ok(match self.u8()? {
            0 => None,
            1 => Some(Operand::Reg(self.gpr()?)),
            2 => {
                let n = self.u8()?;
                if n >= 8 {
                    return Err(CodecError::BadTag("xmm", n));
                }
                Some(Operand::Vec(Xmm(n)))
            }
            3 => Some(Operand::Imm(self.i64()?)),
            4 => {
                let base = self.gpr_opt()?;
                let index = self.gpr_opt()?;
                let scale = self.u8()?;
                let disp = self.i32()?;
                Some(Operand::Mem(MemRef {
                    base,
                    index,
                    scale,
                    disp,
                }))
            }
            t => return Err(CodecError::BadTag("operand", t)),
        })
    }

    fn term(&mut self) -> Result<Terminator, CodecError> {
        Ok(match self.u8()? {
            0 => Terminator::Jmp(BlockId(self.u32()?)),
            1 => Terminator::Branch {
                cond: self.cond()?,
                then_bb: BlockId(self.u32()?),
                else_bb: BlockId(self.u32()?),
            },
            2 => {
                let index = self.gpr()?;
                let mut targets = Vec::new();
                for _ in 0..self.len()? {
                    targets.push(BlockId(self.u32()?));
                }
                Terminator::JumpTable { index, targets }
            }
            3 => Terminator::LoopBack {
                body: BlockId(self.u32()?),
                exit: BlockId(self.u32()?),
            },
            4 => Terminator::Ret,
            5 => Terminator::TailCall(FuncId(self.u32()?)),
            t => return Err(CodecError::BadTag("terminator", t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::DATA_BASE;

    /// A binary exercising every operand shape, both cond-carrying
    /// opcodes, and every terminator variant.
    fn kitchen_sink() -> Binary {
        let mut bin = Binary::new("sink", Arch::X8664);
        let s = bin.add_string("hello");
        let _ = bin.add_data_word(7, true);
        let strcpy = bin.import_by_name("strcpy");

        let mut f = Function::new(FuncId(0), "main", 2);
        f.align_pad = 3;
        let b1 = f.cfg.fresh_id();
        let b2 = f.cfg.fresh_id();
        let b3 = f.cfg.fresh_id();
        let b4 = f.cfg.fresh_id();
        let entry = f.cfg.block_mut(BlockId(0));
        entry.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, 42i64));
        entry
            .insns
            .push(Insn::op2(Opcode::Lea, Gpr::Esi, MemRef::abs(s as i32)));
        entry.insns.push(Insn::op2(
            Opcode::Add,
            Gpr::R9,
            MemRef::indexed(Some(Gpr::Ebp), Gpr::Ecx, 4, -12),
        ));
        entry.insns.push(Insn::op2(
            Opcode::Vload,
            Xmm(3),
            MemRef::base_disp(Gpr::Esp, DATA_BASE as i32),
        ));
        entry.insns.push(Insn::op1(Opcode::Set(Cond::Le), Gpr::Edx));
        entry
            .insns
            .push(Insn::op2(Opcode::Cmov(Cond::A), Gpr::Eax, Gpr::Ebx));
        entry.insns.push(Insn::call_import(strcpy));
        entry.insns.push(Insn::op0(Opcode::Nop));
        entry.term = Terminator::Branch {
            cond: Cond::Ne,
            then_bb: b1,
            else_bb: b2,
        };
        f.cfg.push(Block::new(
            b1,
            vec![],
            Terminator::JumpTable {
                index: Gpr::Ecx,
                targets: vec![b2, b3, b2],
            },
        ));
        f.cfg.push(Block::new(
            b2,
            vec![],
            Terminator::LoopBack { body: b2, exit: b3 },
        ));
        f.cfg.push(Block::new(b3, vec![], Terminator::Jmp(b4)));
        f.cfg
            .push(Block::new(b4, vec![], Terminator::TailCall(FuncId(1))));
        bin.functions.push(f);

        let mut lib = Function::new(FuncId(1), "helper", 0);
        lib.is_library = true;
        bin.functions.push(lib);
        bin
    }

    #[test]
    fn kitchen_sink_round_trips() {
        let bin = kitchen_sink();
        let bytes = encode_binary(&bin);
        let back = decode_binary(&bytes).expect("decode");
        assert_eq!(back, bin);
        // next_id survives: fresh ids allocated after decode don't
        // collide with existing blocks.
        let mut back = back;
        let fresh = back.functions[0].cfg.fresh_id();
        assert!(!back.functions[0].cfg.contains(fresh));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode_binary(&kitchen_sink());
        for cut in 0..bytes.len() {
            match decode_binary(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("prefix of {cut} bytes decoded cleanly"),
            }
        }
    }

    #[test]
    fn garbage_and_trailing_bytes_are_rejected() {
        assert_eq!(decode_binary(b"nope"), Err(CodecError::BadMagic));
        assert_eq!(decode_binary(&[]), Err(CodecError::Truncated));
        let mut bytes = encode_binary(&kitchen_sink());
        bytes.push(0);
        assert_eq!(decode_binary(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn corrupt_tags_never_panic() {
        let clean = encode_binary(&kitchen_sink());
        for at in 0..clean.len() {
            let mut bad = clean.clone();
            bad[at] ^= 0x5a;
            let _ = decode_binary(&bad); // any Result is fine; no panic
        }
    }
}
