//! # binrep — binary code representation for the BinTuner reproduction
//!
//! This crate is the machine-level substrate shared by every other crate in
//! the workspace: a small x86-flavoured instruction set ([`insn`]),
//! structured basic blocks and control flow graphs ([`mod@cfg`]), whole-binary
//! images with data sections and import tables ([`program`]), deterministic
//! byte encoders/decoders for four target architectures ([`encode`]), and
//! descriptive code statistics ([`stats`]).
//!
//! The design goal is fidelity to the properties the paper's study depends
//! on, not to real x86: optimization passes in `minicc` transform these
//! structures, `emu` executes them, `binhunt`/`difftools` compare them, and
//! `lzc` compresses their encoded bytes for the NCD fitness function.
//!
//! ## Example
//!
//! ```
//! use binrep::{Arch, Binary, Block, BlockId, Cond, FuncId, Function, Gpr, Insn, Opcode, Terminator};
//!
//! // Build `int max(a, b) { return a > b ? a : b; }` by hand.
//! let mut f = Function::new(FuncId(0), "max", 2);
//! let then_bb = f.cfg.fresh_id();
//! let join = f.cfg.fresh_id();
//! let entry = f.cfg.block_mut(BlockId(0));
//! entry.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Edx)); // eax = b
//! entry.insns.push(Insn::op2(Opcode::Cmp, Gpr::Ecx, Gpr::Edx));
//! entry.term = Terminator::Branch { cond: Cond::G, then_bb, else_bb: join };
//! f.cfg.push(Block::new(
//!     then_bb,
//!     vec![Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ecx)],
//!     Terminator::Jmp(join),
//! ));
//! f.cfg.push(Block::new(join, vec![], Terminator::Ret));
//!
//! let mut bin = Binary::new("example", Arch::X86);
//! bin.functions.push(f);
//! bin.validate().unwrap();
//! let code = binrep::encode_binary(&bin);
//! assert!(!code.is_empty());
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod codec;
pub mod encode;
pub mod insn;
pub mod program;
pub mod reg;
pub mod stats;

pub use cfg::{Block, Cfg, Terminator};
pub use encode::{decode, encode_binary, encode_function, DecodeError, Item};
pub use insn::{BlockId, Cond, FuncId, ImportId, Insn, MemRef, Opcode, Operand};
pub use program::{Arch, Binary, Function, Import, DATA_BASE, HEAP_BASE, STACK_TOP};
pub use reg::{Gpr, Xmm};
pub use stats::{byte_ngrams, function_features, opcode_histogram, FunctionFeatures};
