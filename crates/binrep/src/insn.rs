//! Instructions of the mini-ISA.
//!
//! The instruction set intentionally covers every idiom the paper's §3
//! discusses: FLAGS side-effect tricks (`sbb`, `setcc`, `cmovcc`), the
//! `loop` instruction, SSE-style vector operations, `lea`, and the usual
//! ALU/data-movement core. Semantics are defined precisely by the `emu`
//! crate; this crate only defines structure and encoding.

use crate::reg::{Gpr, Xmm};
use serde::{Deserialize, Serialize};

/// Identifier of a basic block within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Identifier of a function within one binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Condition codes, signed and unsigned, mirroring x86 `cc` suffixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal (ZF).
    E,
    /// Not equal (!ZF).
    Ne,
    /// Signed less-than (SF != OF).
    L,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    G,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below (CF).
    B,
    /// Unsigned below-or-equal.
    Be,
    /// Unsigned above.
    A,
    /// Unsigned above-or-equal (!CF).
    Ae,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 10] = [
        Cond::E,
        Cond::Ne,
        Cond::L,
        Cond::Le,
        Cond::G,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
    ];

    /// The logically negated condition (`E` ↔ `Ne`, `L` ↔ `Ge`, ...).
    pub fn negate(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::Ge => Cond::L,
            Cond::B => Cond::Ae,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::Ae => Cond::B,
        }
    }

    /// The condition with operand order swapped (`a cc b` == `b swap(cc) a`).
    pub fn swap(self) -> Cond {
        match self {
            Cond::E => Cond::E,
            Cond::Ne => Cond::Ne,
            Cond::L => Cond::G,
            Cond::Le => Cond::Ge,
            Cond::G => Cond::L,
            Cond::Ge => Cond::Le,
            Cond::B => Cond::A,
            Cond::Be => Cond::Ae,
            Cond::A => Cond::B,
            Cond::Ae => Cond::Be,
        }
    }

    /// Encoding number, 0..10.
    pub fn number(self) -> u8 {
        Self::ALL.iter().position(|&c| c == self).unwrap() as u8
    }

    /// Inverse of [`Cond::number`].
    pub fn from_number(n: u8) -> Option<Cond> {
        Self::ALL.get(n as usize).copied()
    }

    /// Assembly-style suffix, e.g. `"ge"`.
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
        }
    }
}

/// A memory reference: `[base + index*scale + disp]`.
///
/// Addresses are computed modulo 2³². Global data lives at
/// [`crate::DATA_BASE`]; stack frames are `Ebp`-relative with negative
/// displacements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Gpr>,
    /// Index register, if any.
    pub index: Option<Gpr>,
    /// Scale applied to the index register (1, 2, 4 or 8).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i32,
}

impl MemRef {
    /// `[reg]`
    pub fn base_only(base: Gpr) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp: 0,
        }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Gpr, disp: i32) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[disp]` — absolute address, used for globals.
    pub fn abs(disp: i32) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[base + index*scale + disp]`
    pub fn indexed(base: Option<Gpr>, index: Gpr, scale: u8, disp: i32) -> MemRef {
        MemRef {
            base,
            index: Some(index),
            scale,
            disp,
        }
    }

    /// Registers read when evaluating this address.
    pub fn regs(&self) -> impl Iterator<Item = Gpr> + '_ {
        self.base.into_iter().chain(self.index)
    }

    /// Rewrite base/index registers through `f` (used by register
    /// renaming passes).
    pub fn map_regs(mut self, mut f: impl FnMut(Gpr) -> Gpr) -> MemRef {
        self.base = self.base.map(&mut f);
        self.index = self.index.map(&mut f);
        self
    }
}

impl std::fmt::Display for MemRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            first = false;
        }
        if self.disp != 0 || first {
            if !first && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{:#x}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// General-purpose register.
    Reg(Gpr),
    /// Vector register.
    Vec(Xmm),
    /// Immediate constant (always 32-bit semantics; stored sign-extended).
    Imm(i64),
    /// Memory reference.
    Mem(MemRef),
}

impl Operand {
    /// The register, if this operand is a plain GPR.
    pub fn as_reg(&self) -> Option<Gpr> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// The immediate value, if this operand is an immediate.
    pub fn as_imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(*v),
            _ => None,
        }
    }

    /// The memory reference, if this operand is a memory operand.
    pub fn as_mem(&self) -> Option<MemRef> {
        match self {
            Operand::Mem(m) => Some(*m),
            _ => None,
        }
    }
}

impl From<Gpr> for Operand {
    fn from(r: Gpr) -> Self {
        Operand::Reg(r)
    }
}

impl From<Xmm> for Operand {
    fn from(x: Xmm) -> Self {
        Operand::Vec(x)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Self {
        Operand::Mem(m)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Vec(x) => write!(f, "{x}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// Name of an imported ("library") function, e.g. `strcpy` or `socket`.
///
/// Imports are the ISA's foreign-function interface: the emulator implements
/// their semantics, the AV scanner matches on the set of referenced imports,
/// and the inliner treats them as opaque (unless a builtin expansion pass
/// rewrites them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ImportId(pub u16);

/// Instruction opcodes.
///
/// Two-operand ALU forms compute `a = a op b` and set FLAGS; `Cmp`/`Test`
/// only set FLAGS. Vector opcodes operate on four packed 32-bit lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// `a = b` (no FLAGS).
    Mov,
    /// `a = address-of b` (b must be Mem; no FLAGS).
    Lea,
    /// `a += b`.
    Add,
    /// `a -= b`.
    Sub,
    /// `a = a - b - CF`.
    Sbb,
    /// `a = a + b + CF`.
    Adc,
    /// `a *= b` (low 32 bits).
    Imul,
    /// `a = a / b` (unsigned; division by zero yields 0 by ISA definition).
    Udiv,
    /// `a = a % b` (unsigned; modulo zero yields the dividend).
    Urem,
    /// `a = high 32 bits of a*b` (unsigned widening multiply) — the
    /// work-horse of magic-number division.
    Umulh,
    /// `a &= b`.
    And,
    /// `a |= b`.
    Or,
    /// `a ^= b`.
    Xor,
    /// `a = !a` (bitwise not; no FLAGS, like x86).
    Not,
    /// `a = -a`.
    Neg,
    /// `a += 1` (does not touch CF, like x86).
    Inc,
    /// `a -= 1` (does not touch CF).
    Dec,
    /// `a <<= b & 31`.
    Shl,
    /// `a >>= b & 31` (logical).
    Shr,
    /// `a >>= b & 31` (arithmetic).
    Sar,
    /// FLAGS = compare(a, b) via subtraction.
    Cmp,
    /// FLAGS = a & b.
    Test,
    /// `a = cond ? 1 : 0`.
    Set(Cond),
    /// `a = cond ? b : a`.
    Cmov(Cond),
    /// Push a onto the stack.
    Push,
    /// Pop the stack into a.
    Pop,
    /// Call a local function. `a` is `Imm(FuncId)`.
    Call,
    /// Call an imported function. `a` is `Imm(ImportId)`.
    CallImport,
    /// Vector load: `a (xmm) = 16 bytes at b (mem)`.
    Vload,
    /// Vector store: `16 bytes at a (mem) = b (xmm)`.
    Vstore,
    /// `a += b` lane-wise.
    Vadd,
    /// `a -= b` lane-wise.
    Vsub,
    /// `a *= b` lane-wise (low 32 bits).
    Vmul,
    /// Horizontal sum of b's lanes into GPR a.
    Vhsum,
    /// One-byte no-op (alignment padding).
    Nop,
}

impl Opcode {
    /// Number of operands this opcode takes.
    pub fn arity(self) -> usize {
        match self {
            Opcode::Nop => 0,
            Opcode::Not
            | Opcode::Neg
            | Opcode::Inc
            | Opcode::Dec
            | Opcode::Push
            | Opcode::Pop
            | Opcode::Call
            | Opcode::CallImport
            | Opcode::Set(_) => 1,
            _ => 2,
        }
    }

    /// Whether the instruction writes FLAGS.
    pub fn writes_flags(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Sbb
                | Opcode::Adc
                | Opcode::Imul
                | Opcode::Udiv
                | Opcode::Urem
                | Opcode::Umulh
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Neg
                | Opcode::Inc
                | Opcode::Dec
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Sar
                | Opcode::Cmp
                | Opcode::Test
        )
    }

    /// Whether the instruction reads FLAGS.
    pub fn reads_flags(self) -> bool {
        matches!(
            self,
            Opcode::Sbb | Opcode::Adc | Opcode::Set(_) | Opcode::Cmov(_)
        )
    }

    /// Mnemonic, e.g. `"add"` or `"cmovge"`.
    pub fn mnemonic(self) -> String {
        match self {
            Opcode::Mov => "mov".into(),
            Opcode::Lea => "lea".into(),
            Opcode::Add => "add".into(),
            Opcode::Sub => "sub".into(),
            Opcode::Sbb => "sbb".into(),
            Opcode::Adc => "adc".into(),
            Opcode::Imul => "imul".into(),
            Opcode::Udiv => "udiv".into(),
            Opcode::Urem => "urem".into(),
            Opcode::Umulh => "umulh".into(),
            Opcode::And => "and".into(),
            Opcode::Or => "or".into(),
            Opcode::Xor => "xor".into(),
            Opcode::Not => "not".into(),
            Opcode::Neg => "neg".into(),
            Opcode::Inc => "inc".into(),
            Opcode::Dec => "dec".into(),
            Opcode::Shl => "shl".into(),
            Opcode::Shr => "shr".into(),
            Opcode::Sar => "sar".into(),
            Opcode::Cmp => "cmp".into(),
            Opcode::Test => "test".into(),
            Opcode::Set(c) => format!("set{}", c.suffix()),
            Opcode::Cmov(c) => format!("cmov{}", c.suffix()),
            Opcode::Push => "push".into(),
            Opcode::Pop => "pop".into(),
            Opcode::Call => "call".into(),
            Opcode::CallImport => "call@import".into(),
            Opcode::Vload => "movups".into(),
            Opcode::Vstore => "movaps".into(),
            Opcode::Vadd => "paddd".into(),
            Opcode::Vsub => "psubd".into(),
            Opcode::Vmul => "pmulld".into(),
            Opcode::Vhsum => "phsumd".into(),
            Opcode::Nop => "nop".into(),
        }
    }
}

/// One instruction: opcode plus up to two operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Insn {
    /// Opcode.
    pub op: Opcode,
    /// First operand (destination in two-operand forms).
    pub a: Option<Operand>,
    /// Second operand (source).
    pub b: Option<Operand>,
}

impl Insn {
    /// Zero-operand instruction.
    pub fn op0(op: Opcode) -> Insn {
        debug_assert_eq!(op.arity(), 0);
        Insn {
            op,
            a: None,
            b: None,
        }
    }

    /// One-operand instruction.
    pub fn op1(op: Opcode, a: impl Into<Operand>) -> Insn {
        debug_assert_eq!(op.arity(), 1);
        Insn {
            op,
            a: Some(a.into()),
            b: None,
        }
    }

    /// Two-operand instruction.
    pub fn op2(op: Opcode, a: impl Into<Operand>, b: impl Into<Operand>) -> Insn {
        debug_assert_eq!(op.arity(), 2);
        Insn {
            op,
            a: Some(a.into()),
            b: Some(b.into()),
        }
    }

    /// `call f`.
    pub fn call(f: FuncId) -> Insn {
        Insn::op1(Opcode::Call, Operand::Imm(f.0 as i64))
    }

    /// `call import`.
    pub fn call_import(i: ImportId) -> Insn {
        Insn::op1(Opcode::CallImport, Operand::Imm(i.0 as i64))
    }

    /// The callee, when this is a local call.
    pub fn callee(&self) -> Option<FuncId> {
        if self.op == Opcode::Call {
            self.a.and_then(|o| o.as_imm()).map(|v| FuncId(v as u32))
        } else {
            None
        }
    }

    /// The import, when this is an import call.
    pub fn import(&self) -> Option<ImportId> {
        if self.op == Opcode::CallImport {
            self.a.and_then(|o| o.as_imm()).map(|v| ImportId(v as u16))
        } else {
            None
        }
    }

    /// GPRs read by this instruction (conservative; excludes FLAGS).
    pub fn uses(&self) -> Vec<Gpr> {
        let mut out = Vec::new();
        fn add_read(out: &mut Vec<Gpr>, o: &Operand) {
            match o {
                Operand::Reg(r) => out.push(*r),
                Operand::Mem(m) => out.extend(m.regs()),
                _ => {}
            }
        }
        // Destination operand is also read by read-modify-write opcodes
        // and by memory destinations (for the address).
        if let Some(a) = &self.a {
            match self.op {
                Opcode::Mov | Opcode::Lea | Opcode::Set(_) | Opcode::Pop | Opcode::Vload => {
                    if let Operand::Mem(m) = a {
                        out.extend(m.regs());
                    }
                }
                _ => add_read(&mut out, a),
            }
        }
        if let Some(b) = &self.b {
            add_read(&mut out, b);
        }
        out.sort();
        out.dedup();
        out
    }

    /// The GPR written by this instruction, if any (excludes FLAGS/memory).
    pub fn def(&self) -> Option<Gpr> {
        match self.op {
            Opcode::Cmp | Opcode::Test | Opcode::Push | Opcode::Vstore | Opcode::Nop => None,
            Opcode::Call | Opcode::CallImport => Some(Gpr::Eax),
            Opcode::Vhsum => self.a.and_then(|o| o.as_reg()),
            _ => self.a.and_then(|o| o.as_reg()),
        }
    }
}

impl std::fmt::Display for Insn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.op.mnemonic())?;
        if let Some(a) = &self.a {
            write!(f, " {a}")?;
        }
        if let Some(b) = &self.b {
            write!(f, ", {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negate_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            assert_eq!(c.swap().swap(), c);
            assert_eq!(Cond::from_number(c.number()), Some(c));
        }
    }

    #[test]
    fn arity_matches_constructor() {
        let i = Insn::op2(Opcode::Add, Gpr::Eax, 5i64);
        assert_eq!(i.op.arity(), 2);
        assert_eq!(i.to_string(), "add eax, 0x5");
    }

    #[test]
    fn uses_and_defs() {
        let i = Insn::op2(
            Opcode::Add,
            Gpr::Eax,
            MemRef::indexed(Some(Gpr::Ebx), Gpr::Ecx, 4, 8),
        );
        assert_eq!(i.uses(), vec![Gpr::Eax, Gpr::Ecx, Gpr::Ebx]);
        assert_eq!(i.def(), Some(Gpr::Eax));

        let store = Insn::op2(Opcode::Mov, MemRef::base_disp(Gpr::Ebp, -4), Gpr::Edx);
        assert_eq!(store.uses(), vec![Gpr::Edx, Gpr::Ebp]);
        assert_eq!(store.def(), None);

        let call = Insn::call(FuncId(3));
        assert_eq!(call.def(), Some(Gpr::Eax));
        assert_eq!(call.callee(), Some(FuncId(3)));
    }

    #[test]
    fn flags_classification() {
        assert!(Opcode::Cmp.writes_flags());
        assert!(!Opcode::Mov.writes_flags());
        assert!(Opcode::Sbb.reads_flags());
        assert!(Opcode::Cmov(Cond::E).reads_flags());
        assert!(!Opcode::Not.writes_flags());
    }
}
