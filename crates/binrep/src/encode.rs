//! Deterministic byte encoding of binaries (the "code section").
//!
//! NCD — the paper's fitness function — is computed over these bytes, so the
//! encoding is designed to reproduce the properties the paper relies on:
//!
//! * **Variable length** on x86 targets (short immediates encode smaller),
//!   so peephole/strength-reduction rewrites change byte counts.
//! * **Layout sensitivity**: fall-through edges elide their jump, so
//!   `-freorder-blocks` / `-freorder-functions` perturb the bytes.
//! * **Regularity**: `-O0` boilerplate (stack-slot traffic) produces highly
//!   repetitive byte patterns that compress well; optimized code does not.
//!
//! A decoder is provided for round-trip testing and for tools that want to
//! re-derive an instruction stream from raw bytes.

use crate::cfg::Terminator;
use crate::insn::{Cond, Insn, MemRef, Opcode, Operand};
use crate::program::{Arch, Binary, Function};
use crate::reg::{Gpr, Xmm};
use bytes::{BufMut, BytesMut};

/// Byte used for alignment padding (`nop`).
pub const PAD_BYTE: u8 = 0x90;

fn op_tag(op: Opcode) -> u8 {
    match op {
        Opcode::Mov => 0x10,
        Opcode::Lea => 0x11,
        Opcode::Add => 0x12,
        Opcode::Sub => 0x13,
        Opcode::Sbb => 0x14,
        Opcode::Adc => 0x15,
        Opcode::Imul => 0x16,
        Opcode::Udiv => 0x17,
        Opcode::Urem => 0x18,
        Opcode::Umulh => 0x19,
        Opcode::And => 0x1a,
        Opcode::Or => 0x1b,
        Opcode::Xor => 0x1c,
        Opcode::Not => 0x1d,
        Opcode::Neg => 0x1e,
        Opcode::Inc => 0x1f,
        Opcode::Dec => 0x20,
        Opcode::Shl => 0x21,
        Opcode::Shr => 0x22,
        Opcode::Sar => 0x23,
        Opcode::Cmp => 0x24,
        Opcode::Test => 0x25,
        Opcode::Set(_) => 0x26,
        Opcode::Cmov(_) => 0x27,
        Opcode::Push => 0x28,
        Opcode::Pop => 0x29,
        Opcode::Call => 0x2a,
        Opcode::CallImport => 0x2b,
        Opcode::Vload => 0x2c,
        Opcode::Vstore => 0x2d,
        Opcode::Vadd => 0x2e,
        Opcode::Vsub => 0x2f,
        Opcode::Vmul => 0x30,
        Opcode::Vhsum => 0x31,
        Opcode::Nop => PAD_BYTE,
    }
}

fn tag_op(tag: u8, cond: Option<Cond>) -> Option<Opcode> {
    Some(match tag {
        0x10 => Opcode::Mov,
        0x11 => Opcode::Lea,
        0x12 => Opcode::Add,
        0x13 => Opcode::Sub,
        0x14 => Opcode::Sbb,
        0x15 => Opcode::Adc,
        0x16 => Opcode::Imul,
        0x17 => Opcode::Udiv,
        0x18 => Opcode::Urem,
        0x19 => Opcode::Umulh,
        0x1a => Opcode::And,
        0x1b => Opcode::Or,
        0x1c => Opcode::Xor,
        0x1d => Opcode::Not,
        0x1e => Opcode::Neg,
        0x1f => Opcode::Inc,
        0x20 => Opcode::Dec,
        0x21 => Opcode::Shl,
        0x22 => Opcode::Shr,
        0x23 => Opcode::Sar,
        0x24 => Opcode::Cmp,
        0x25 => Opcode::Test,
        0x26 => Opcode::Set(cond?),
        0x27 => Opcode::Cmov(cond?),
        0x28 => Opcode::Push,
        0x29 => Opcode::Pop,
        0x2a => Opcode::Call,
        0x2b => Opcode::CallImport,
        0x2c => Opcode::Vload,
        0x2d => Opcode::Vstore,
        0x2e => Opcode::Vadd,
        0x2f => Opcode::Vsub,
        0x30 => Opcode::Vmul,
        0x31 => Opcode::Vhsum,
        PAD_BYTE => Opcode::Nop,
        _ => return None,
    })
}

// Terminator tags.
const T_JMP: u8 = 0xe0;
const T_BR: u8 = 0xe1;
const T_TABLE: u8 = 0xe2;
const T_LOOP: u8 = 0xe3;
const T_RET: u8 = 0xe4;
const T_TAILCALL: u8 = 0xe5;
// x86-64 extended-register prefix.
const PREFIX_EXT: u8 = 0x66;

// Operand kind tags.
const K_REG: u8 = 0x01;
const K_VEC: u8 = 0x02;
const K_IMM8: u8 = 0x03;
const K_IMM32: u8 = 0x04;
const K_MEM: u8 = 0x05;

fn put_operand(buf: &mut BytesMut, o: &Operand) {
    match o {
        Operand::Reg(r) => {
            buf.put_u8(K_REG);
            buf.put_u8(r.number());
        }
        Operand::Vec(x) => {
            buf.put_u8(K_VEC);
            buf.put_u8(x.0);
        }
        Operand::Imm(v) => {
            if let Ok(b) = i8::try_from(*v) {
                buf.put_u8(K_IMM8);
                buf.put_i8(b);
            } else {
                buf.put_u8(K_IMM32);
                buf.put_i32_le(*v as i32);
            }
        }
        Operand::Mem(m) => {
            buf.put_u8(K_MEM);
            let disp_size = if m.disp == 0 {
                0u8
            } else if i8::try_from(m.disp).is_ok() {
                1
            } else {
                2
            };
            let mut mode = disp_size;
            if m.base.is_some() {
                mode |= 0x80;
            }
            if m.index.is_some() {
                mode |= 0x40;
            }
            mode |= (m.scale.trailing_zeros() as u8 & 0x3) << 4;
            buf.put_u8(mode);
            if let Some(b) = m.base {
                buf.put_u8(b.number());
            }
            if let Some(i) = m.index {
                buf.put_u8(i.number());
            }
            match disp_size {
                1 => buf.put_i8(m.disp as i8),
                2 => buf.put_i32_le(m.disp),
                _ => {}
            }
        }
    }
}

fn uses_extended_reg(insn: &Insn) -> bool {
    let ext = |o: &Operand| match o {
        Operand::Reg(r) => r.is_extended(),
        Operand::Mem(m) => m.regs().any(|r| r.is_extended()),
        _ => false,
    };
    insn.a.as_ref().is_some_and(ext) || insn.b.as_ref().is_some_and(ext)
}

fn put_insn(buf: &mut BytesMut, insn: &Insn, arch: Arch) {
    let start = buf.len();
    if arch == Arch::X8664 && uses_extended_reg(insn) {
        buf.put_u8(PREFIX_EXT);
    }
    let tag = match arch {
        Arch::X86 | Arch::X8664 | Arch::Arm => op_tag(insn.op),
        Arch::Mips => op_tag(insn.op).wrapping_add(0x80),
    };
    buf.put_u8(tag);
    if let Opcode::Set(c) | Opcode::Cmov(c) = insn.op {
        buf.put_u8(c.number());
    }
    match arch {
        Arch::Mips => {
            // MIPS flavour: operands in reverse order.
            if let Some(b) = &insn.b {
                put_operand(buf, b);
            }
            if let Some(a) = &insn.a {
                put_operand(buf, a);
            }
        }
        _ => {
            if let Some(a) = &insn.a {
                put_operand(buf, a);
            }
            if let Some(b) = &insn.b {
                put_operand(buf, b);
            }
        }
    }
    pad_word(buf, start, arch);
}

/// RISC targets use fixed 4-byte instruction words: pad each item.
fn pad_word(buf: &mut BytesMut, start: usize, arch: Arch) {
    if matches!(arch, Arch::Arm | Arch::Mips) {
        while !(buf.len() - start).is_multiple_of(4) {
            buf.put_u8(0x00);
        }
    }
}

/// Encode one function into `buf`.
///
/// `layout_index` maps block ids to their position in layout order, used to
/// compute relative branch displacements and elide fall-through jumps.
pub fn encode_function(buf: &mut BytesMut, f: &Function, arch: Arch) {
    for _ in 0..f.align_pad {
        put_insn(buf, &Insn::op0(Opcode::Nop), arch);
    }
    let pos_of = |id: crate::insn::BlockId| -> i16 {
        f.cfg
            .blocks
            .iter()
            .position(|b| b.id == id)
            .map(|p| p as i16)
            .unwrap_or(0)
    };
    for (idx, block) in f.cfg.blocks.iter().enumerate() {
        for insn in &block.insns {
            put_insn(buf, insn, arch);
        }
        let next_is =
            |id: crate::insn::BlockId| f.cfg.blocks.get(idx + 1).map(|b| b.id) == Some(id);
        let rel = |id: crate::insn::BlockId| pos_of(id) - idx as i16;
        let start = buf.len();
        match &block.term {
            Terminator::Jmp(t) => {
                if !next_is(*t) {
                    buf.put_u8(T_JMP);
                    buf.put_i16_le(rel(*t));
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                // Prefer branching on the non-fallthrough side.
                if next_is(*then_bb) {
                    buf.put_u8(T_BR);
                    buf.put_u8(cond.negate().number());
                    buf.put_i16_le(rel(*else_bb));
                } else {
                    buf.put_u8(T_BR);
                    buf.put_u8(cond.number());
                    buf.put_i16_le(rel(*then_bb));
                    if !next_is(*else_bb) {
                        buf.put_u8(T_JMP);
                        buf.put_i16_le(rel(*else_bb));
                    }
                }
            }
            Terminator::JumpTable { index, targets } => {
                buf.put_u8(T_TABLE);
                buf.put_u8(index.number());
                buf.put_u16_le(targets.len() as u16);
                for t in targets {
                    buf.put_i16_le(rel(*t));
                }
            }
            Terminator::LoopBack { body, exit } => {
                buf.put_u8(T_LOOP);
                buf.put_i16_le(rel(*body));
                if !next_is(*exit) {
                    buf.put_u8(T_JMP);
                    buf.put_i16_le(rel(*exit));
                }
            }
            Terminator::Ret => buf.put_u8(T_RET),
            Terminator::TailCall(f) => {
                buf.put_u8(T_TAILCALL);
                buf.put_u16_le(f.0 as u16);
            }
        }
        pad_word(buf, start, arch);
    }
}

/// Encode the whole code section: all functions in layout order.
pub fn encode_binary(bin: &Binary) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(bin.insn_count() * 6 + 64);
    for f in &bin.functions {
        encode_function(&mut buf, f, bin.arch);
    }
    buf.to_vec()
}

/// A decoded code-stream item (see [`decode`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// An ordinary instruction.
    Insn(Insn),
    /// `jmp` with a block-relative displacement.
    Jmp(i16),
    /// Conditional branch.
    Branch(Cond, i16),
    /// Jump table (index register, displacement list).
    Table(Gpr, Vec<i16>),
    /// `loop` back-edge.
    LoopBack(i16),
    /// Return.
    Ret,
    /// Tail call to a function id.
    TailCall(u16),
}

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// Description of the malformed encoding.
    pub reason: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error at {:#x}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.err("unexpected end of code"),
        }
    }

    fn i16le(&mut self) -> Result<i16, DecodeError> {
        let lo = self.u8()?;
        let hi = self.u8()?;
        Ok(i16::from_le_bytes([lo, hi]))
    }

    fn i32le(&mut self) -> Result<i32, DecodeError> {
        let mut b = [0u8; 4];
        for x in &mut b {
            *x = self.u8()?;
        }
        Ok(i32::from_le_bytes(b))
    }

    fn operand(&mut self) -> Result<Operand, DecodeError> {
        let kind = self.u8()?;
        Ok(match kind {
            K_REG => {
                let n = self.u8()?;
                Operand::Reg(match Gpr::from_number(n) {
                    Some(r) => r,
                    None => return self.err(format!("bad register {n}")),
                })
            }
            K_VEC => {
                let n = self.u8()?;
                if n >= 8 {
                    return self.err(format!("bad xmm {n}"));
                }
                Operand::Vec(Xmm(n))
            }
            K_IMM8 => Operand::Imm(self.u8()? as i8 as i64),
            K_IMM32 => Operand::Imm(self.i32le()? as i64),
            K_MEM => {
                let mode = self.u8()?;
                let base = if mode & 0x80 != 0 {
                    Some(Gpr::from_number(self.u8()?).ok_or(DecodeError {
                        offset: self.pos,
                        reason: "bad base".into(),
                    })?)
                } else {
                    None
                };
                let index = if mode & 0x40 != 0 {
                    Some(Gpr::from_number(self.u8()?).ok_or(DecodeError {
                        offset: self.pos,
                        reason: "bad index".into(),
                    })?)
                } else {
                    None
                };
                let scale = 1u8 << ((mode >> 4) & 0x3);
                let disp = match mode & 0x3 {
                    0 => 0,
                    1 => self.u8()? as i8 as i32,
                    2 => self.i32le()?,
                    _ => return self.err("bad disp size"),
                };
                Operand::Mem(MemRef {
                    base,
                    index,
                    scale,
                    disp,
                })
            }
            other => return self.err(format!("bad operand kind {other:#x}")),
        })
    }
}

/// Decode a code section back into a stream of [`Item`]s.
///
/// # Errors
///
/// Returns [`DecodeError`] when the bytes are not a valid encoding for
/// `arch` (truncated stream, unknown opcode tag, malformed operand).
pub fn decode(bytes: &[u8], arch: Arch) -> Result<Vec<Item>, DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    let mut out = Vec::new();
    while r.pos < bytes.len() {
        let start = r.pos;
        let mut tag = r.u8()?;
        if arch == Arch::X8664 && tag == PREFIX_EXT {
            tag = r.u8()?;
        }
        let item = match tag {
            T_JMP => Item::Jmp(r.i16le()?),
            T_BR => {
                let c = r.u8()?;
                let cond = match Cond::from_number(c) {
                    Some(c) => c,
                    None => return r.err(format!("bad cond {c}")),
                };
                Item::Branch(cond, r.i16le()?)
            }
            T_TABLE => {
                let reg = match Gpr::from_number(r.u8()?) {
                    Some(g) => g,
                    None => return r.err("bad table index reg"),
                };
                let n = {
                    let lo = r.u8()?;
                    let hi = r.u8()?;
                    u16::from_le_bytes([lo, hi])
                };
                let mut targets = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    targets.push(r.i16le()?);
                }
                Item::Table(reg, targets)
            }
            T_LOOP => Item::LoopBack(r.i16le()?),
            T_RET => Item::Ret,
            T_TAILCALL => {
                let lo = r.u8()?;
                let hi = r.u8()?;
                Item::TailCall(u16::from_le_bytes([lo, hi]))
            }
            _ => {
                let raw = if arch == Arch::Mips {
                    tag.wrapping_sub(0x80)
                } else {
                    tag
                };
                if raw == PAD_BYTE {
                    let item = Item::Insn(Insn::op0(Opcode::Nop));
                    if matches!(arch, Arch::Arm | Arch::Mips) {
                        while !(r.pos - start).is_multiple_of(4) && r.pos < bytes.len() {
                            r.u8()?;
                        }
                    }
                    out.push(item);
                    continue;
                }
                // Set/Cmov carry a condition byte.
                let cond = if raw == 0x26 || raw == 0x27 {
                    let c = r.u8()?;
                    Some(match Cond::from_number(c) {
                        Some(c) => c,
                        None => return r.err(format!("bad cond {c}")),
                    })
                } else {
                    None
                };
                let op = match tag_op(raw, cond) {
                    Some(op) => op,
                    None => return r.err(format!("unknown opcode tag {tag:#x}")),
                };
                let mut a = None;
                let mut b = None;
                match op.arity() {
                    0 => {}
                    1 => a = Some(r.operand()?),
                    _ => {
                        if arch == Arch::Mips {
                            b = Some(r.operand()?);
                            a = Some(r.operand()?);
                        } else {
                            a = Some(r.operand()?);
                            b = Some(r.operand()?);
                        }
                    }
                }
                Item::Insn(Insn { op, a, b })
            }
        };
        if matches!(arch, Arch::Arm | Arch::Mips) {
            while !(r.pos - start).is_multiple_of(4) && r.pos < bytes.len() {
                r.u8()?;
            }
        }
        out.push(item);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Block, Terminator};
    use crate::insn::{BlockId, FuncId};
    use crate::program::Function;

    fn sample_insns() -> Vec<Insn> {
        vec![
            Insn::op2(Opcode::Mov, Gpr::Eax, 5i64),
            Insn::op2(Opcode::Add, Gpr::Eax, Gpr::Ebx),
            Insn::op2(Opcode::Mov, MemRef::base_disp(Gpr::Ebp, -8), Gpr::Eax),
            Insn::op2(
                Opcode::Lea,
                Gpr::Ecx,
                MemRef::indexed(Some(Gpr::Edx), Gpr::Esi, 4, 0x1234),
            ),
            Insn::op1(Opcode::Set(Cond::Ge), Gpr::Eax),
            Insn::op2(Opcode::Cmov(Cond::B), Gpr::Eax, Gpr::Edi),
            Insn::op2(Opcode::Vload, Xmm(1), MemRef::base_only(Gpr::Esi)),
            Insn::op2(Opcode::Vmul, Xmm(1), Xmm(2)),
            Insn::op1(Opcode::Push, Gpr::Ebp),
            Insn::call(FuncId(7)),
            Insn::op0(Opcode::Nop),
        ]
    }

    fn roundtrip(arch: Arch) {
        let mut f = Function::new(FuncId(0), "t", 0);
        let cfg = &mut f.cfg;
        cfg.block_mut(BlockId(0)).insns = sample_insns();
        let b1 = cfg.fresh_id();
        cfg.block_mut(BlockId(0)).term = Terminator::Branch {
            cond: Cond::L,
            then_bb: b1,
            else_bb: BlockId(0),
        };
        cfg.push(Block::new(b1, vec![], Terminator::Ret));
        let mut buf = BytesMut::new();
        encode_function(&mut buf, &f, arch);
        let items = decode(&buf, arch).unwrap();
        let insns: Vec<&Insn> = items
            .iter()
            .filter_map(|i| match i {
                Item::Insn(i) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(insns.len(), sample_insns().len());
        for (got, want) in insns.iter().zip(sample_insns().iter()) {
            assert_eq!(*got, want, "arch {arch:?}");
        }
        assert!(items.iter().any(|i| matches!(i, Item::Ret)));
        assert!(items.iter().any(|i| matches!(i, Item::Branch(..))));
    }

    #[test]
    fn round_trip_all_arches() {
        for arch in Arch::ALL {
            roundtrip(arch);
        }
    }

    #[test]
    fn fallthrough_jump_is_elided() {
        // bb0 -> jmp bb1 where bb1 is next in layout: no T_JMP byte emitted.
        let mut f = Function::new(FuncId(0), "t", 0);
        let b1 = f.cfg.fresh_id();
        f.cfg.block_mut(BlockId(0)).term = Terminator::Jmp(b1);
        f.cfg.push(Block::new(b1, vec![], Terminator::Ret));
        let mut buf = BytesMut::new();
        encode_function(&mut buf, &f, Arch::X86);
        assert_eq!(buf.to_vec(), vec![T_RET]);

        // Reorder the blocks: now the jump must materialize.
        f.cfg.blocks.swap(0, 1);
        let mut buf2 = BytesMut::new();
        encode_function(&mut buf2, &f, Arch::X86);
        assert!(buf2.len() > buf.len());
    }

    #[test]
    fn risc_encodings_are_word_aligned() {
        for arch in [Arch::Arm, Arch::Mips] {
            let mut f = Function::new(FuncId(0), "t", 0);
            f.cfg.block_mut(BlockId(0)).insns = sample_insns();
            let mut buf = BytesMut::new();
            encode_function(&mut buf, &f, arch);
            assert_eq!(buf.len() % 4, 0, "{arch:?}");
        }
    }

    #[test]
    fn arch_encodings_differ() {
        let mut f = Function::new(FuncId(0), "t", 0);
        f.cfg.block_mut(BlockId(0)).insns = sample_insns();
        let enc: Vec<Vec<u8>> = Arch::ALL
            .iter()
            .map(|&a| {
                let mut buf = BytesMut::new();
                let mut f = f.clone();
                f.cfg
                    .block_mut(BlockId(0))
                    .insns
                    .push(Insn::op2(Opcode::Add, Gpr::R8, Gpr::R9));
                encode_function(&mut buf, &f, a);
                buf.to_vec()
            })
            .collect();
        for i in 0..enc.len() {
            for j in i + 1..enc.len() {
                assert_ne!(enc[i], enc[j], "arch {i} vs {j}");
            }
        }
    }

    #[test]
    fn short_immediates_encode_smaller() {
        let small = Insn::op2(Opcode::Mov, Gpr::Eax, 5i64);
        let large = Insn::op2(Opcode::Mov, Gpr::Eax, 0x12345678i64);
        let mut b1 = BytesMut::new();
        let mut b2 = BytesMut::new();
        put_insn(&mut b1, &small, Arch::X86);
        put_insn(&mut b2, &large, Arch::X86);
        assert!(b1.len() < b2.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[0xff, 0x00], Arch::X86).is_err());
        assert!(decode(&[0x12], Arch::X86).is_err()); // truncated add
    }
}
