//! Descriptive statistics over binaries.
//!
//! These are the "scalable but less robust" numeric features §3.2 of the
//! paper talks about: opcode histograms, transfer-instruction counts, byte
//! n-grams. They feed the `difftools` feature-vector matchers and the AV
//! scanner.

use crate::insn::{Insn, Opcode};
use crate::program::{Binary, Function};
use std::collections::BTreeMap;

/// Per-function descriptive feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionFeatures {
    /// Number of basic blocks.
    pub blocks: usize,
    /// Number of CFG edges.
    pub edges: usize,
    /// Number of instructions.
    pub insns: usize,
    /// Number of call instructions (local + import).
    pub calls: usize,
    /// Number of conditional branches.
    pub branches: usize,
    /// Number of arithmetic instructions.
    pub arith: usize,
    /// Number of logic instructions.
    pub logic: usize,
    /// Number of data-movement instructions.
    pub moves: usize,
    /// Number of vector (SIMD) instructions.
    pub vector: usize,
    /// Number of distinct immediates.
    pub distinct_imms: usize,
    /// Number of memory-operand instructions.
    pub mem_ops: usize,
}

impl FunctionFeatures {
    /// Numeric vector form (fixed order), for cosine/Euclidean matchers.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.blocks as f64,
            self.edges as f64,
            self.insns as f64,
            self.calls as f64,
            self.branches as f64,
            self.arith as f64,
            self.logic as f64,
            self.moves as f64,
            self.vector as f64,
            self.distinct_imms as f64,
            self.mem_ops as f64,
        ]
    }

    /// Cosine similarity with another feature vector, in [0, 1].
    pub fn cosine(&self, other: &FunctionFeatures) -> f64 {
        let a = self.to_vec();
        let b = other.to_vec();
        let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return if na == nb { 1.0 } else { 0.0 };
        }
        dot / (na * nb)
    }
}

fn classify(i: &Insn) -> (bool, bool, bool, bool) {
    let arith = matches!(
        i.op,
        Opcode::Add
            | Opcode::Sub
            | Opcode::Sbb
            | Opcode::Adc
            | Opcode::Imul
            | Opcode::Udiv
            | Opcode::Urem
            | Opcode::Umulh
            | Opcode::Neg
            | Opcode::Inc
            | Opcode::Dec
    );
    let logic = matches!(
        i.op,
        Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Not
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::Sar
    );
    let mv = matches!(
        i.op,
        Opcode::Mov | Opcode::Lea | Opcode::Push | Opcode::Pop | Opcode::Set(_) | Opcode::Cmov(_)
    );
    let vec = matches!(
        i.op,
        Opcode::Vload | Opcode::Vstore | Opcode::Vadd | Opcode::Vsub | Opcode::Vmul | Opcode::Vhsum
    );
    (arith, logic, mv, vec)
}

/// Compute descriptive features for a function.
pub fn function_features(f: &Function) -> FunctionFeatures {
    let mut feats = FunctionFeatures {
        blocks: f.cfg.len(),
        edges: f.cfg.edges().len(),
        insns: 0,
        calls: 0,
        branches: 0,
        arith: 0,
        logic: 0,
        moves: 0,
        vector: 0,
        distinct_imms: 0,
        mem_ops: 0,
    };
    let mut imms = std::collections::BTreeSet::new();
    for b in &f.cfg.blocks {
        if matches!(
            b.term,
            crate::cfg::Terminator::Branch { .. } | crate::cfg::Terminator::LoopBack { .. }
        ) {
            feats.branches += 1;
        }
        for i in &b.insns {
            feats.insns += 1;
            if matches!(i.op, Opcode::Call | Opcode::CallImport) {
                feats.calls += 1;
            }
            let (a, l, m, v) = classify(i);
            feats.arith += a as usize;
            feats.logic += l as usize;
            feats.moves += m as usize;
            feats.vector += v as usize;
            if matches!(i.op, Opcode::Call | Opcode::CallImport) {
                // Call targets are code references, not data constants.
                continue;
            }
            for o in [&i.a, &i.b].into_iter().flatten() {
                match o {
                    crate::insn::Operand::Imm(v) => {
                        imms.insert(*v);
                    }
                    crate::insn::Operand::Mem(_) => feats.mem_ops += 1,
                    _ => {}
                }
            }
        }
    }
    feats.distinct_imms = imms.len();
    feats
}

/// Opcode histogram over the whole binary (mnemonic → count).
pub fn opcode_histogram(bin: &Binary) -> BTreeMap<String, usize> {
    let mut h = BTreeMap::new();
    for f in &bin.functions {
        for b in &f.cfg.blocks {
            for i in &b.insns {
                *h.entry(i.op.mnemonic()).or_insert(0) += 1;
            }
        }
    }
    h
}

/// Byte n-grams of the encoded code section (used by AV signatures and the
/// `Multi-MH`-style matcher).
pub fn byte_ngrams(code: &[u8], n: usize) -> Vec<&[u8]> {
    if code.len() < n || n == 0 {
        return Vec::new();
    }
    (0..=code.len() - n).map(|i| &code[i..i + n]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Terminator;
    use crate::insn::{BlockId, FuncId, Insn};
    use crate::program::Arch;
    use crate::reg::Gpr;

    fn f_with(insns: Vec<Insn>) -> Function {
        let mut f = Function::new(FuncId(0), "t", 0);
        f.cfg.block_mut(BlockId(0)).insns = insns;
        f
    }

    #[test]
    fn features_count_categories() {
        let f = f_with(vec![
            Insn::op2(Opcode::Add, Gpr::Eax, 1i64),
            Insn::op2(Opcode::Xor, Gpr::Eax, Gpr::Eax),
            Insn::op2(Opcode::Mov, Gpr::Ebx, 7i64),
            Insn::call(FuncId(0)),
        ]);
        let feats = function_features(&f);
        assert_eq!(feats.insns, 4);
        assert_eq!(feats.arith, 1);
        assert_eq!(feats.logic, 1);
        assert_eq!(feats.moves, 1);
        assert_eq!(feats.calls, 1);
        assert_eq!(feats.distinct_imms, 2);
    }

    #[test]
    fn cosine_is_one_for_identical() {
        let f = f_with(vec![Insn::op2(Opcode::Add, Gpr::Eax, 1i64)]);
        let feats = function_features(&f);
        assert!((feats.cosine(&feats) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branches_counted_from_terminators() {
        let mut f = f_with(vec![]);
        let b1 = f.cfg.fresh_id();
        f.cfg.block_mut(BlockId(0)).term = Terminator::Branch {
            cond: crate::insn::Cond::E,
            then_bb: b1,
            else_bb: b1,
        };
        f.cfg
            .push(crate::cfg::Block::new(b1, vec![], Terminator::Ret));
        assert_eq!(function_features(&f).branches, 1);
    }

    #[test]
    fn histogram_and_ngrams() {
        let mut bin = Binary::new("t", Arch::X86);
        bin.functions.push(f_with(vec![
            Insn::op2(Opcode::Add, Gpr::Eax, 1i64),
            Insn::op2(Opcode::Add, Gpr::Ebx, 2i64),
        ]));
        let h = opcode_histogram(&bin);
        assert_eq!(h["add"], 2);
        let code = crate::encode::encode_binary(&bin);
        let grams = byte_ngrams(&code, 4);
        assert_eq!(grams.len(), code.len() - 3);
        assert!(byte_ngrams(&code, 0).is_empty());
        assert!(byte_ngrams(&[1, 2], 4).is_empty());
    }
}
