//! Register file of the mini-ISA.
//!
//! The ISA is x86-flavoured: eight "classic" 32-bit general-purpose
//! registers, eight "extended" registers (only encodable on
//! [`Arch::X8664`](crate::Arch::X8664)), and eight 128-bit vector registers
//! used by the vectorization passes.

use serde::{Deserialize, Serialize};

/// A general-purpose 32-bit register.
///
/// `Esp` and `Ebp` are reserved by the ABI for the stack/frame pointer; the
/// register allocator never assigns them to values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Gpr {
    /// Accumulator.
    Eax,
    /// Counter (first argument).
    Ecx,
    /// Data (second argument).
    Edx,
    /// Base.
    Ebx,
    /// Stack pointer (ABI-reserved).
    Esp,
    /// Frame pointer (ABI-reserved).
    Ebp,
    /// Source index.
    Esi,
    /// Destination index.
    Edi,
    /// Extended register 8.
    R8,
    /// Extended register 9.
    R9,
    /// Extended register 10.
    R10,
    /// Extended register 11.
    R11,
    /// Extended register 12.
    R12,
    /// Extended register 13.
    R13,
    /// Extended register 14.
    R14,
    /// Extended register 15.
    R15,
}

impl Gpr {
    /// All sixteen general-purpose registers in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Eax,
        Gpr::Ecx,
        Gpr::Edx,
        Gpr::Ebx,
        Gpr::Esp,
        Gpr::Ebp,
        Gpr::Esi,
        Gpr::Edi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// Registers the register allocator may assign (everything except the
    /// stack and frame pointers).
    pub const ALLOCATABLE: [Gpr; 6] = [Gpr::Eax, Gpr::Ecx, Gpr::Edx, Gpr::Ebx, Gpr::Esi, Gpr::Edi];

    /// Extra allocatable registers available on 64-bit targets.
    pub const ALLOCATABLE_EXT: [Gpr; 8] = [
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// Encoding number, 0..16.
    pub fn number(self) -> u8 {
        Self::ALL.iter().position(|&r| r == self).unwrap() as u8
    }

    /// Inverse of [`Gpr::number`]. Returns `None` for numbers >= 16.
    pub fn from_number(n: u8) -> Option<Gpr> {
        Self::ALL.get(n as usize).copied()
    }

    /// Whether this register is one of the extended (`R8`..`R15`) set that
    /// only exists on 64-bit targets.
    pub fn is_extended(self) -> bool {
        self.number() >= 8
    }

    /// Short assembly-style name, e.g. `"eax"`.
    pub fn name(self) -> &'static str {
        match self {
            Gpr::Eax => "eax",
            Gpr::Ecx => "ecx",
            Gpr::Edx => "edx",
            Gpr::Ebx => "ebx",
            Gpr::Esp => "esp",
            Gpr::Ebp => "ebp",
            Gpr::Esi => "esi",
            Gpr::Edi => "edi",
            Gpr::R8 => "r8d",
            Gpr::R9 => "r9d",
            Gpr::R10 => "r10d",
            Gpr::R11 => "r11d",
            Gpr::R12 => "r12d",
            Gpr::R13 => "r13d",
            Gpr::R14 => "r14d",
            Gpr::R15 => "r15d",
        }
    }
}

impl std::fmt::Display for Gpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A 128-bit vector register (`xmm0`..`xmm7`).
///
/// Vector lanes are four 32-bit integers; the vectorizer packs four scalar
/// loop iterations into one vector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Xmm(pub u8);

impl Xmm {
    /// All eight vector registers.
    pub const ALL: [Xmm; 8] = [
        Xmm(0),
        Xmm(1),
        Xmm(2),
        Xmm(3),
        Xmm(4),
        Xmm(5),
        Xmm(6),
        Xmm(7),
    ];
}

impl std::fmt::Display for Xmm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_round_trip() {
        for r in Gpr::ALL {
            assert_eq!(Gpr::from_number(r.number()), Some(r));
        }
        assert_eq!(Gpr::from_number(16), None);
    }

    #[test]
    fn extended_split() {
        assert!(!Gpr::Eax.is_extended());
        assert!(Gpr::R8.is_extended());
        assert_eq!(Gpr::ALL.iter().filter(|r| r.is_extended()).count(), 8);
    }

    #[test]
    fn allocatable_excludes_stack_regs() {
        assert!(!Gpr::ALLOCATABLE.contains(&Gpr::Esp));
        assert!(!Gpr::ALLOCATABLE.contains(&Gpr::Ebp));
    }

    #[test]
    fn display_names() {
        assert_eq!(Gpr::Eax.to_string(), "eax");
        assert_eq!(Gpr::R15.to_string(), "r15d");
        assert_eq!(Xmm(3).to_string(), "xmm3");
    }
}
