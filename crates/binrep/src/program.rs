//! Whole-binary representation: functions, data section, imports, symbols.

use crate::cfg::Cfg;
use crate::insn::{FuncId, ImportId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Base virtual address of the data section.
pub const DATA_BASE: i64 = 0x1000_0000;
/// Base virtual address of the emulated heap.
pub const HEAP_BASE: i64 = 0x2000_0000;
/// Initial stack pointer of the emulator.
pub const STACK_TOP: i64 = 0x7fff_0000;

/// Target architecture — selects the byte encoder.
///
/// The four targets mirror the paper's Table 2 (x86-32, x86-64, ARM, MIPS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// 32-bit x86-like variable-length encoding.
    X86,
    /// 64-bit variant (adds a prefix byte for extended registers).
    X8664,
    /// Fixed 4-byte word RISC encoding.
    Arm,
    /// Fixed 4-byte word RISC encoding with different field layout.
    Mips,
}

impl Arch {
    /// All supported architectures.
    pub const ALL: [Arch; 4] = [Arch::X86, Arch::X8664, Arch::Arm, Arch::Mips];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Arch::X86 => "x86-32",
            Arch::X8664 => "x86-64",
            Arch::Arm => "ARM",
            Arch::Mips => "MIPS",
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A function in a binary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Stable id used by `call` instructions.
    pub id: FuncId,
    /// Symbol name. Ground-truth matching across optimization settings keys
    /// on this name, mirroring how the paper's Precision@1 experiments use
    /// debug symbols for ground truth.
    pub name: String,
    /// Number of parameters (passed in `ecx`, `edx`, `esi`, `edi`).
    pub params: usize,
    /// Body.
    pub cfg: Cfg,
    /// Whether this function came from a (statically linked) library rather
    /// than the program itself. BinHunt's metrics separate the two.
    pub is_library: bool,
    /// Alignment padding (bytes of `nop`) inserted before the function when
    /// `-falign-functions` is active.
    pub align_pad: u8,
}

impl Function {
    /// A function with an empty body.
    pub fn new(id: FuncId, name: impl Into<String>, params: usize) -> Function {
        Function {
            id,
            name: name.into(),
            params,
            cfg: Cfg::new(),
            is_library: false,
            align_pad: 0,
        }
    }
}

/// Named import table entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Import {
    /// Id referenced by `call@import` instructions.
    pub id: ImportId,
    /// Name, e.g. `"strcpy"`.
    pub name: String,
}

/// A whole binary: functions in layout order plus data and imports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binary {
    /// Binary name (benchmark name, e.g. `"462.libquantum"`).
    pub name: String,
    /// Target architecture.
    pub arch: Arch,
    /// Functions in **layout order** (the order they are encoded).
    pub functions: Vec<Function>,
    /// Entry function id (`main`).
    pub entry: FuncId,
    /// Raw data section contents (32-bit words, little-endian semantics).
    pub data: Vec<u32>,
    /// Import table.
    pub imports: Vec<Import>,
}

impl Binary {
    /// An empty binary for the given architecture.
    pub fn new(name: impl Into<String>, arch: Arch) -> Binary {
        Binary {
            name: name.into(),
            arch,
            functions: Vec::new(),
            entry: FuncId(0),
            data: Vec::new(),
            imports: Vec::new(),
        }
    }

    /// Look up a function by id.
    pub fn function(&self, id: FuncId) -> &Function {
        self.functions
            .iter()
            .find(|f| f.id == id)
            .unwrap_or_else(|| panic!("no function {id}"))
    }

    /// Mutable access to a function by id.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        self.functions
            .iter_mut()
            .find(|f| f.id == id)
            .unwrap_or_else(|| panic!("no function {id}"))
    }

    /// Whether a function with this id exists.
    pub fn contains_function(&self, id: FuncId) -> bool {
        self.functions.iter().any(|f| f.id == id)
    }

    /// Look up a function by symbol name.
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Intern a word of constant data, returning its byte address.
    ///
    /// With `dedup` (the `-fmerge-all-constants` behaviour) identical words
    /// share storage.
    pub fn add_data_word(&mut self, word: u32, dedup: bool) -> i64 {
        if dedup {
            if let Some(pos) = self.data.iter().position(|&w| w == word) {
                return DATA_BASE + (pos as i64) * 4;
            }
        }
        self.data.push(word);
        DATA_BASE + (self.data.len() as i64 - 1) * 4
    }

    /// Intern a string (NUL-terminated, packed into words), returning its
    /// byte address.
    pub fn add_string(&mut self, s: &str) -> i64 {
        let mut bytes: Vec<u8> = s.bytes().collect();
        bytes.push(0);
        while !bytes.len().is_multiple_of(4) {
            bytes.push(0);
        }
        let addr = DATA_BASE + (self.data.len() as i64) * 4;
        for chunk in bytes.chunks(4) {
            self.data
                .push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        addr
    }

    /// Register an import by name, returning its id (idempotent).
    pub fn import_by_name(&mut self, name: &str) -> ImportId {
        if let Some(i) = self.imports.iter().find(|i| i.name == name) {
            return i.id;
        }
        let id = ImportId(self.imports.len() as u16);
        self.imports.push(Import {
            id,
            name: name.to_string(),
        });
        id
    }

    /// Name of an import id.
    pub fn import_name(&self, id: ImportId) -> &str {
        &self
            .imports
            .iter()
            .find(|i| i.id == id)
            .unwrap_or_else(|| panic!("no import {}", id.0))
            .name
    }

    /// The static call graph: caller id → callee ids (deduplicated, sorted).
    pub fn call_graph(&self) -> BTreeMap<FuncId, Vec<FuncId>> {
        let mut cg: BTreeMap<FuncId, Vec<FuncId>> = BTreeMap::new();
        for f in &self.functions {
            let mut callees: Vec<FuncId> = f
                .cfg
                .blocks
                .iter()
                .flat_map(|b| b.insns.iter())
                .filter_map(|i| i.callee())
                .collect();
            callees.sort();
            callees.dedup();
            cg.insert(f.id, callees);
        }
        cg
    }

    /// Set of import names referenced anywhere in the code (used by the AV
    /// scanner's API-signature matching).
    pub fn referenced_imports(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .functions
            .iter()
            .flat_map(|f| f.cfg.blocks.iter())
            .flat_map(|b| b.insns.iter())
            .filter_map(|i| i.import())
            .map(|id| self.import_name(id).to_string())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Total instruction count across all functions.
    pub fn insn_count(&self) -> usize {
        self.functions.iter().map(|f| f.cfg.insn_count()).sum()
    }

    /// Total basic-block count.
    pub fn block_count(&self) -> usize {
        self.functions.iter().map(|f| f.cfg.len()).sum()
    }

    /// Validate all function CFGs and cross-function references.
    pub fn validate(&self) -> Result<(), String> {
        if !self.contains_function(self.entry) {
            return Err(format!("entry {} missing", self.entry));
        }
        let mut seen = std::collections::BTreeSet::new();
        for f in &self.functions {
            if !seen.insert(f.id) {
                return Err(format!("duplicate function id {}", f.id));
            }
            f.cfg
                .validate()
                .map_err(|e| format!("{} ({}): {e}", f.name, f.id))?;
            for b in &f.cfg.blocks {
                if let crate::cfg::Terminator::TailCall(t) = &b.term {
                    if !self.contains_function(*t) {
                        return Err(format!("{}: tail call to missing {}", f.name, t));
                    }
                }
                for i in &b.insns {
                    if let Some(callee) = i.callee() {
                        if !self.contains_function(callee) {
                            return Err(format!("{}: call to missing {}", f.name, callee));
                        }
                    }
                    if let Some(imp) = i.import() {
                        if (imp.0 as usize) >= self.imports.len() {
                            return Err(format!("{}: missing import {}", f.name, imp.0));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;

    #[test]
    fn data_interning_dedups_when_asked() {
        let mut b = Binary::new("t", Arch::X86);
        let a1 = b.add_data_word(42, true);
        let a2 = b.add_data_word(42, true);
        let a3 = b.add_data_word(42, false);
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
        assert_eq!(b.data.len(), 2);
    }

    #[test]
    fn strings_are_nul_terminated_and_word_padded() {
        let mut b = Binary::new("t", Arch::X86);
        let addr = b.add_string("Hello World!");
        assert_eq!(addr, DATA_BASE);
        // 12 chars + NUL, padded to 16 bytes = 4 words.
        assert_eq!(b.data.len(), 4);
        assert_eq!(b.data[0], u32::from_le_bytes(*b"Hell"));
    }

    #[test]
    fn imports_are_idempotent() {
        let mut b = Binary::new("t", Arch::X86);
        let a = b.import_by_name("strcpy");
        let a2 = b.import_by_name("strcpy");
        let c = b.import_by_name("socket");
        assert_eq!(a, a2);
        assert_ne!(a, c);
        assert_eq!(b.import_name(c), "socket");
    }

    #[test]
    fn call_graph_and_validation() {
        let mut b = Binary::new("t", Arch::X86);
        let mut f0 = Function::new(FuncId(0), "main", 0);
        f0.cfg
            .block_mut(crate::insn::BlockId(0))
            .insns
            .push(Insn::call(FuncId(1)));
        b.functions.push(f0);
        b.functions.push(Function::new(FuncId(1), "helper", 1));
        b.entry = FuncId(0);
        b.validate().unwrap();
        let cg = b.call_graph();
        assert_eq!(cg[&FuncId(0)], vec![FuncId(1)]);
        assert!(cg[&FuncId(1)].is_empty());

        // Dangling call must be rejected.
        b.function_mut(FuncId(1))
            .cfg
            .block_mut(crate::insn::BlockId(0))
            .insns
            .push(Insn::call(FuncId(9)));
        assert!(b.validate().is_err());
    }
}
