//! Stable canonical hashing for persistent cache keys.
//!
//! The persistent fitness store (paper Figure 4's server-side database,
//! "stored for future exploration") keys results by
//! `(module content hash, compiler profile, arch, effect config)`. Those
//! keys must survive process restarts, so they cannot use
//! [`std::collections::hash_map::DefaultHasher`] (SipHash with
//! implementation-defined keys) or `#[derive(Hash)]` (layout follows the
//! standard library's unstable protocol). This module provides
//! [`StableHasher`] — FNV-1a over an explicit, versioned canonical byte
//! encoding — plus the two canonical encodings the cache needs:
//! [`Module::content_hash`] and [`EffectConfig::stable_digest`].
//!
//! Changing any canonical encoding is a cache-format change: bump
//! the store's format version (see `bintuner::store`) so stale files are
//! discarded as a clean cold start instead of being misinterpreted.

use crate::ast::{BinOp, Expr, LValue, Module, Stmt};
use crate::flags::EffectConfig;

/// Stable one-byte tag for a binary operator — part of the canonical
/// encoding, so the assignments must never be reordered or reused (a
/// declaration-order `as u8` would silently re-key the cache if the
/// enum ever changed shape). Exhaustive: adding a `BinOp` variant
/// without assigning it a tag here is a compile error.
fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        BinOp::Eq => 10,
        BinOp::Ne => 11,
        BinOp::Lt => 12,
        BinOp::Le => 13,
        BinOp::Gt => 14,
        BinOp::Ge => 15,
    }
}

/// FNV-1a 32-bit over a byte slice — the checksum primitive shared by
/// the fitness store's on-disk records (`bintuner::store`) and the
/// evaluation service's wire frames (`evald::wire`). One
/// implementation, so the two formats cannot silently diverge; like
/// [`StableHasher`], the output is a pure function of the bytes and
/// stable across processes and platforms.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut state: u32 = 0x811c_9dc5;
    for &b in bytes {
        state ^= u32::from(b);
        state = state.wrapping_mul(0x0100_0193);
    }
    state
}

/// FNV-1a 64-bit hasher with explicit write methods.
///
/// Unlike [`std::hash::Hasher`] implementations, the output is a pure
/// function of the byte stream and is stable across processes, platforms,
/// and Rust versions — the property a disk cache key needs. Multi-byte
/// integers are fed little-endian; variable-length data must be
/// length-prefixed by the caller ([`StableHasher::write_str`] does this)
/// so adjacent fields cannot alias.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher with the standard FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher {
            state: Self::OFFSET,
        }
    }

    /// A hasher whose stream starts with `seed` — used to derive several
    /// independent digests from the same canonical encoding.
    pub fn with_seed(seed: u64) -> StableHasher {
        let mut h = StableHasher::new();
        h.write_u64(seed);
        h
    }

    /// Feed raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Feed one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feed a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Feed a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feed a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feed a `usize` widened to `u64` (so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feed a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

fn hash_expr(h: &mut StableHasher, e: &Expr) {
    match e {
        Expr::Const(c) => {
            h.write_u8(0);
            h.write_u32(*c);
        }
        Expr::Var(v) => {
            h.write_u8(1);
            h.write_str(v);
        }
        Expr::Global(g) => {
            h.write_u8(2);
            h.write_str(g);
        }
        Expr::Index(arr, i) => {
            h.write_u8(3);
            h.write_str(arr);
            hash_expr(h, i);
        }
        Expr::Bin(op, a, b) => {
            h.write_u8(4);
            h.write_u8(binop_tag(*op));
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Not(a) => {
            h.write_u8(5);
            hash_expr(h, a);
        }
        Expr::Neg(a) => {
            h.write_u8(6);
            hash_expr(h, a);
        }
        Expr::Call(f, args) => {
            h.write_u8(7);
            h.write_str(f);
            h.write_usize(args.len());
            args.iter().for_each(|a| hash_expr(h, a));
        }
        Expr::CallImport(f, args) => {
            h.write_u8(8);
            h.write_str(f);
            h.write_usize(args.len());
            args.iter().for_each(|a| hash_expr(h, a));
        }
        Expr::Str(s) => {
            h.write_u8(9);
            h.write_str(s);
        }
        Expr::AddrOf(a) => {
            h.write_u8(10);
            h.write_str(a);
        }
    }
}

fn hash_lvalue(h: &mut StableHasher, lv: &LValue) {
    match lv {
        LValue::Var(v) => {
            h.write_u8(0);
            h.write_str(v);
        }
        LValue::Global(g) => {
            h.write_u8(1);
            h.write_str(g);
        }
        LValue::Index(arr, i) => {
            h.write_u8(2);
            h.write_str(arr);
            hash_expr(h, i);
        }
    }
}

fn hash_body(h: &mut StableHasher, body: &[Stmt]) {
    h.write_usize(body.len());
    body.iter().for_each(|s| hash_stmt(h, s));
}

fn hash_stmt(h: &mut StableHasher, s: &Stmt) {
    match s {
        Stmt::Assign(lv, e) => {
            h.write_u8(0);
            hash_lvalue(h, lv);
            hash_expr(h, e);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            h.write_u8(1);
            hash_expr(h, cond);
            hash_body(h, then_body);
            hash_body(h, else_body);
        }
        Stmt::While { cond, body } => {
            h.write_u8(2);
            hash_expr(h, cond);
            hash_body(h, body);
        }
        Stmt::For {
            var,
            start,
            end,
            step,
            body,
        } => {
            h.write_u8(3);
            h.write_str(var);
            hash_expr(h, start);
            hash_expr(h, end);
            h.write_u32(*step);
            hash_body(h, body);
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            h.write_u8(4);
            hash_expr(h, scrutinee);
            h.write_usize(cases.len());
            for (value, body) in cases {
                h.write_u32(*value);
                hash_body(h, body);
            }
            hash_body(h, default);
        }
        Stmt::Return(e) => {
            h.write_u8(5);
            hash_expr(h, e);
        }
        Stmt::ExprStmt(e) => {
            h.write_u8(6);
            hash_expr(h, e);
        }
    }
}

impl Module {
    /// Stable 64-bit content hash of the whole translation unit.
    ///
    /// Two structurally identical modules hash identically across
    /// processes and platforms; any change to a name, constant, statement
    /// or declaration changes the hash. The module *name* is included:
    /// it reaches the emitted [`binrep::Binary`], so two same-bodied
    /// modules with different names are distinct compilation inputs.
    pub fn content_hash(&self) -> u64 {
        let mut h = StableHasher::with_seed(0x4d4f_4455_4c45); // "MODULE"
        h.write_str(&self.name);
        self.hash_decls(&mut h);
        h.finish()
    }

    /// Stable 64-bit hash of everything *except* the module name.
    ///
    /// Optimization stages are a pure function of the declarations plus
    /// the effect config — the name only flows through to the emitted
    /// binary's label. Keying persisted stage artifacts by the body hash
    /// lets a renamed-but-otherwise-identical module (a re-tune of
    /// "the same code under a new version label") warm-start from the
    /// previous run's artifacts even though its [`Module::content_hash`]
    /// — and therefore every fitness-store key — is new.
    pub fn body_hash(&self) -> u64 {
        let mut h = StableHasher::with_seed(0x004d_424f_4459); // "MBODY"
        self.hash_decls(&mut h);
        h.finish()
    }

    /// Canonical encoding of the declarations (globals + functions),
    /// shared by [`Module::content_hash`] and [`Module::body_hash`].
    fn hash_decls(&self, h: &mut StableHasher) {
        h.write_usize(self.globals.len());
        for g in &self.globals {
            h.write_str(&g.name);
            h.write_usize(g.words.len());
            g.words.iter().for_each(|&w| h.write_u32(w));
        }
        h.write_usize(self.funcs.len());
        for f in &self.funcs {
            h.write_str(&f.name);
            h.write_usize(f.params.len());
            f.params.iter().for_each(|p| h.write_str(p));
            h.write_usize(f.locals.len());
            for l in &f.locals {
                h.write_str(&l.name);
                match l.array {
                    None => h.write_u8(0),
                    Some(n) => {
                        h.write_u8(1);
                        h.write_usize(n);
                    }
                }
            }
            h.write_bool(f.is_library);
            hash_body(h, &f.body);
        }
    }
}

impl EffectConfig {
    /// Stable 128-bit digest of the resolved optimization configuration.
    ///
    /// The emitted binary is a pure function of
    /// `(module, effect config, arch)`, so this digest — not the raw flag
    /// vector — is the right cache key for persisted fitness results:
    /// distinct flag vectors resolving to the same effects share one
    /// entry. 128 bits (two independently seeded FNV-1a streams over the
    /// same canonical encoding) keep accidental collisions negligible at
    /// database scale.
    pub fn stable_digest(&self) -> u128 {
        let lo = self.digest_half(0x4546_4643); // "EFFC"
        let hi = self.digest_half(0x9e37_79b9_7f4a_7c15);
        (u128::from(hi) << 64) | u128::from(lo)
    }

    fn digest_half(&self, seed: u64) -> u64 {
        // Exhaustive destructuring: adding a field to EffectConfig without
        // feeding it here is a compile error, so the digest can never
        // silently ignore a new optimization dimension.
        let EffectConfig {
            regalloc,
            const_fold,
            cse,
            inline_threshold,
            partial_inline,
            tail_calls,
            unroll_factor,
            peel,
            unswitch,
            unroll_and_jam,
            vectorize_loops,
            vectorize_slp,
            jump_tables,
            if_convert,
            if_convert2,
            branch_count_reg,
            peephole,
            strength_reduce,
            reorder_blocks,
            reorder_partition,
            reorder_functions,
            align_loops,
            align_functions,
            merge_constants,
            merge_all_constants,
            merge_blocks,
            builtin_expand,
            licm,
            loop_distribute,
            style_bits,
        } = self;
        let mut h = StableHasher::with_seed(seed);
        h.write_bool(*regalloc);
        h.write_bool(*const_fold);
        h.write_bool(*cse);
        h.write_usize(*inline_threshold);
        h.write_bool(*partial_inline);
        h.write_bool(*tail_calls);
        h.write_usize(*unroll_factor);
        h.write_bool(*peel);
        h.write_bool(*unswitch);
        h.write_bool(*unroll_and_jam);
        h.write_bool(*vectorize_loops);
        h.write_bool(*vectorize_slp);
        h.write_bool(*jump_tables);
        h.write_bool(*if_convert);
        h.write_bool(*if_convert2);
        h.write_bool(*branch_count_reg);
        h.write_bool(*peephole);
        h.write_bool(*strength_reduce);
        h.write_bool(*reorder_blocks);
        h.write_bool(*reorder_partition);
        h.write_bool(*reorder_functions);
        h.write_u8(*align_loops);
        h.write_u8(*align_functions);
        h.write_bool(*merge_constants);
        h.write_bool(*merge_all_constants);
        h.write_bool(*merge_blocks);
        h.write_bool(*builtin_expand);
        h.write_bool(*licm);
        h.write_bool(*loop_distribute);
        h.write_u64(*style_bits);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, FuncDef};
    use crate::flags::{CompilerKind, CompilerProfile, OptLevel};

    fn sample_module() -> Module {
        let mut m = Module::new("hash_sample");
        m.funcs.push(FuncDef::new(
            "main",
            vec!["x".into()],
            vec![Stmt::Return(Expr::vc(BinOp::Add, "x", 41))],
        ));
        m
    }

    #[test]
    fn known_vector() {
        // FNV-1a 64 of "a" must match the published test vector; this
        // pins the primitive so the on-disk key space can never silently
        // change hash functions.
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        // Same for the 32-bit checksum primitive (store records + wire
        // frames both depend on it).
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
    }

    #[test]
    fn module_hash_is_deterministic_and_content_sensitive() {
        let m = sample_module();
        assert_eq!(m.content_hash(), sample_module().content_hash());

        let mut renamed = sample_module();
        renamed.name = "other".into();
        assert_ne!(m.content_hash(), renamed.content_hash());

        let mut edited = sample_module();
        edited.funcs[0].body = vec![Stmt::Return(Expr::vc(BinOp::Add, "x", 42))];
        assert_ne!(m.content_hash(), edited.content_hash());
    }

    #[test]
    fn body_hash_ignores_the_name_and_nothing_else() {
        let m = sample_module();
        assert_eq!(m.body_hash(), sample_module().body_hash());

        // A rename moves the content hash but not the body hash — the
        // property artifact warm-start of a relabeled module rests on.
        let mut renamed = sample_module();
        renamed.name = "other".into();
        assert_ne!(m.content_hash(), renamed.content_hash());
        assert_eq!(m.body_hash(), renamed.body_hash());

        // Any actual body edit moves both.
        let mut edited = sample_module();
        edited.funcs[0].body = vec![Stmt::Return(Expr::vc(BinOp::Add, "x", 42))];
        assert_ne!(m.body_hash(), edited.body_hash());
    }

    #[test]
    fn length_prefixing_prevents_field_aliasing() {
        // Same concatenated text split differently across adjacent
        // strings must not collide.
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn effect_digest_tracks_effects_not_flag_spelling() {
        let p = CompilerProfile::new(CompilerKind::Gcc);
        let o2 = EffectConfig::from_flags(&p, &p.preset(OptLevel::O2));
        assert_eq!(o2.stable_digest(), o2.clone().stable_digest());
        let o3 = EffectConfig::from_flags(&p, &p.preset(OptLevel::O3));
        assert_ne!(o2.stable_digest(), o3.stable_digest());

        // Two *different* flag vectors resolving to the same effects must
        // digest identically — that is what lets persisted entries be
        // shared across flag spellings. O3 enables -ftree-vectorize (the
        // alias for both vectorizers) alongside the two individual
        // vectorizer flags, so dropping the alias leaves the effect
        // config unchanged.
        let o3_flags = p.preset(OptLevel::O3);
        let mut without_alias = o3_flags.clone();
        let i = p.flag_index("-ftree-vectorize").unwrap();
        assert!(without_alias[i]);
        without_alias[i] = false;
        assert_ne!(o3_flags, without_alias);
        assert_eq!(
            EffectConfig::from_flags(&p, &without_alias).stable_digest(),
            o3.stable_digest()
        );
    }
}
