//! Stage-projected views of an [`EffectConfig`] — the keys that make
//! compilation artifacts shareable across candidates.
//!
//! The compile pipeline has three stages (see [`crate::Compiler`]):
//!
//! 1. **AST optimization** ([`crate::astopt`]) — reads only the
//!    source-level pass knobs (folding, inlining, loop transforms).
//! 2. **Lowering** ([`crate::codegen`]) — reads only the codegen knobs
//!    (register allocation, if-conversion, switch/vector lowering,
//!    style bits).
//! 3. **Machine-level optimization** ([`crate::mir_opt`]) — reads only
//!    the post-codegen knobs (peephole, layout, tail calls).
//!
//! Each stage's output is therefore a pure function of its *projection*
//! of the effect config (plus its input artifact and, for lowering, the
//! target arch). Two flag vectors that differ only in late-stage fields
//! share every earlier artifact — which is most mutations: the paper's
//! Figure 7 ablation shows the bulk of flags barely move the binary, so
//! a GA generation is dominated by near-duplicate configurations whose
//! early stages are identical.
//!
//! [`StageKeys::project`] builds all three projections in a single
//! **exhaustive destructuring** of `EffectConfig` (the
//! [`EffectConfig::stable_digest`] pattern from [`crate::hash`]): adding
//! a field to `EffectConfig` without routing it to at least one stage
//! key is a compile error, so a new optimization dimension can never
//! silently escape the artifact-cache keys and serve a stale artifact.
//! A field read by more than one stage (today: `cse`, consumed by both
//! the AST CSE pass and codegen's slot-reuse heuristic) appears in every
//! key that reads it.
//!
//! The digests follow the same two-seed FNV-1a construction as
//! [`EffectConfig::stable_digest`], with per-stage seeds so the three
//! key spaces are independent. They are in-memory cache keys only —
//! nothing here is persisted, so reshaping a projection is not a disk
//! format change (the staged-vs-monolithic differential suite is the
//! guard instead).

use crate::flags::EffectConfig;
use crate::hash::StableHasher;

/// Projection of an [`EffectConfig`] onto the fields the AST
/// optimization stage ([`crate::astopt::optimize`]) reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AstStageKey {
    /// See [`EffectConfig::const_fold`].
    pub const_fold: bool,
    /// See [`EffectConfig::cse`] (drives dead-assign elimination after
    /// constant propagation).
    pub cse: bool,
    /// See [`EffectConfig::inline_threshold`].
    pub inline_threshold: usize,
    /// See [`EffectConfig::partial_inline`].
    pub partial_inline: bool,
    /// See [`EffectConfig::unroll_factor`].
    pub unroll_factor: usize,
    /// See [`EffectConfig::peel`].
    pub peel: bool,
    /// See [`EffectConfig::unswitch`].
    pub unswitch: bool,
    /// See [`EffectConfig::unroll_and_jam`].
    pub unroll_and_jam: bool,
    /// See [`EffectConfig::licm`].
    pub licm: bool,
    /// See [`EffectConfig::loop_distribute`].
    pub loop_distribute: bool,
}

/// Projection of an [`EffectConfig`] onto the fields the lowering stage
/// ([`crate::codegen::lower_module`]) reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LowerStageKey {
    /// See [`EffectConfig::regalloc`].
    pub regalloc: bool,
    /// See [`EffectConfig::cse`] (slot/global reuse during lowering).
    pub cse: bool,
    /// See [`EffectConfig::vectorize_loops`].
    pub vectorize_loops: bool,
    /// See [`EffectConfig::vectorize_slp`].
    pub vectorize_slp: bool,
    /// See [`EffectConfig::jump_tables`].
    pub jump_tables: bool,
    /// See [`EffectConfig::if_convert`].
    pub if_convert: bool,
    /// See [`EffectConfig::if_convert2`].
    pub if_convert2: bool,
    /// See [`EffectConfig::branch_count_reg`].
    pub branch_count_reg: bool,
    /// See [`EffectConfig::align_loops`].
    pub align_loops: u8,
    /// See [`EffectConfig::merge_constants`].
    pub merge_constants: bool,
    /// See [`EffectConfig::merge_all_constants`].
    pub merge_all_constants: bool,
    /// See [`EffectConfig::builtin_expand`].
    pub builtin_expand: bool,
    /// See [`EffectConfig::style_bits`].
    pub style_bits: u64,
}

/// Projection of an [`EffectConfig`] onto the fields the machine-level
/// optimization stage ([`crate::mir_opt::optimize`]) reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MirStageKey {
    /// See [`EffectConfig::tail_calls`].
    pub tail_calls: bool,
    /// See [`EffectConfig::peephole`].
    pub peephole: bool,
    /// See [`EffectConfig::strength_reduce`].
    pub strength_reduce: bool,
    /// See [`EffectConfig::reorder_blocks`].
    pub reorder_blocks: bool,
    /// See [`EffectConfig::reorder_partition`].
    pub reorder_partition: bool,
    /// See [`EffectConfig::reorder_functions`].
    pub reorder_functions: bool,
    /// See [`EffectConfig::align_functions`].
    pub align_functions: u8,
    /// See [`EffectConfig::merge_blocks`].
    pub merge_blocks: bool,
}

/// All three stage projections of one [`EffectConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageKeys {
    /// Stage 1 key (AST optimization).
    pub ast: AstStageKey,
    /// Stage 2 key (lowering).
    pub lower: LowerStageKey,
    /// Stage 3 key (machine-level optimization).
    pub mir: MirStageKey,
}

impl StageKeys {
    /// Project an effect config onto the three stage keys.
    ///
    /// The single exhaustive destructuring below is the soundness
    /// mechanism: every `EffectConfig` field must be named here, so a
    /// newly added field that is not explicitly routed into a stage key
    /// fails to compile instead of silently letting two configs that
    /// differ in it share an artifact.
    pub fn project(eff: &EffectConfig) -> StageKeys {
        let EffectConfig {
            regalloc,
            const_fold,
            cse,
            inline_threshold,
            partial_inline,
            tail_calls,
            unroll_factor,
            peel,
            unswitch,
            unroll_and_jam,
            vectorize_loops,
            vectorize_slp,
            jump_tables,
            if_convert,
            if_convert2,
            branch_count_reg,
            peephole,
            strength_reduce,
            reorder_blocks,
            reorder_partition,
            reorder_functions,
            align_loops,
            align_functions,
            merge_constants,
            merge_all_constants,
            merge_blocks,
            builtin_expand,
            licm,
            loop_distribute,
            style_bits,
        } = eff;
        StageKeys {
            ast: AstStageKey {
                const_fold: *const_fold,
                cse: *cse,
                inline_threshold: *inline_threshold,
                partial_inline: *partial_inline,
                unroll_factor: *unroll_factor,
                peel: *peel,
                unswitch: *unswitch,
                unroll_and_jam: *unroll_and_jam,
                licm: *licm,
                loop_distribute: *loop_distribute,
            },
            lower: LowerStageKey {
                regalloc: *regalloc,
                cse: *cse,
                vectorize_loops: *vectorize_loops,
                vectorize_slp: *vectorize_slp,
                jump_tables: *jump_tables,
                if_convert: *if_convert,
                if_convert2: *if_convert2,
                branch_count_reg: *branch_count_reg,
                align_loops: *align_loops,
                merge_constants: *merge_constants,
                merge_all_constants: *merge_all_constants,
                builtin_expand: *builtin_expand,
                style_bits: *style_bits,
            },
            mir: MirStageKey {
                tail_calls: *tail_calls,
                peephole: *peephole,
                strength_reduce: *strength_reduce,
                reorder_blocks: *reorder_blocks,
                reorder_partition: *reorder_partition,
                reorder_functions: *reorder_functions,
                align_functions: *align_functions,
                merge_blocks: *merge_blocks,
            },
        }
    }
}

impl AstStageKey {
    /// Stable 128-bit digest of the stage-1 projection (the artifact
    /// cache key for optimized ASTs).
    pub fn stable_digest(&self) -> u128 {
        let lo = self.digest_half(0x4153_5430); // "AST0"
        let hi = self.digest_half(0x9e37_79b9_7f4a_7c15 ^ 0x4153_5430);
        (u128::from(hi) << 64) | u128::from(lo)
    }

    fn digest_half(&self, seed: u64) -> u64 {
        // Exhaustive, like EffectConfig::stable_digest: a field added to
        // this key but not fed here is a compile error.
        let AstStageKey {
            const_fold,
            cse,
            inline_threshold,
            partial_inline,
            unroll_factor,
            peel,
            unswitch,
            unroll_and_jam,
            licm,
            loop_distribute,
        } = self;
        let mut h = StableHasher::with_seed(seed);
        h.write_bool(*const_fold);
        h.write_bool(*cse);
        h.write_usize(*inline_threshold);
        h.write_bool(*partial_inline);
        h.write_usize(*unroll_factor);
        h.write_bool(*peel);
        h.write_bool(*unswitch);
        h.write_bool(*unroll_and_jam);
        h.write_bool(*licm);
        h.write_bool(*loop_distribute);
        h.finish()
    }
}

impl LowerStageKey {
    /// Stable 128-bit digest of the stage-2 projection. Combined with
    /// the stage-1 digest it keys lowered-but-unoptimized binaries
    /// (lowering consumes the stage-1 artifact, so its cache key is the
    /// pair).
    pub fn stable_digest(&self) -> u128 {
        let lo = self.digest_half(0x4c4f_5730); // "LOW0"
        let hi = self.digest_half(0x9e37_79b9_7f4a_7c15 ^ 0x4c4f_5730);
        (u128::from(hi) << 64) | u128::from(lo)
    }

    fn digest_half(&self, seed: u64) -> u64 {
        let LowerStageKey {
            regalloc,
            cse,
            vectorize_loops,
            vectorize_slp,
            jump_tables,
            if_convert,
            if_convert2,
            branch_count_reg,
            align_loops,
            merge_constants,
            merge_all_constants,
            builtin_expand,
            style_bits,
        } = self;
        let mut h = StableHasher::with_seed(seed);
        h.write_bool(*regalloc);
        h.write_bool(*cse);
        h.write_bool(*vectorize_loops);
        h.write_bool(*vectorize_slp);
        h.write_bool(*jump_tables);
        h.write_bool(*if_convert);
        h.write_bool(*if_convert2);
        h.write_bool(*branch_count_reg);
        h.write_u8(*align_loops);
        h.write_bool(*merge_constants);
        h.write_bool(*merge_all_constants);
        h.write_bool(*builtin_expand);
        h.write_u64(*style_bits);
        h.finish()
    }
}

impl MirStageKey {
    /// Stable 128-bit digest of the stage-3 projection (telemetry and
    /// tests; the final stage is cheap and never cached).
    pub fn stable_digest(&self) -> u128 {
        let lo = self.digest_half(0x4d49_5230); // "MIR0"
        let hi = self.digest_half(0x9e37_79b9_7f4a_7c15 ^ 0x4d49_5230);
        (u128::from(hi) << 64) | u128::from(lo)
    }

    fn digest_half(&self, seed: u64) -> u64 {
        let MirStageKey {
            tail_calls,
            peephole,
            strength_reduce,
            reorder_blocks,
            reorder_partition,
            reorder_functions,
            align_functions,
            merge_blocks,
        } = self;
        let mut h = StableHasher::with_seed(seed);
        h.write_bool(*tail_calls);
        h.write_bool(*peephole);
        h.write_bool(*strength_reduce);
        h.write_bool(*reorder_blocks);
        h.write_bool(*reorder_partition);
        h.write_bool(*reorder_functions);
        h.write_u8(*align_functions);
        h.write_bool(*merge_blocks);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digests(eff: &EffectConfig) -> (u128, u128, u128) {
        let k = StageKeys::project(eff);
        (
            k.ast.stable_digest(),
            k.lower.stable_digest(),
            k.mir.stable_digest(),
        )
    }

    /// Which stage digests a single-field perturbation must move: the
    /// routing table in `project`, asserted field by field. `cse` is the
    /// one deliberately multi-stage field.
    #[test]
    fn every_field_moves_exactly_its_stages() {
        let base = EffectConfig {
            unroll_factor: 1,
            ..Default::default()
        };
        let (a0, l0, m0) = digests(&base);
        // (mutator, moves_ast, moves_lower, moves_mir)
        type Case = (&'static str, fn(&mut EffectConfig), bool, bool, bool);
        let cases: &[Case] = &[
            ("regalloc", |e| e.regalloc = true, false, true, false),
            ("const_fold", |e| e.const_fold = true, true, false, false),
            ("cse", |e| e.cse = true, true, true, false),
            (
                "inline_threshold",
                |e| e.inline_threshold = 12,
                true,
                false,
                false,
            ),
            (
                "partial_inline",
                |e| e.partial_inline = true,
                true,
                false,
                false,
            ),
            ("tail_calls", |e| e.tail_calls = true, false, false, true),
            ("unroll_factor", |e| e.unroll_factor = 4, true, false, false),
            ("peel", |e| e.peel = true, true, false, false),
            ("unswitch", |e| e.unswitch = true, true, false, false),
            (
                "unroll_and_jam",
                |e| e.unroll_and_jam = true,
                true,
                false,
                false,
            ),
            (
                "vectorize_loops",
                |e| e.vectorize_loops = true,
                false,
                true,
                false,
            ),
            (
                "vectorize_slp",
                |e| e.vectorize_slp = true,
                false,
                true,
                false,
            ),
            ("jump_tables", |e| e.jump_tables = true, false, true, false),
            ("if_convert", |e| e.if_convert = true, false, true, false),
            ("if_convert2", |e| e.if_convert2 = true, false, true, false),
            (
                "branch_count_reg",
                |e| e.branch_count_reg = true,
                false,
                true,
                false,
            ),
            ("peephole", |e| e.peephole = true, false, false, true),
            (
                "strength_reduce",
                |e| e.strength_reduce = true,
                false,
                false,
                true,
            ),
            (
                "reorder_blocks",
                |e| e.reorder_blocks = true,
                false,
                false,
                true,
            ),
            (
                "reorder_partition",
                |e| e.reorder_partition = true,
                false,
                false,
                true,
            ),
            (
                "reorder_functions",
                |e| e.reorder_functions = true,
                false,
                false,
                true,
            ),
            ("align_loops", |e| e.align_loops = 8, false, true, false),
            (
                "align_functions",
                |e| e.align_functions = 16,
                false,
                false,
                true,
            ),
            (
                "merge_constants",
                |e| e.merge_constants = true,
                false,
                true,
                false,
            ),
            (
                "merge_all_constants",
                |e| e.merge_all_constants = true,
                false,
                true,
                false,
            ),
            (
                "merge_blocks",
                |e| e.merge_blocks = true,
                false,
                false,
                true,
            ),
            (
                "builtin_expand",
                |e| e.builtin_expand = true,
                false,
                true,
                false,
            ),
            ("licm", |e| e.licm = true, true, false, false),
            (
                "loop_distribute",
                |e| e.loop_distribute = true,
                true,
                false,
                false,
            ),
            ("style_bits", |e| e.style_bits = 0b1010, false, true, false),
        ];
        for (name, mutate, ast, lower, mir) in cases {
            let mut e = base.clone();
            mutate(&mut e);
            let (a, l, m) = digests(&e);
            assert_eq!(a != a0, *ast, "{name}: ast digest");
            assert_eq!(l != l0, *lower, "{name}: lower digest");
            assert_eq!(m != m0, *mir, "{name}: mir digest");
            // Every field must land in at least one stage.
            assert!(
                a != a0 || l != l0 || m != m0,
                "{name}: escaped every stage key"
            );
        }
    }

    #[test]
    fn projection_is_deterministic_and_key_spaces_are_independent() {
        let eff = EffectConfig {
            unroll_factor: 4,
            const_fold: true,
            regalloc: true,
            peephole: true,
            ..Default::default()
        };
        assert_eq!(StageKeys::project(&eff), StageKeys::project(&eff.clone()));
        let k = StageKeys::project(&eff);
        // Distinct per-stage seeds: the three digests of one config never
        // coincide (they hash different field sets under different
        // seeds).
        assert_ne!(k.ast.stable_digest(), k.lower.stable_digest());
        assert_ne!(k.lower.stable_digest(), k.mir.stable_digest());
    }
}
