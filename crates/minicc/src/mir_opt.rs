//! Machine-level (post-codegen) optimization passes.
//!
//! These operate on the lowered [`Binary`]: peephole substitution
//! (including exact division-by-constant magic), tail-call conversion,
//! block merging (jump threading), basic-block and function layout
//! reordering, and alignment padding. Reordering passes change encoded
//! bytes without touching semantics — the paper's `-freorder-blocks` /
//! `-freorder-functions` effects.

use crate::flags::EffectConfig;
use crate::magic::magic_u32;
use binrep::{Binary, BlockId, Cond, Function, Gpr, Insn, Opcode, Operand, Terminator};
use std::collections::BTreeMap;

/// Run all enabled machine-level passes on the binary, in pipeline order.
pub fn optimize(bin: &mut Binary, eff: &EffectConfig) {
    if eff.tail_calls {
        for f in &mut bin.functions {
            tail_calls(f);
        }
    }
    if eff.merge_blocks {
        for f in &mut bin.functions {
            merge_blocks(f);
        }
    }
    if eff.peephole || eff.strength_reduce {
        for f in &mut bin.functions {
            peephole(f, eff);
        }
    }
    if eff.reorder_blocks {
        for f in &mut bin.functions {
            reorder_blocks(f, eff.reorder_partition);
        }
    }
    if eff.align_functions > 0 {
        for f in &mut bin.functions {
            // Deterministic per-name padding in 0..align.
            let h = f
                .name
                .bytes()
                .fold(7u32, |h, b| h.wrapping_mul(31).wrapping_add(b as u32));
            f.align_pad = (h % eff.align_functions as u32) as u8;
        }
    }
    if eff.reorder_functions {
        reorder_functions(bin);
    }
}

/// Tail-call conversion (`-foptimize-sibling-calls`).
///
/// A block whose instructions end in `call g` (optionally followed by a
/// result passthrough `mov X, eax; mov eax, X`) and whose terminator jumps
/// straight to the function epilogue becomes: inline epilogue (restoring
/// callee-saved registers) + `TailCall(g)`. The call edge disappears from
/// the encoded bytes and the static call graph.
pub fn tail_calls(f: &mut Function) {
    let epilogues: Vec<(BlockId, Vec<Insn>)> = f
        .cfg
        .blocks
        .iter()
        .filter(|b| is_epilogue(b) && matches!(b.term, Terminator::Ret))
        .map(|b| (b.id, b.insns.clone()))
        .collect();
    if epilogues.is_empty() {
        return;
    }
    for b in &mut f.cfg.blocks {
        let epi_insns = match b.term {
            Terminator::Jmp(t) => match epilogues.iter().find(|(id, _)| *id == t) {
                Some((_, insns)) => insns.clone(),
                None => continue,
            },
            _ => continue,
        };
        // Locate the trailing call, allowing only a result passthrough
        // after it (a dead store/reload of eax through one location).
        let call_pos = match b.insns.iter().rposition(|i| i.callee().is_some()) {
            Some(p) => p,
            None => continue,
        };
        let suffix = &b.insns[call_pos + 1..];
        let passthrough_ok = match suffix {
            [] => true,
            [store, load] => {
                store.op == Opcode::Mov
                    && load.op == Opcode::Mov
                    && store.b == Some(Operand::Reg(Gpr::Eax))
                    && load.a == Some(Operand::Reg(Gpr::Eax))
                    && store.a == load.b
                    // The intermediate must be a frame slot or a plain
                    // caller-visible-dead register.
                    && match store.a {
                        Some(Operand::Mem(m)) => m.base == Some(Gpr::Ebp),
                        Some(Operand::Reg(r)) => r != Gpr::Esp && r != Gpr::Ebp,
                        _ => false,
                    }
            }
            _ => false,
        };
        if !passthrough_ok {
            continue;
        }
        let callee = b.insns[call_pos].callee().unwrap();
        b.insns.truncate(call_pos);
        // Inline the *actual* epilogue (restores callee-saved registers)
        // before transferring control.
        b.insns.extend(epi_insns);
        b.term = Terminator::TailCall(callee);
    }
    f.cfg.remove_unreachable();
}

fn is_epilogue(b: &binrep::Block) -> bool {
    // The epilogue shape emitted by codegen: register restores (moves from
    // frame slots), `mov esp, ebp` (or the lea variant), `pop ebp`,
    // optional nop.
    b.insns
        .iter()
        .all(|i| matches!(i.op, Opcode::Mov | Opcode::Lea | Opcode::Pop | Opcode::Nop))
        && b.insns
            .iter()
            .any(|i| i.op == Opcode::Pop && i.a == Some(Operand::Reg(Gpr::Ebp)))
}

/// Merge single-predecessor/single-successor block chains (jump
/// threading / `-fcrossjumping` analog). Reduces basic-block counts —
/// the "compound conditionals" effect of Figure 2(a).
pub fn merge_blocks(f: &mut Function) {
    loop {
        let preds = f.cfg.predecessors();
        // Find A -jmp-> B where B has exactly one predecessor.
        let mut candidate: Option<(BlockId, BlockId)> = None;
        for b in &f.cfg.blocks {
            if let Terminator::Jmp(t) = b.term {
                if t != b.id && preds.get(&t).map(|p| p.len()) == Some(1) && t != f.cfg.entry {
                    candidate = Some((b.id, t));
                    break;
                }
            }
        }
        let (a, b) = match candidate {
            Some(c) => c,
            None => return,
        };
        let donor = f.cfg.block(b).clone();
        let target = f.cfg.block_mut(a);
        target.insns.extend(donor.insns);
        target.term = donor.term;
        f.cfg.blocks.retain(|blk| blk.id != b);
    }
}

/// Peephole substitutions. Each rule preserves semantics; rules that
/// change FLAGS behaviour are applied only when no live FLAGS reader
/// follows before the next FLAGS writer (checked conservatively).
pub fn peephole(f: &mut Function, eff: &EffectConfig) {
    for b in &mut f.cfg.blocks {
        let term_reads_flags = matches!(b.term, Terminator::Branch { .. });
        let mut i = 0;
        while i < b.insns.len() {
            let flags_dead = flags_dead_after(&b.insns, i, term_reads_flags);
            let insn = b.insns[i];
            let mut replaced: Option<Vec<Insn>> = None;
            if eff.peephole {
                replaced = peephole_rule(&insn, flags_dead);
            }
            if replaced.is_none() && eff.strength_reduce {
                replaced = strength_rule(&insn, flags_dead);
            }
            match replaced {
                Some(new) => {
                    let n = new.len();
                    b.insns.splice(i..=i, new);
                    i += n;
                }
                None => i += 1,
            }
        }
    }
}

/// Whether FLAGS produced at position `i` are observably dead: no
/// flags-reading instruction occurs after `i` before the next
/// flags-writing instruction, and the terminator doesn't read them
/// without an intervening writer.
fn flags_dead_after(insns: &[Insn], i: usize, term_reads: bool) -> bool {
    for insn in &insns[i + 1..] {
        if insn.op.reads_flags() {
            return false;
        }
        if insn.op.writes_flags() {
            return true;
        }
        // `loop` (LoopBack) ignores FLAGS; calls clobber them in our ABI.
        if matches!(insn.op, Opcode::Call | Opcode::CallImport) {
            return true;
        }
    }
    !term_reads
}

fn peephole_rule(insn: &Insn, flags_dead: bool) -> Option<Vec<Insn>> {
    let (a, b) = (insn.a?, insn.b);
    let r = match a {
        Operand::Reg(r) => Some(r),
        _ => None,
    };
    match (insn.op, r, b) {
        // mov r, 0 → xor r, r (writes FLAGS: needs them dead).
        (Opcode::Mov, Some(r), Some(Operand::Imm(0))) if flags_dead => {
            Some(vec![Insn::op2(Opcode::Xor, r, r)])
        }
        // imul r, 3/5/9 → lea r, [r + r*scale] (no FLAGS at all — while
        // imul writes them, removing a write is safe only when dead).
        (Opcode::Imul, Some(r), Some(Operand::Imm(m @ (3 | 5 | 9)))) if flags_dead => {
            Some(vec![Insn::op2(
                Opcode::Lea,
                r,
                binrep::MemRef::indexed(Some(r), r, (m - 1) as u8, 0),
            )])
        }
        // imul r, 2^k → shl r, k.
        (Opcode::Imul, Some(r), Some(Operand::Imm(m)))
            if flags_dead && m > 1 && (m as u64).is_power_of_two() =>
        {
            Some(vec![Insn::op2(Opcode::Shl, r, m.trailing_zeros() as i64)])
        }
        // add r, 1 → inc r / sub r, 1 → dec r (CF behaviour differs).
        (Opcode::Add, Some(r), Some(Operand::Imm(1))) if flags_dead => {
            Some(vec![Insn::op1(Opcode::Inc, r)])
        }
        (Opcode::Sub, Some(r), Some(Operand::Imm(1))) if flags_dead => {
            Some(vec![Insn::op1(Opcode::Dec, r)])
        }
        // xor r, -1 → not r (not doesn't write FLAGS).
        (Opcode::Xor, Some(r), Some(Operand::Imm(-1))) if flags_dead => {
            Some(vec![Insn::op1(Opcode::Not, r)])
        }
        _ => None,
    }
}

fn strength_rule(insn: &Insn, flags_dead: bool) -> Option<Vec<Insn>> {
    if !flags_dead {
        return None;
    }
    let r = insn.a?.as_reg()?;
    let imm = insn.b?.as_imm()?;
    if imm < 2 || imm > u32::MAX as i64 {
        return None;
    }
    let d = imm as u32;
    match insn.op {
        Opcode::Udiv => {
            if d.is_power_of_two() {
                return Some(vec![Insn::op2(Opcode::Shr, r, d.trailing_zeros() as i64)]);
            }
            // Granlund–Montgomery multiply (Figure 3(a)); edx is the fixed
            // scratch register, free at this point by construction.
            let m = magic_u32(d);
            let mut seq = vec![
                Insn::op2(Opcode::Mov, Gpr::Edx, r),
                Insn::op2(Opcode::Umulh, Gpr::Edx, m.m as i64),
            ];
            if m.add {
                // q = (hi + ((n - hi) >> 1)) >> (shift - 1)
                seq.push(Insn::op2(Opcode::Sub, r, Gpr::Edx));
                seq.push(Insn::op2(Opcode::Shr, r, 1i64));
                seq.push(Insn::op2(Opcode::Add, r, Gpr::Edx));
                if m.shift > 1 {
                    seq.push(Insn::op2(Opcode::Shr, r, (m.shift - 1) as i64));
                }
            } else {
                seq.push(Insn::op2(Opcode::Mov, r, Gpr::Edx));
                if m.shift > 0 {
                    seq.push(Insn::op2(Opcode::Shr, r, m.shift as i64));
                }
            }
            Some(seq)
        }
        Opcode::Urem if d.is_power_of_two() => {
            Some(vec![Insn::op2(Opcode::And, r, (d - 1) as i64)])
        }
        _ => None,
    }
}

/// Reorder blocks within a function. `partition` additionally moves
/// "cold" blocks (those ending in plain `Ret`) to the end — a hot/cold
/// split analog.
pub fn reorder_blocks(f: &mut Function, partition: bool) {
    if f.cfg.blocks.len() <= 2 {
        return;
    }
    // Layout = reverse post-order (a real compiler layout), which differs
    // from the emission order codegen produced.
    let rpo = f.cfg.rpo();
    let pos: BTreeMap<BlockId, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    f.cfg
        .blocks
        .sort_by_key(|b| pos.get(&b.id).copied().unwrap_or(usize::MAX));
    if partition {
        // Stable partition: blocks that end in Ret (cold exits) sink.
        let (hot, cold): (Vec<_>, Vec<_>) = f
            .cfg
            .blocks
            .drain(..)
            .partition(|b| !matches!(b.term, Terminator::Ret | Terminator::TailCall(_)));
        f.cfg.blocks = hot;
        f.cfg.blocks.extend(cold);
    }
    // The entry must stay first for fall-through correctness of encoding
    // (encoding is position-independent but readers expect entry-first).
    if let Some(epos) = f.cfg.blocks.iter().position(|b| b.id == f.cfg.entry) {
        if epos != 0 {
            let e = f.cfg.blocks.remove(epos);
            f.cfg.blocks.insert(0, e);
        }
    }
}

/// Reorder functions in the binary by name hash (`-freorder-functions`).
pub fn reorder_functions(bin: &mut Binary) {
    bin.functions.sort_by_key(|f| {
        f.name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        })
    });
}

/// Count conditional-branch terminators (used by tests and metrics).
pub fn branch_count(f: &Function) -> usize {
    f.cfg
        .blocks
        .iter()
        .filter(|b| matches!(b.term, Terminator::Branch { .. }))
        .count()
}

/// Invert branches whose then-target equals the fall-through (cleanup
/// used by tests; exercised via reorder_blocks).
pub fn normalize_branches(f: &mut Function) {
    let order: Vec<BlockId> = f.cfg.blocks.iter().map(|b| b.id).collect();
    for (i, b) in f.cfg.blocks.iter_mut().enumerate() {
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = &mut b.term
        {
            if order.get(i + 1) == Some(then_bb) {
                std::mem::swap(&mut *then_bb, &mut *else_bb);
                *cond = cond.negate();
            }
        }
    }
}

/// Jump-table terminators degrade to binary-search compare chains when
/// jump tables are disabled *after* lowering — used by the ablation
/// benches to isolate the switch-lowering effect. Returns how many tables
/// were rewritten.
pub fn lower_jump_tables(f: &mut Function) -> usize {
    let mut rewritten = 0;
    let tables: Vec<(BlockId, Gpr, Vec<BlockId>)> = f
        .cfg
        .blocks
        .iter()
        .filter_map(|b| match &b.term {
            Terminator::JumpTable { index, targets } => Some((b.id, *index, targets.clone())),
            _ => None,
        })
        .collect();
    for (src, index, targets) in tables {
        rewritten += 1;
        // Chain of equality tests; the last case falls through to the
        // final target (the table is total by construction).
        let mut cur = src;
        for (k, t) in targets.iter().enumerate().take(targets.len() - 1) {
            let next = f.cfg.fresh_id();
            f.cfg
                .push(binrep::Block::new(next, Vec::new(), Terminator::Ret));
            let blk = f.cfg.block_mut(cur);
            blk.insns.push(Insn::op2(Opcode::Cmp, index, k as i64));
            blk.term = Terminator::Branch {
                cond: Cond::E,
                then_bb: *t,
                else_bb: next,
            };
            cur = next;
        }
        let last = *targets.last().unwrap();
        f.cfg.block_mut(cur).term = Terminator::Jmp(last);
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use binrep::{Arch, Block};

    fn func_with_blocks(n: usize) -> Function {
        let mut f = Function::new(binrep::FuncId(0), "t", 0);
        let mut prev = BlockId(0);
        for _ in 1..n {
            let b = f.cfg.fresh_id();
            f.cfg.block_mut(prev).term = Terminator::Jmp(b);
            f.cfg
                .push(Block::new(b, vec![Insn::op0(Opcode::Nop)], Terminator::Ret));
            prev = b;
        }
        f
    }

    #[test]
    fn merge_collapses_chains() {
        let mut f = func_with_blocks(5);
        merge_blocks(&mut f);
        assert_eq!(f.cfg.len(), 1);
        f.cfg.validate().unwrap();
    }

    #[test]
    fn merge_preserves_multi_pred_blocks() {
        // Diamond: join has 2 preds, must survive.
        let mut f = Function::new(binrep::FuncId(0), "t", 0);
        let t = f.cfg.fresh_id();
        let e = f.cfg.fresh_id();
        let j = f.cfg.fresh_id();
        f.cfg.block_mut(BlockId(0)).term = Terminator::Branch {
            cond: Cond::E,
            then_bb: t,
            else_bb: e,
        };
        f.cfg.push(Block::new(t, vec![], Terminator::Jmp(j)));
        f.cfg.push(Block::new(e, vec![], Terminator::Jmp(j)));
        f.cfg.push(Block::new(j, vec![], Terminator::Ret));
        merge_blocks(&mut f);
        assert_eq!(f.cfg.len(), 4);
    }

    #[test]
    fn peephole_rewrites_mul_and_movzero() {
        let mut f = Function::new(binrep::FuncId(0), "t", 0);
        f.cfg.block_mut(BlockId(0)).insns = vec![
            Insn::op2(Opcode::Mov, Gpr::Eax, 0i64),
            Insn::op2(Opcode::Imul, Gpr::Ebx, 8i64),
            Insn::op2(Opcode::Add, Gpr::Ecx, 1i64),
        ];
        let eff = EffectConfig {
            peephole: true,
            ..Default::default()
        };
        peephole(&mut f, &eff);
        let ops: Vec<Opcode> = f.cfg.block(BlockId(0)).insns.iter().map(|i| i.op).collect();
        assert_eq!(ops, vec![Opcode::Xor, Opcode::Shl, Opcode::Inc]);
    }

    #[test]
    fn peephole_respects_live_flags() {
        // mov eax, 0 directly before a branch that reads FLAGS set by the
        // preceding cmp: must NOT become xor (which would clobber them).
        let mut f = Function::new(binrep::FuncId(0), "t", 0);
        let t = f.cfg.fresh_id();
        let e = f.cfg.fresh_id();
        f.cfg.block_mut(BlockId(0)).insns = vec![
            Insn::op2(Opcode::Cmp, Gpr::Ebx, 5i64),
            Insn::op2(Opcode::Mov, Gpr::Eax, 0i64),
        ];
        f.cfg.block_mut(BlockId(0)).term = Terminator::Branch {
            cond: Cond::E,
            then_bb: t,
            else_bb: e,
        };
        f.cfg.push(Block::new(t, vec![], Terminator::Ret));
        f.cfg.push(Block::new(e, vec![], Terminator::Ret));
        let eff = EffectConfig {
            peephole: true,
            ..Default::default()
        };
        peephole(&mut f, &eff);
        assert_eq!(f.cfg.block(BlockId(0)).insns[1].op, Opcode::Mov);
    }

    #[test]
    fn strength_reduction_divides_correctly() {
        use emu::Machine;
        for d in [3u32, 7, 10, 255, 641] {
            let mut bin = Binary::new("t", Arch::X86);
            let mut f = Function::new(binrep::FuncId(0), "main", 1);
            {
                let blk = f.cfg.block_mut(BlockId(0));
                blk.insns.push(Insn::op2(Opcode::Mov, Gpr::Eax, Gpr::Ecx));
                blk.insns.push(Insn::op2(Opcode::Udiv, Gpr::Eax, d as i64));
            }
            let mut fo = f.clone();
            let eff = EffectConfig {
                strength_reduce: true,
                ..Default::default()
            };
            peephole(&mut fo, &eff);
            assert!(
                !fo.cfg.blocks[0].insns.iter().any(|i| i.op == Opcode::Udiv),
                "division not reduced for d={d}"
            );
            let mut bo = bin.clone();
            bin.functions.push(f);
            bo.functions.push(fo);
            for n in [0u32, 1, d, d + 1, 1000, u32::MAX, 0x8000_0001] {
                let a = Machine::new(&bin).run(&[n], &[], 10_000).unwrap().ret;
                let b = Machine::new(&bo).run(&[n], &[], 10_000).unwrap().ret;
                assert_eq!(a, b, "n={n} d={d}");
                assert_eq!(a, n / d);
            }
        }
    }

    #[test]
    fn reorder_blocks_changes_layout_not_semantics() {
        let mut f = func_with_blocks(6);
        // Scramble initial layout.
        f.cfg.blocks.reverse();
        let ids_before: std::collections::BTreeSet<u32> =
            f.cfg.blocks.iter().map(|b| b.id.0).collect();
        reorder_blocks(&mut f, true);
        let ids_after: std::collections::BTreeSet<u32> =
            f.cfg.blocks.iter().map(|b| b.id.0).collect();
        assert_eq!(ids_before, ids_after);
        assert_eq!(f.cfg.blocks[0].id, f.cfg.entry);
        f.cfg.validate().unwrap();
    }

    #[test]
    fn lower_jump_tables_rewrites_to_chain() {
        let mut f = Function::new(binrep::FuncId(0), "t", 0);
        let cases: Vec<BlockId> = (0..3).map(|_| f.cfg.fresh_id()).collect();
        for &c in &cases {
            f.cfg.push(Block::new(c, vec![], Terminator::Ret));
        }
        f.cfg.block_mut(BlockId(0)).term = Terminator::JumpTable {
            index: Gpr::Eax,
            targets: cases,
        };
        assert_eq!(lower_jump_tables(&mut f), 1);
        f.cfg.validate().unwrap();
        assert!(f
            .cfg
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::JumpTable { .. })));
    }
}
