//! # minicc — a miniature optimizing compiler for the BinTuner study
//!
//! This crate is the stand-in for GCC 10.2 and LLVM 11.0: a compiler for a
//! small C-like language ([`ast`]) targeting the `binrep` mini-ISA, with
//! two *compiler profiles* exposing >100 named optimization flags each
//! ([`flags`]), genuinely implemented optimization passes at the AST level
//! ([`astopt`]), lowering strategies ([`codegen`]) and machine level
//! ([`mir_opt`]), and documented flag constraints checked by the `satz`
//! solver — everything BinTuner's iterative compilation needs to explore.
//!
//! ## Example
//!
//! ```
//! use minicc::{Compiler, CompilerKind, OptLevel};
//! use minicc::ast::{BinOp, Expr, FuncDef, LValue, Module, Stmt};
//!
//! let mut m = Module::new("demo");
//! m.funcs.push(FuncDef::new(
//!     "main",
//!     vec![],
//!     vec![Stmt::Return(Expr::bin(BinOp::Mul, Expr::Const(6), Expr::Const(7)))],
//! ));
//! m.validate().unwrap();
//!
//! let cc = Compiler::new(CompilerKind::Gcc);
//! let o0 = cc.compile_preset(&m, OptLevel::O0, binrep::Arch::X86).unwrap();
//! let o3 = cc.compile_preset(&m, OptLevel::O3, binrep::Arch::X86).unwrap();
//! assert_ne!(binrep::encode_binary(&o0), binrep::encode_binary(&o3));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod astopt;
pub mod codec;
pub mod codegen;
pub mod features;
pub mod flags;
pub mod hash;
pub mod magic;
pub mod mir_opt;
pub mod stage;

pub use features::ModuleFeatures;
pub use flags::{CompilerKind, CompilerProfile, Effect, EffectConfig, FlagDef, OptLevel};
pub use hash::{fnv1a32, StableHasher};
pub use stage::{AstStageKey, LowerStageKey, MirStageKey, StageKeys};

use ast::Module;
use binrep::{Arch, Binary};

/// Errors from [`Compiler::compile`].
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The flag vector violates documented flag constraints — the
    /// "compilation error" case BinTuner's constraint verification exists
    /// to prevent (paper §4.1).
    InvalidFlags(Vec<satz::Violation>),
    /// The module failed validation.
    BadModule(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::InvalidFlags(v) => {
                write!(f, "conflicting optimization flags ({} violations)", v.len())
            }
            CompileError::BadModule(e) => write!(f, "invalid module: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Measured wall-clock seconds per pipeline stage for one compile
/// (returned by [`Compiler::compile_timed`]; consumed by the telemetry
/// plane's per-stage histograms and trace spans).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageWalls {
    /// Constraint check + module validation + effect resolution.
    pub check_seconds: f64,
    /// Stage 1: AST optimization.
    pub ast_seconds: f64,
    /// Stage 2: lowering to machine code.
    pub lower_seconds: f64,
    /// Stage 3: machine-level optimization.
    pub mir_seconds: f64,
}

/// A compiler instance for one profile (GCC or LLVM model).
#[derive(Debug, Clone)]
pub struct Compiler {
    profile: CompilerProfile,
}

impl Compiler {
    /// Build a compiler for the given family.
    pub fn new(kind: CompilerKind) -> Compiler {
        Compiler {
            profile: CompilerProfile::new(kind),
        }
    }

    /// The flag profile (vocabulary, presets, constraints).
    pub fn profile(&self) -> &CompilerProfile {
        &self.profile
    }

    /// Compile a module under an explicit flag vector.
    ///
    /// Equivalent to [`Compiler::check`] followed by the three pipeline
    /// stages ([`Compiler::stage_ast`] → [`Compiler::stage_lower`] →
    /// [`Compiler::stage_mir`]) — it *is* that sequence, so a staged
    /// caller that caches intermediate artifacts produces byte-identical
    /// binaries by construction (pinned corpus-wide by
    /// `tests/staged_vs_monolithic.rs`).
    ///
    /// # Errors
    ///
    /// [`CompileError::InvalidFlags`] when the flag vector violates the
    /// profile's constraints; [`CompileError::BadModule`] when the module
    /// is structurally invalid.
    pub fn compile(&self, m: &Module, flags: &[bool], arch: Arch) -> Result<Binary, CompileError> {
        let eff = self.check(m, flags)?;
        let optimized = self.stage_ast(m, &eff);
        let lowered = self.stage_lower(&optimized, &eff, arch);
        Ok(self.stage_mir(lowered, &eff))
    }

    /// The shared front half of a compile: constraint-check the flag
    /// vector, validate the module, and resolve the [`EffectConfig`].
    ///
    /// Callers that drive the stages themselves (the fitness engine's
    /// artifact cache) run this once per candidate — or skip it entirely
    /// for a module they already validated and a vector they already
    /// checked — instead of paying the full re-validation inside every
    /// [`Compiler::compile`].
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`].
    pub fn check(&self, m: &Module, flags: &[bool]) -> Result<EffectConfig, CompileError> {
        let violations = self.profile.constraints().check(flags);
        if !violations.is_empty() {
            return Err(CompileError::InvalidFlags(violations));
        }
        m.validate().map_err(CompileError::BadModule)?;
        Ok(EffectConfig::from_flags(&self.profile, flags))
    }

    /// Pipeline stage 1: AST optimization.
    ///
    /// The output is a pure function of `(module, AstStageKey)` — only
    /// the fields in [`stage::AstStageKey`] are read (the projection
    /// invariant the staged-vs-monolithic differential suite pins), so
    /// two configs with equal AST stage keys may share one result.
    /// Expects a validated module ([`Compiler::check`]).
    pub fn stage_ast(&self, m: &Module, eff: &EffectConfig) -> Module {
        astopt::optimize(m, eff)
    }

    /// Pipeline stage 2: lower the optimized AST to machine code,
    /// *without* machine-level optimization.
    ///
    /// The output is a pure function of
    /// `(stage-1 artifact, LowerStageKey, arch)`; cache it under the
    /// `(AstStageKey, LowerStageKey)` digest pair.
    pub fn stage_lower(&self, optimized: &Module, eff: &EffectConfig, arch: Arch) -> Binary {
        codegen::lower_module(optimized, eff, arch)
    }

    /// Pipeline stage 3: machine-level optimization — the cheap tail of
    /// the pipeline, a pure function of `(stage-2 artifact, MirStageKey)`.
    /// Consumes the lowered binary (cached callers clone their artifact).
    pub fn stage_mir(&self, mut lowered: Binary, eff: &EffectConfig) -> Binary {
        mir_opt::optimize(&mut lowered, eff);
        debug_assert_eq!(lowered.validate(), Ok(()));
        lowered
    }

    /// Compile a module under an explicit flag vector, measuring each
    /// pipeline stage (`check → ast → lower → mir`) on the monotonic
    /// clock — the telemetry plane's per-stage timing hook.
    ///
    /// Runs the *same* stage sequence as [`Compiler::compile`], so the
    /// binary is byte-identical to an untimed compile by construction
    /// (pinned by `timed_compile_is_byte_identical`); only the clock
    /// readings are extra. Untraced callers keep using
    /// [`Compiler::compile`] and never pay for them.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`].
    pub fn compile_timed(
        &self,
        m: &Module,
        flags: &[bool],
        arch: Arch,
    ) -> Result<(Binary, StageWalls), CompileError> {
        let t0 = std::time::Instant::now();
        let eff = self.check(m, flags)?;
        let t1 = std::time::Instant::now();
        let optimized = self.stage_ast(m, &eff);
        let t2 = std::time::Instant::now();
        let lowered = self.stage_lower(&optimized, &eff, arch);
        let t3 = std::time::Instant::now();
        let binary = self.stage_mir(lowered, &eff);
        let walls = StageWalls {
            check_seconds: (t1 - t0).as_secs_f64(),
            ast_seconds: (t2 - t1).as_secs_f64(),
            lower_seconds: (t3 - t2).as_secs_f64(),
            mir_seconds: t3.elapsed().as_secs_f64(),
        };
        Ok((binary, walls))
    }

    /// Compile with a default `-Ox` preset.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile`].
    pub fn compile_preset(
        &self,
        m: &Module,
        level: OptLevel,
        arch: Arch,
    ) -> Result<Binary, CompileError> {
        self.compile(m, &self.profile.preset(level), arch)
    }

    /// Model of one compilation's wall-clock cost in seconds, used to
    /// report Table 1's "hours" column at paper scale. Proportional to
    /// module size with a per-enabled-flag pass cost — large programs with
    /// heavy flag sets (the paper's 623.xalancbmk_s case) dominate.
    pub fn simulated_compile_seconds(&self, m: &Module, flags: &[bool]) -> f64 {
        let enabled = flags.iter().filter(|&&b| b).count();
        let size = m.size() as f64;
        0.05 + size * (6.0e-4 + 2.0e-5 * enabled as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ast::{BinOp, Expr, FuncDef, Global, LValue, Stmt};
    use emu::Machine;

    /// A module exercising every optimization surface: loops (counted,
    /// while, nested, vectorizable, reduction), dense & sparse switches,
    /// early-exit and small helpers, division by constants, strings,
    /// recursion, and branch-free-convertible ifs.
    fn kitchen_sink() -> Module {
        let mut m = Module::new("kitchen_sink");
        m.globals.push(Global {
            name: "gv".into(),
            words: vec![11],
        });
        m.globals.push(Global {
            name: "table".into(),
            words: (0..16).map(|i| i * 3 + 1).collect(),
        });

        // Small single-exit helper (inline candidate).
        m.funcs.push(FuncDef::new(
            "mix",
            vec!["a".into(), "b".into()],
            vec![Stmt::Return(Expr::bin(
                BinOp::Xor,
                Expr::bin(BinOp::Mul, Expr::Var("a".into()), Expr::Const(2654435761)),
                Expr::vc(BinOp::Shr, "b", 13),
            ))],
        ));

        // Early-exit function (partial-inline candidate).
        m.funcs.push(FuncDef::new(
            "clamp100",
            vec!["x".into()],
            vec![
                Stmt::If {
                    cond: Expr::vc(BinOp::Gt, "x", 100),
                    then_body: vec![Stmt::Return(Expr::Const(100))],
                    else_body: vec![],
                },
                Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::Var("x".into()),
                    Expr::Global("gv".into()),
                )),
            ],
        ));

        // Recursive function (must never be inlined).
        m.funcs.push(FuncDef::new("fib", vec!["n".into()], {
            let mut f = vec![
                Stmt::If {
                    cond: Expr::vc(BinOp::Lt, "n", 2),
                    then_body: vec![Stmt::Return(Expr::Var("n".into()))],
                    else_body: vec![],
                },
                Stmt::Assign(
                    LValue::Var("a".into()),
                    Expr::Call("fib".into(), vec![Expr::vc(BinOp::Sub, "n", 1)]),
                ),
                Stmt::Assign(
                    LValue::Var("b".into()),
                    Expr::Call("fib".into(), vec![Expr::vc(BinOp::Sub, "n", 2)]),
                ),
                Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::Var("a".into()),
                    Expr::Var("b".into()),
                )),
            ];
            f.rotate_left(0);
            f
        }));
        m.funcs.last_mut().unwrap().local("a");
        m.funcs.last_mut().unwrap().local("b");

        // Vector workload: c[i] = a[i]*b[i]; s = Σ c[i]; plus division.
        let mut vecf = FuncDef::new("dotish", vec!["n".into()], vec![]);
        vecf.local_array("a", 16)
            .local_array("b", 16)
            .local_array("c", 16)
            .local("i")
            .local("s");
        vecf.body = vec![
            Stmt::For {
                var: "i".into(),
                start: Expr::Const(0),
                end: Expr::Var("n".into()),
                step: 1,
                body: vec![
                    Stmt::Assign(
                        LValue::Index("a".into(), Expr::Var("i".into())),
                        Expr::bin(BinOp::Add, Expr::Var("i".into()), Expr::Const(3)),
                    ),
                    Stmt::Assign(
                        LValue::Index("b".into(), Expr::Var("i".into())),
                        Expr::bin(BinOp::Mul, Expr::Var("i".into()), Expr::Const(5)),
                    ),
                ],
            },
            Stmt::For {
                var: "i".into(),
                start: Expr::Const(0),
                end: Expr::Var("n".into()),
                step: 1,
                body: vec![Stmt::Assign(
                    LValue::Index("c".into(), Expr::Var("i".into())),
                    Expr::bin(
                        BinOp::Mul,
                        Expr::Index("a".into(), Box::new(Expr::Var("i".into()))),
                        Expr::Index("b".into(), Box::new(Expr::Var("i".into()))),
                    ),
                )],
            },
            Stmt::Assign(LValue::Var("s".into()), Expr::Const(0)),
            Stmt::For {
                var: "i".into(),
                start: Expr::Const(0),
                end: Expr::Var("n".into()),
                step: 1,
                body: vec![Stmt::Assign(
                    LValue::Var("s".into()),
                    Expr::bin(
                        BinOp::Add,
                        Expr::Var("s".into()),
                        Expr::Index("c".into(), Box::new(Expr::Var("i".into()))),
                    ),
                )],
            },
            Stmt::Return(Expr::bin(
                BinOp::Add,
                Expr::vc(BinOp::Div, "s", 255),
                Expr::vc(BinOp::Rem, "s", 16),
            )),
        ];
        m.funcs.push(vecf);

        // Switch-heavy function: one dense, one sparse.
        let mut sw = FuncDef::new("dispatch", vec!["op".into()], vec![]);
        sw.local("r");
        sw.body = vec![
            Stmt::Switch {
                scrutinee: Expr::Var("op".into()),
                cases: (0..6)
                    .map(|k| {
                        (
                            k,
                            vec![Stmt::Assign(
                                LValue::Var("r".into()),
                                Expr::Const(k * 7 + 1),
                            )],
                        )
                    })
                    .collect(),
                default: vec![Stmt::Assign(LValue::Var("r".into()), Expr::Const(999))],
            },
            Stmt::Switch {
                scrutinee: Expr::Var("op".into()),
                cases: vec![
                    (
                        2,
                        vec![Stmt::Assign(
                            LValue::Var("r".into()),
                            Expr::vc(BinOp::Add, "r", 10),
                        )],
                    ),
                    (
                        40,
                        vec![Stmt::Assign(
                            LValue::Var("r".into()),
                            Expr::vc(BinOp::Add, "r", 20),
                        )],
                    ),
                    (
                        1000,
                        vec![Stmt::Assign(
                            LValue::Var("r".into()),
                            Expr::vc(BinOp::Add, "r", 30),
                        )],
                    ),
                    (
                        77777,
                        vec![Stmt::Assign(
                            LValue::Var("r".into()),
                            Expr::vc(BinOp::Add, "r", 40),
                        )],
                    ),
                    (
                        5,
                        vec![Stmt::Assign(
                            LValue::Var("r".into()),
                            Expr::vc(BinOp::Add, "r", 50),
                        )],
                    ),
                ],
                default: vec![],
            },
            Stmt::Return(Expr::Var("r".into())),
        ];
        m.funcs.push(sw);

        // Trampoline in tail-call shape; `dispatch` is too big to inline,
        // so `-foptimize-sibling-calls` turns this into a tail jump.
        m.funcs.push(FuncDef::new(
            "route",
            vec!["x".into()],
            vec![Stmt::Return(Expr::Call(
                "dispatch".into(),
                vec![Expr::Var("x".into())],
            ))],
        ));

        // Counted loop + branch-free if + unswitchable loop + strings.
        let mut mainf = FuncDef::new("main", vec!["seed".into(), "mode".into()], vec![]);
        mainf
            .local("acc")
            .local("i")
            .local("t")
            .local("flag")
            .local_array("buf", 8);
        mainf.body = vec![
            Stmt::Assign(LValue::Var("acc".into()), Expr::Var("seed".into())),
            // Counted loop with var-free body (loop-insn candidate).
            Stmt::For {
                var: "i".into(),
                start: Expr::Const(0),
                end: Expr::Const(9),
                step: 1,
                body: vec![Stmt::Assign(
                    LValue::Var("acc".into()),
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(BinOp::Mul, Expr::Var("acc".into()), Expr::Const(33)),
                        Expr::Const(17),
                    ),
                )],
            },
            // Branch-free candidate: if (acc >= 1000) t = 1 else t = 0.
            Stmt::If {
                cond: Expr::vc(BinOp::Ge, "acc", 1000),
                then_body: vec![Stmt::Assign(LValue::Var("t".into()), Expr::Const(1))],
                else_body: vec![Stmt::Assign(LValue::Var("t".into()), Expr::Const(0))],
            },
            // cmov candidate.
            Stmt::If {
                cond: Expr::vc(BinOp::Lt, "acc", 500),
                then_body: vec![Stmt::Assign(
                    LValue::Var("flag".into()),
                    Expr::vc(BinOp::Add, "acc", 7),
                )],
                else_body: vec![Stmt::Assign(
                    LValue::Var("flag".into()),
                    Expr::vc(BinOp::Shr, "acc", 3),
                )],
            },
            // Unswitch candidate: invariant `mode` condition inside a loop.
            Stmt::For {
                var: "i".into(),
                start: Expr::Const(0),
                end: Expr::Const(12),
                step: 1,
                body: vec![Stmt::If {
                    cond: Expr::vc(BinOp::Eq, "mode", 1),
                    then_body: vec![Stmt::Assign(
                        LValue::Var("acc".into()),
                        Expr::bin(
                            BinOp::Add,
                            Expr::Var("acc".into()),
                            Expr::Index("table".into(), Box::new(Expr::Var("i".into()))),
                        ),
                    )],
                    else_body: vec![Stmt::Assign(
                        LValue::Var("acc".into()),
                        Expr::bin(BinOp::Xor, Expr::Var("acc".into()), Expr::Var("i".into())),
                    )],
                }],
            },
            // Builtin expansion: strcpy of a literal into a local buffer.
            Stmt::ExprStmt(Expr::CallImport(
                "strcpy".into(),
                vec![Expr::AddrOf("buf".into()), Expr::Str("Hello World!".into())],
            )),
            Stmt::Assign(
                LValue::Var("t".into()),
                Expr::bin(
                    BinOp::Add,
                    Expr::Var("t".into()),
                    Expr::Index("buf".into(), Box::new(Expr::Const(1))),
                ),
            ),
            // Calls into every helper.
            Stmt::Assign(
                LValue::Var("acc".into()),
                Expr::Call(
                    "mix".into(),
                    vec![Expr::Var("acc".into()), Expr::Var("t".into())],
                ),
            ),
            Stmt::Assign(
                LValue::Var("t".into()),
                Expr::Call("clamp100".into(), vec![Expr::vc(BinOp::Rem, "acc", 300)]),
            ),
            Stmt::Assign(
                LValue::Var("i".into()),
                Expr::Call("fib".into(), vec![Expr::Const(10)]),
            ),
            Stmt::Assign(
                LValue::Var("flag".into()),
                Expr::Call("dotish".into(), vec![Expr::Const(13)]),
            ),
            Stmt::Assign(
                LValue::Var("mode".into()),
                Expr::Call("route".into(), vec![Expr::vc(BinOp::Rem, "acc", 8)]),
            ),
            // Tail-call shape: return mix(..) as the last statement.
            Stmt::Return(Expr::Call(
                "mix".into(),
                vec![
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(
                            BinOp::Add,
                            Expr::Var("t".into()),
                            Expr::bin(BinOp::Add, Expr::Var("i".into()), Expr::Var("flag".into())),
                        ),
                        Expr::Var("mode".into()),
                    ),
                    Expr::Var("acc".into()),
                ],
            )),
        ];
        m.funcs.push(mainf);
        m.validate().unwrap();
        m
    }

    fn observe(bin: &Binary, args: &[u32]) -> (u32, Vec<u32>) {
        let r = Machine::new(bin)
            .run(args, &[5, 9, 1], 3_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", bin.name));
        (r.ret, r.output)
    }

    #[test]
    fn presets_preserve_semantics_gcc() {
        let m = kitchen_sink();
        let cc = Compiler::new(CompilerKind::Gcc);
        let base = cc.compile_preset(&m, OptLevel::O0, Arch::X86).unwrap();
        let want: Vec<(u32, Vec<u32>)> = [[3u32, 1], [1234, 0], [0, 1], [99999, 2]]
            .iter()
            .map(|a| observe(&base, a))
            .collect();
        for level in OptLevel::ALL {
            let bin = cc.compile_preset(&m, level, Arch::X86).unwrap();
            bin.validate().unwrap();
            for (args, expect) in [[3u32, 1], [1234, 0], [0, 1], [99999, 2]].iter().zip(&want) {
                assert_eq!(&observe(&bin, args), expect, "{level} args {args:?}");
            }
        }
    }

    #[test]
    fn timed_compile_is_byte_identical() {
        // The telemetry hook must change *nothing* but the clock
        // readings: same binary bytes as the untimed path, every preset,
        // and the same typed error on invalid inputs.
        let m = kitchen_sink();
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            let cc = Compiler::new(kind);
            for level in OptLevel::ALL {
                let flags = cc.profile().preset(level);
                let plain = cc.compile(&m, &flags, Arch::X86).unwrap();
                let (timed, walls) = cc.compile_timed(&m, &flags, Arch::X86).unwrap();
                assert_eq!(timed, plain, "{kind:?} {level}");
                assert!(walls.check_seconds >= 0.0);
                assert!(walls.ast_seconds >= 0.0);
                assert!(walls.lower_seconds >= 0.0);
                assert!(walls.mir_seconds >= 0.0);
            }
            // Invalid flag vectors fail the same way.
            let n = cc.profile().n_flags();
            let all_on = vec![true; n];
            if cc.check(&m, &all_on).is_err() {
                assert!(matches!(
                    cc.compile_timed(&m, &all_on, Arch::X86),
                    Err(CompileError::InvalidFlags(_))
                ));
            }
        }
    }

    #[test]
    fn presets_preserve_semantics_llvm_all_arches() {
        let m = kitchen_sink();
        let cc = Compiler::new(CompilerKind::Llvm);
        for arch in Arch::ALL {
            let base = cc.compile_preset(&m, OptLevel::O0, arch).unwrap();
            let want = observe(&base, &[42, 1]);
            for level in [OptLevel::O2, OptLevel::O3, OptLevel::Os] {
                let bin = cc.compile_preset(&m, level, arch).unwrap();
                assert_eq!(observe(&bin, &[42, 1]), want, "{level} {arch}");
            }
        }
    }

    #[test]
    fn random_valid_flag_vectors_preserve_semantics() {
        use rand::prelude::*;
        let m = kitchen_sink();
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            let cc = Compiler::new(kind);
            let n = cc.profile().n_flags();
            let mut rng = StdRng::seed_from_u64(0xb1a5);
            let base = cc.compile_preset(&m, OptLevel::O0, Arch::X86).unwrap();
            let want = observe(&base, &[7, 1]);
            for trial in 0..24 {
                let raw: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
                let flags = cc.profile().constraints().repair(&raw, trial as u64);
                let bin = cc.compile(&m, &flags, Arch::X86).unwrap();
                assert_eq!(observe(&bin, &[7, 1]), want, "{kind} trial {trial}");
            }
        }
    }

    #[test]
    fn invalid_flags_are_rejected() {
        let m = kitchen_sink();
        let cc = Compiler::new(CompilerKind::Gcc);
        let mut flags = vec![false; cc.profile().n_flags()];
        // -fpartial-inlining without -finline-functions.
        flags[cc.profile().flag_index("-fpartial-inlining").unwrap()] = true;
        match cc.compile(&m, &flags, Arch::X86) {
            Err(CompileError::InvalidFlags(v)) => assert_eq!(v.len(), 1),
            other => panic!("expected InvalidFlags, got {other:?}"),
        }
    }

    #[test]
    fn optimization_changes_code_structure() {
        let m = kitchen_sink();
        let cc = Compiler::new(CompilerKind::Gcc);
        let o0 = cc.compile_preset(&m, OptLevel::O0, Arch::X86).unwrap();
        let o3 = cc.compile_preset(&m, OptLevel::O3, Arch::X86).unwrap();
        // O3 must look substantially different: fewer or equal functions
        // post-inlining is not modelled (all kept), but instruction count,
        // block structure and bytes must shift.
        assert_ne!(o0.insn_count(), o3.insn_count());
        let c0 = binrep::encode_binary(&o0);
        let c3 = binrep::encode_binary(&o3);
        assert_ne!(c0, c3);
        // The NCD fitness signal: O3 is further from O0 than O1 is (§4.2).
        let o1 = cc.compile_preset(&m, OptLevel::O1, Arch::X86).unwrap();
        let c1 = binrep::encode_binary(&o1);
        let d01 = lzc::ncd(&c0, &c1);
        let d03 = lzc::ncd(&c0, &c3);
        assert!(d03 > d01, "ncd(O0,O1)={d01} ncd(O0,O3)={d03}");
    }

    #[test]
    fn jump_tables_flag_produces_tables() {
        let m = kitchen_sink();
        let cc = Compiler::new(CompilerKind::Gcc);
        let with = cc.compile_preset(&m, OptLevel::O2, Arch::X86).unwrap();
        let has_table = |b: &Binary| {
            b.functions.iter().any(|f| {
                f.cfg
                    .blocks
                    .iter()
                    .any(|b| matches!(b.term, binrep::Terminator::JumpTable { .. }))
            })
        };
        assert!(has_table(&with));
        let without = cc.compile_preset(&m, OptLevel::O0, Arch::X86).unwrap();
        assert!(!has_table(&without));
    }

    #[test]
    fn vectorize_flag_produces_vector_ops() {
        let m = kitchen_sink();
        let cc = Compiler::new(CompilerKind::Gcc);
        let o3 = cc.compile_preset(&m, OptLevel::O3, Arch::X86).unwrap();
        let hist = binrep::opcode_histogram(&o3);
        assert!(
            hist.contains_key("paddd") || hist.contains_key("pmulld"),
            "{hist:?}"
        );
        let o1 = cc.compile_preset(&m, OptLevel::O1, Arch::X86).unwrap();
        let hist1 = binrep::opcode_histogram(&o1);
        assert!(!hist1.contains_key("pmulld"));
    }

    #[test]
    fn tail_call_flag_hides_call_edges() {
        let m = kitchen_sink();
        let cc = Compiler::new(CompilerKind::Gcc);
        let o2 = cc.compile_preset(&m, OptLevel::O2, Arch::X86).unwrap();
        let tail_calls = o2
            .functions
            .iter()
            .flat_map(|f| f.cfg.blocks.iter())
            .filter(|b| matches!(b.term, binrep::Terminator::TailCall(_)))
            .count();
        assert!(tail_calls > 0, "expected tail calls at O2");
        // The static call graph at O2 misses edges O0 sees.
        let o0 = cc.compile_preset(&m, OptLevel::O0, Arch::X86).unwrap();
        let edges = |b: &Binary| -> usize { b.call_graph().values().map(Vec::len).sum() };
        assert!(edges(&o2) < edges(&o0));
    }

    #[test]
    fn presets_differ_pairwise_in_bytes() {
        let m = kitchen_sink();
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            let cc = Compiler::new(kind);
            let encoded: Vec<Vec<u8>> = OptLevel::ALL
                .iter()
                .map(|&l| binrep::encode_binary(&cc.compile_preset(&m, l, Arch::X86).unwrap()))
                .collect();
            for i in 0..encoded.len() {
                for j in i + 1..encoded.len() {
                    assert_ne!(
                        encoded[i],
                        encoded[j],
                        "{kind}: {} == {}",
                        OptLevel::ALL[i],
                        OptLevel::ALL[j]
                    );
                }
            }
        }
    }

    #[test]
    fn compile_time_model_scales() {
        let m = kitchen_sink();
        let cc = Compiler::new(CompilerKind::Gcc);
        let o0 = cc.simulated_compile_seconds(&m, &cc.profile().preset(OptLevel::O0));
        let o3 = cc.simulated_compile_seconds(&m, &cc.profile().preset(OptLevel::O3));
        assert!(o3 > o0);
    }
}
