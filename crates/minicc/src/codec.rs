//! Canonical binary serialization of [`Module`] ASTs.
//!
//! The evaluation service's worker *processes* receive the module under
//! test over the wire (an `evald` `Job` frame), so the AST needs a real
//! byte encoding — the workspace's `serde` derives are offline no-op
//! stubs and never serialize anything. This codec is hand-written and
//! canonical: one byte sequence per module, little-endian integers,
//! length-prefixed strings and sequences, one tag byte per enum variant
//! in declaration order. Canonicality matters because the farm's
//! determinism proofs hash what travels; a wobbling encoding would
//! produce spurious cache splits.
//!
//! The decoder is defensive the same way the `evald` wire format is:
//! every read is bounds-checked, unknown tags and trailing garbage are
//! errors, and recursion (nested expressions/statements) is depth-capped
//! so a hostile payload cannot blow the stack.

use crate::ast::{BinOp, Expr, FuncDef, Global, LValue, Local, Module, Stmt};

/// Magic prefix of an encoded module (`MCC ` + format version).
const MAGIC: [u8; 4] = *b"MCC\x01";

/// Nesting bound for the decoder (expressions inside statements inside
/// statements…). Generated corpus programs nest a handful of levels;
/// anything deeper than this is garbage, not a program.
pub const MAX_DEPTH: usize = 64;

/// Decode failures. The encoder is total — only decoding can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input does not start with the `MCC` magic/version prefix.
    BadMagic,
    /// Input ended before the structure it promised.
    Truncated,
    /// An enum tag byte outside the known range.
    BadTag(&'static str, u8),
    /// A string was not valid UTF-8.
    BadString,
    /// Structure nests deeper than [`MAX_DEPTH`].
    TooDeep,
    /// Valid module followed by trailing bytes.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an encoded module (bad magic)"),
            CodecError::Truncated => write!(f, "encoded module is truncated"),
            CodecError::BadTag(what, tag) => write!(f, "unknown {what} tag {tag}"),
            CodecError::BadString => write!(f, "string is not valid UTF-8"),
            CodecError::TooDeep => write!(f, "module nests deeper than the decoder allows"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after module"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a module to its canonical byte form.
pub fn encode_module(m: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&MAGIC);
    put_str(&mut out, &m.name);
    put_len(&mut out, m.funcs.len());
    for f in &m.funcs {
        put_func(&mut out, f);
    }
    put_len(&mut out, m.globals.len());
    for g in &m.globals {
        put_str(&mut out, &g.name);
        put_len(&mut out, g.words.len());
        for w in &g.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out
}

/// Decode a module from bytes produced by [`encode_module`].
///
/// # Errors
///
/// Any structural defect — wrong magic, truncation, unknown tags,
/// invalid UTF-8, excessive nesting, or trailing bytes — is a
/// [`CodecError`]; the decoder never panics on hostile input.
pub fn decode_module(bytes: &[u8]) -> Result<Module, CodecError> {
    let mut r = Reader { buf: bytes, at: 0 };
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let name = r.string()?;
    let mut funcs = Vec::new();
    for _ in 0..r.len()? {
        funcs.push(r.func()?);
    }
    let mut globals = Vec::new();
    for _ in 0..r.len()? {
        let name = r.string()?;
        let mut words = Vec::new();
        for _ in 0..r.len()? {
            words.push(r.u32()?);
        }
        globals.push(Global { name, words });
    }
    if r.at != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - r.at));
    }
    Ok(Module {
        name,
        funcs,
        globals,
    })
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_func(out: &mut Vec<u8>, f: &FuncDef) {
    put_str(out, &f.name);
    put_len(out, f.params.len());
    for p in &f.params {
        put_str(out, p);
    }
    put_len(out, f.locals.len());
    for l in &f.locals {
        put_str(out, &l.name);
        match l.array {
            None => out.push(0),
            Some(n) => {
                out.push(1);
                put_len(out, n);
            }
        }
    }
    put_body(out, &f.body);
    out.push(u8::from(f.is_library));
}

fn put_body(out: &mut Vec<u8>, body: &[Stmt]) {
    put_len(out, body.len());
    for s in body {
        put_stmt(out, s);
    }
}

fn put_stmt(out: &mut Vec<u8>, s: &Stmt) {
    match s {
        Stmt::Assign(lv, e) => {
            out.push(0);
            put_lvalue(out, lv);
            put_expr(out, e);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            out.push(1);
            put_expr(out, cond);
            put_body(out, then_body);
            put_body(out, else_body);
        }
        Stmt::While { cond, body } => {
            out.push(2);
            put_expr(out, cond);
            put_body(out, body);
        }
        Stmt::For {
            var,
            start,
            end,
            step,
            body,
        } => {
            out.push(3);
            put_str(out, var);
            put_expr(out, start);
            put_expr(out, end);
            out.extend_from_slice(&step.to_le_bytes());
            put_body(out, body);
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            out.push(4);
            put_expr(out, scrutinee);
            put_len(out, cases.len());
            for (k, body) in cases {
                out.extend_from_slice(&k.to_le_bytes());
                put_body(out, body);
            }
            put_body(out, default);
        }
        Stmt::Return(e) => {
            out.push(5);
            put_expr(out, e);
        }
        Stmt::ExprStmt(e) => {
            out.push(6);
            put_expr(out, e);
        }
    }
}

fn put_lvalue(out: &mut Vec<u8>, lv: &LValue) {
    match lv {
        LValue::Var(v) => {
            out.push(0);
            put_str(out, v);
        }
        LValue::Global(g) => {
            out.push(1);
            put_str(out, g);
        }
        LValue::Index(a, i) => {
            out.push(2);
            put_str(out, a);
            put_expr(out, i);
        }
    }
}

fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Const(c) => {
            out.push(0);
            out.extend_from_slice(&c.to_le_bytes());
        }
        Expr::Var(v) => {
            out.push(1);
            put_str(out, v);
        }
        Expr::Global(g) => {
            out.push(2);
            put_str(out, g);
        }
        Expr::Index(a, i) => {
            out.push(3);
            put_str(out, a);
            put_expr(out, i);
        }
        Expr::Bin(op, a, b) => {
            out.push(4);
            out.push(*op as u8);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Not(a) => {
            out.push(5);
            put_expr(out, a);
        }
        Expr::Neg(a) => {
            out.push(6);
            put_expr(out, a);
        }
        Expr::Call(f, args) => {
            out.push(7);
            put_str(out, f);
            put_len(out, args.len());
            for a in args {
                put_expr(out, a);
            }
        }
        Expr::CallImport(f, args) => {
            out.push(8);
            put_str(out, f);
            put_len(out, args.len());
            for a in args {
                put_expr(out, a);
            }
        }
        Expr::Str(s) => {
            out.push(9);
            put_str(out, s);
        }
        Expr::AddrOf(n) => {
            out.push(10);
            put_str(out, n);
        }
    }
}

/// Bounds-checked cursor over the input.
struct Reader<'b> {
    buf: &'b [u8],
    at: usize,
}

impl<'b> Reader<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], CodecError> {
        let end = self.at.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// A sequence length. Sanity-capped by remaining input (every
    /// element is ≥ 1 byte), so a forged huge length cannot drive a
    /// pre-allocation.
    fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.at {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let n = self.len()?;
        let s = std::str::from_utf8(self.take(n)?).map_err(|_| CodecError::BadString)?;
        Ok(s.to_owned())
    }

    fn func(&mut self) -> Result<FuncDef, CodecError> {
        let name = self.string()?;
        let mut params = Vec::new();
        for _ in 0..self.len()? {
            params.push(self.string()?);
        }
        let mut locals = Vec::new();
        for _ in 0..self.len()? {
            let name = self.string()?;
            let array = match self.u8()? {
                0 => None,
                1 => Some(self.len()?),
                t => return Err(CodecError::BadTag("local-kind", t)),
            };
            locals.push(Local { name, array });
        }
        let body = self.body(0)?;
        let is_library = match self.u8()? {
            0 => false,
            1 => true,
            t => return Err(CodecError::BadTag("bool", t)),
        };
        Ok(FuncDef {
            name,
            params,
            locals,
            body,
            is_library,
        })
    }

    fn body(&mut self, depth: usize) -> Result<Vec<Stmt>, CodecError> {
        if depth > MAX_DEPTH {
            return Err(CodecError::TooDeep);
        }
        let mut body = Vec::new();
        for _ in 0..self.len()? {
            body.push(self.stmt(depth + 1)?);
        }
        Ok(body)
    }

    fn stmt(&mut self, depth: usize) -> Result<Stmt, CodecError> {
        if depth > MAX_DEPTH {
            return Err(CodecError::TooDeep);
        }
        Ok(match self.u8()? {
            0 => Stmt::Assign(self.lvalue(depth)?, self.expr(depth)?),
            1 => Stmt::If {
                cond: self.expr(depth)?,
                then_body: self.body(depth)?,
                else_body: self.body(depth)?,
            },
            2 => Stmt::While {
                cond: self.expr(depth)?,
                body: self.body(depth)?,
            },
            3 => Stmt::For {
                var: self.string()?,
                start: self.expr(depth)?,
                end: self.expr(depth)?,
                step: self.u32()?,
                body: self.body(depth)?,
            },
            4 => {
                let scrutinee = self.expr(depth)?;
                let mut cases = Vec::new();
                for _ in 0..self.len()? {
                    let k = self.u32()?;
                    cases.push((k, self.body(depth)?));
                }
                Stmt::Switch {
                    scrutinee,
                    cases,
                    default: self.body(depth)?,
                }
            }
            5 => Stmt::Return(self.expr(depth)?),
            6 => Stmt::ExprStmt(self.expr(depth)?),
            t => return Err(CodecError::BadTag("stmt", t)),
        })
    }

    fn lvalue(&mut self, depth: usize) -> Result<LValue, CodecError> {
        Ok(match self.u8()? {
            0 => LValue::Var(self.string()?),
            1 => LValue::Global(self.string()?),
            2 => LValue::Index(self.string()?, self.expr(depth)?),
            t => return Err(CodecError::BadTag("lvalue", t)),
        })
    }

    fn binop(&mut self) -> Result<BinOp, CodecError> {
        const OPS: [BinOp; 16] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ];
        let t = self.u8()?;
        OPS.get(t as usize)
            .copied()
            .ok_or(CodecError::BadTag("binop", t))
    }

    fn expr(&mut self, depth: usize) -> Result<Expr, CodecError> {
        if depth > MAX_DEPTH {
            return Err(CodecError::TooDeep);
        }
        let depth = depth + 1;
        Ok(match self.u8()? {
            0 => Expr::Const(self.u32()?),
            1 => Expr::Var(self.string()?),
            2 => Expr::Global(self.string()?),
            3 => Expr::Index(self.string()?, Box::new(self.expr(depth)?)),
            4 => {
                let op = self.binop()?;
                let a = self.expr(depth)?;
                let b = self.expr(depth)?;
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
            5 => Expr::Not(Box::new(self.expr(depth)?)),
            6 => Expr::Neg(Box::new(self.expr(depth)?)),
            7 => {
                let f = self.string()?;
                let mut args = Vec::new();
                for _ in 0..self.len()? {
                    args.push(self.expr(depth)?);
                }
                Expr::Call(f, args)
            }
            8 => {
                let f = self.string()?;
                let mut args = Vec::new();
                for _ in 0..self.len()? {
                    args.push(self.expr(depth)?);
                }
                Expr::CallImport(f, args)
            }
            9 => Expr::Str(self.string()?),
            10 => Expr::AddrOf(self.string()?),
            t => return Err(CodecError::BadTag("expr", t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A module exercising every statement, lvalue and expression
    /// variant plus a few binops from both halves of the table.
    fn kitchen_sink() -> Module {
        let mut m = Module::new("kitchen-sink");
        let mut f = FuncDef::new(
            "main",
            vec!["a".into(), "b".into()],
            vec![
                Stmt::Assign(LValue::Var("x".into()), Expr::Const(7)),
                Stmt::Assign(
                    LValue::Global("g".into()),
                    Expr::bin(BinOp::Xor, Expr::Var("a".into()), Expr::Global("g".into())),
                ),
                Stmt::Assign(
                    LValue::Index("buf".into(), Expr::Var("a".into())),
                    Expr::Index("buf".into(), Box::new(Expr::Const(0))),
                ),
                Stmt::If {
                    cond: Expr::bin(BinOp::Lt, Expr::Var("a".into()), Expr::Var("b".into())),
                    then_body: vec![Stmt::ExprStmt(Expr::Call(
                        "helper".into(),
                        vec![Expr::Neg(Box::new(Expr::Var("a".into())))],
                    ))],
                    else_body: vec![Stmt::ExprStmt(Expr::CallImport(
                        "puts".into(),
                        vec![Expr::Str("hi\u{2713}".into())],
                    ))],
                },
                Stmt::While {
                    cond: Expr::Not(Box::new(Expr::Var("x".into()))),
                    body: vec![Stmt::Assign(
                        LValue::Var("x".into()),
                        Expr::vc(BinOp::Sub, "x", 1),
                    )],
                },
                Stmt::For {
                    var: "i".into(),
                    start: Expr::Const(0),
                    end: Expr::Const(16),
                    step: 2,
                    body: vec![Stmt::Assign(
                        LValue::Index("buf".into(), Expr::Var("i".into())),
                        Expr::AddrOf("g".into()),
                    )],
                },
                Stmt::Switch {
                    scrutinee: Expr::Var("a".into()),
                    cases: vec![(0, vec![Stmt::Return(Expr::Const(0))]), (u32::MAX, vec![])],
                    default: vec![],
                },
                Stmt::Return(Expr::bin(BinOp::Shr, Expr::Var("x".into()), Expr::Const(3))),
            ],
        );
        f.local("x").local("i").local_array("buf", 16);
        m.funcs.push(f);
        let mut helper = FuncDef::new("helper", vec!["v".into()], vec![]);
        helper.is_library = true;
        m.funcs.push(helper);
        m.globals.push(Global {
            name: "g".into(),
            words: vec![1, 2, 3],
        });
        m
    }

    #[test]
    fn kitchen_sink_round_trips() {
        let m = kitchen_sink();
        let bytes = encode_module(&m);
        assert_eq!(decode_module(&bytes).unwrap(), m);
        // Canonical: encoding the decode reproduces the bytes.
        assert_eq!(encode_module(&decode_module(&bytes).unwrap()), bytes);
    }

    #[test]
    fn all_binops_round_trip() {
        use BinOp::*;
        for op in [
            Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Eq, Ne, Lt, Le, Gt, Ge,
        ] {
            let mut m = Module::new("ops");
            m.funcs.push(FuncDef::new(
                "main",
                vec![],
                vec![Stmt::Return(Expr::bin(op, Expr::Const(1), Expr::Const(2)))],
            ));
            assert_eq!(decode_module(&encode_module(&m)).unwrap(), m);
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_module(&kitchen_sink());
        for cut in 0..bytes.len() {
            let err = decode_module(&bytes[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, CodecError::Truncated | CodecError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_trailing_bytes_are_rejected() {
        let mut bytes = encode_module(&kitchen_sink());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(decode_module(&wrong), Err(CodecError::BadMagic));
        bytes.push(0);
        assert_eq!(decode_module(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tags_are_rejected_not_misread() {
        let mut m = Module::new("t");
        m.funcs.push(FuncDef::new(
            "main",
            vec![],
            vec![Stmt::Return(Expr::Const(1))],
        ));
        let bytes = encode_module(&m);
        // The statement tag byte sits right after the (empty) locals
        // list and body length; find it by searching for the Return tag
        // followed by the Const tag.
        let at = bytes
            .windows(2)
            .position(|w| w == [5, 0])
            .expect("return+const tags present");
        let mut bad = bytes.clone();
        bad[at] = 0xEE;
        assert!(matches!(
            decode_module(&bad),
            Err(CodecError::BadTag("stmt", 0xEE))
        ));
    }

    #[test]
    fn deep_nesting_is_capped_not_a_stack_overflow() {
        // Hand-build a payload with one function whose body is Return of
        // Not(Not(Not(...Const))) far past MAX_DEPTH.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        // name "d"
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'd');
        // 1 function
        bytes.extend_from_slice(&1u32.to_le_bytes());
        // func name "m", 0 params, 0 locals
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'm');
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        // body: 1 stmt, Return(...)
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(5);
        bytes.extend(std::iter::repeat_n(5u8, 10_000)); // Expr::Not, nested

        bytes.push(0); // Expr::Const
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(0); // is_library = false
        bytes.extend_from_slice(&0u32.to_le_bytes()); // 0 globals
        assert_eq!(decode_module(&bytes), Err(CodecError::TooDeep));
    }

    #[test]
    fn forged_length_cannot_force_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // name "length"
        assert_eq!(decode_module(&bytes), Err(CodecError::Truncated));
    }
}
