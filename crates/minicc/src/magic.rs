//! Granlund–Montgomery magic numbers for unsigned division by a constant
//! (PLDI '94, and Figure 3(a) of the paper: strength reduction rewrites
//! `x / c` into multiplication).
//!
//! The emitted sequence must be *exactly* equivalent — BinTuner's outputs
//! have to pass the program's test suite — so this is the real algorithm
//! (Hacker's Delight §10-8 `magicu`), not the paper's illustrative
//! approximation.

/// Magic constants for dividing a `u32` by `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MagicU32 {
    /// Multiplier.
    pub m: u32,
    /// Whether the "add" correction sequence is needed.
    pub add: bool,
    /// Post-shift amount.
    pub shift: u32,
}

/// Compute magic constants for division by `d`.
///
/// # Panics
///
/// Panics if `d < 2` (division by 0 and 1 need no magic).
pub fn magic_u32(d: u32) -> MagicU32 {
    assert!(d >= 2, "magic numbers need d >= 2");
    let d = d as u64;
    let mut add = false;
    // nc = largest value such that nc % d == d - 1 (HD 10-8).
    let two32 = 1u64 << 32;
    let nc = two32 - 1 - (two32 - d) % d;
    let two31 = 1u64 << 31;
    let mut p: u32 = 31;
    let mut q1 = two31 / nc;
    let mut r1 = two31 - q1 * nc;
    let mut q2 = (two31 - 1) / d;
    let mut r2 = (two31 - 1) - q2 * d;
    loop {
        p += 1;
        if r1 >= nc - r1 {
            q1 = 2 * q1 + 1;
            r1 = 2 * r1 - nc;
        } else {
            q1 *= 2;
            r1 *= 2;
        }
        if r2 + 1 >= d - r2 {
            if q2 >= two31 - 1 {
                add = true;
            }
            q2 = 2 * q2 + 1;
            r2 = 2 * r2 + 1 - d;
        } else {
            if q2 >= two31 {
                add = true;
            }
            q2 *= 2;
            r2 = 2 * r2 + 1;
        }
        let delta = d - 1 - r2;
        if !(p < 64 && (q1 < delta || (q1 == delta && r1 == 0))) {
            break;
        }
    }
    MagicU32 {
        m: (q2 + 1) as u32,
        add,
        shift: p - 32,
    }
}

/// Reference implementation of the emitted instruction sequence, used by
/// tests and by the peephole pass's own self-check.
pub fn divide_via_magic(n: u32, magic: MagicU32) -> u32 {
    let hi = (((n as u64) * (magic.m as u64)) >> 32) as u32;
    if magic.add {
        // q = (hi + ((n - hi) >> 1)) >> (shift - 1)
        let t = (n.wrapping_sub(hi) >> 1).wrapping_add(hi);
        t >> (magic.shift - 1)
    } else {
        hi >> magic.shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(d: u32) {
        let m = magic_u32(d);
        let samples = [
            0u32,
            1,
            2,
            d - 1,
            d,
            d.wrapping_add(1),
            d.wrapping_mul(2),
            0x7fff_ffff,
            0x8000_0000,
            0xffff_fffe,
            0xffff_ffff,
            12345,
            0x1234_5678,
            255,
            256,
            65535,
            65536,
        ];
        for &n in &samples {
            assert_eq!(divide_via_magic(n, m), n / d, "n={n} d={d} magic={m:?}");
        }
        // A deterministic pseudo-random sweep.
        let mut x = 0x243f6a88u32 ^ d;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            assert_eq!(divide_via_magic(x, m), x / d, "n={x} d={d} magic={m:?}");
        }
    }

    #[test]
    fn paper_example_255() {
        // Figure 3(a): x/255. (The paper shows an approximation; the real
        // magic constant differs but is exact.)
        check(255);
        let m = magic_u32(255);
        assert!(!m.add || m.shift >= 1);
    }

    #[test]
    fn small_divisors() {
        for d in 2..=100 {
            check(d);
        }
    }

    #[test]
    fn known_hard_divisors() {
        // Divisors known to require the add-correction path.
        for d in [7, 14, 19, 31, 37, 641, 6_700_417, 0xffff_fffb] {
            check(d);
        }
    }

    #[test]
    fn powers_of_two_still_work() {
        // The peephole pass prefers shifts for these, but magic must be
        // correct anyway.
        for k in 1..31 {
            check(1u32 << k);
        }
    }

    #[test]
    fn random_divisors() {
        let mut x = 0xb5297a4du32;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let d = (x % 0xffff_fff0).max(2);
            check(d);
        }
    }

    #[test]
    #[should_panic(expected = "d >= 2")]
    fn rejects_trivial_divisors() {
        magic_u32(1);
    }
}
