//! The mini-C source IR.
//!
//! A deliberately small C-like language — unsigned 32-bit scalars, word
//! arrays, functions, `if`/`while`/`for`/`switch` — rich enough to trigger
//! every optimization the paper discusses (loops to unroll and vectorize,
//! switches to lower as jump tables or binary search, small functions to
//! inline, early-exit functions to partially inline, string builtins).
//!
//! Structural conventions relied on by the optimizer:
//! * calls appear only in statement position (`x = f(..)`, `f(..)`,
//!   `return f(..)`), which the [`crate::ast::Module::validate`] check
//!   enforces — this keeps AST inlining a pure splice;
//! * a function is *inlinable* when `return` appears only as its final
//!   statement (see [`FuncDef::is_single_exit`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Binary operators. Comparisons yield 0/1 and are unsigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (division by zero yields 0 by language definition).
    Div,
    /// Unsigned remainder (modulo zero yields the dividend).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (count masked to 31).
    Shl,
    /// Logical right shift (count masked to 31).
    Shr,
    /// Equality (0/1).
    Eq,
    /// Inequality (0/1).
    Ne,
    /// Unsigned less-than (0/1).
    Lt,
    /// Unsigned less-or-equal (0/1).
    Le,
    /// Unsigned greater-than (0/1).
    Gt,
    /// Unsigned greater-or-equal (0/1).
    Ge,
}

impl BinOp {
    /// Whether this is a comparison producing 0/1.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
        )
    }

    /// Evaluate on concrete values (the language's constant semantics).
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b).unwrap_or(0),
            BinOp::Rem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.checked_shl(b & 31).unwrap_or(0),
            BinOp::Shr => a.checked_shr(b & 31).unwrap_or(0),
            BinOp::Eq => (a == b) as u32,
            BinOp::Ne => (a != b) as u32,
            BinOp::Lt => (a < b) as u32,
            BinOp::Le => (a <= b) as u32,
            BinOp::Gt => (a > b) as u32,
            BinOp::Ge => (a >= b) as u32,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// Constant.
    Const(u32),
    /// Scalar variable (parameter or local).
    Var(String),
    /// Global scalar (word 0 of a global).
    Global(String),
    /// Array element: `name[index]`. `name` is a local array or global.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Bitwise not.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Call to a program function (statement position only).
    Call(String, Vec<Expr>),
    /// Call to an imported library function (statement position only).
    CallImport(String, Vec<Expr>),
    /// Address of an interned string constant.
    Str(String),
    /// Address of a named local array or global.
    AddrOf(String),
}

impl Expr {
    /// Convenience: binary op from two exprs.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Convenience: `var op const`.
    pub fn vc(op: BinOp, var: &str, c: u32) -> Expr {
        Expr::bin(op, Expr::Var(var.into()), Expr::Const(c))
    }

    /// Whether the expression is free of calls (safe to duplicate /
    /// speculate — loads are always safe in this language).
    pub fn is_pure(&self) -> bool {
        match self {
            Expr::Call(..) | Expr::CallImport(..) => false,
            Expr::Const(_) | Expr::Var(_) | Expr::Global(_) | Expr::Str(_) | Expr::AddrOf(_) => {
                true
            }
            Expr::Index(_, i) => i.is_pure(),
            Expr::Bin(_, a, b) => a.is_pure() && b.is_pure(),
            Expr::Not(a) | Expr::Neg(a) => a.is_pure(),
        }
    }

    /// Collect variable names read by this expression into `out`.
    pub fn vars_read(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Index(_, i) => i.vars_read(out),
            Expr::Bin(_, a, b) => {
                a.vars_read(out);
                b.vars_read(out);
            }
            Expr::Not(a) | Expr::Neg(a) => a.vars_read(out),
            Expr::Call(_, args) | Expr::CallImport(_, args) => {
                for a in args {
                    a.vars_read(out);
                }
            }
            _ => {}
        }
    }

    /// Substitute every read of variable `name` with `replacement`.
    pub fn subst_var(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Var(v) if v == name => replacement.clone(),
            Expr::Index(arr, i) => {
                Expr::Index(arr.clone(), Box::new(i.subst_var(name, replacement)))
            }
            Expr::Bin(op, a, b) => Expr::bin(
                *op,
                a.subst_var(name, replacement),
                b.subst_var(name, replacement),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.subst_var(name, replacement))),
            Expr::Neg(a) => Expr::Neg(Box::new(a.subst_var(name, replacement))),
            Expr::Call(f, args) => Expr::Call(
                f.clone(),
                args.iter()
                    .map(|a| a.subst_var(name, replacement))
                    .collect(),
            ),
            Expr::CallImport(f, args) => Expr::CallImport(
                f.clone(),
                args.iter()
                    .map(|a| a.subst_var(name, replacement))
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    /// Rename every variable through `f` (inliner's fresh-name mapping).
    pub fn rename_vars(&self, f: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Var(v) => Expr::Var(f(v)),
            Expr::Index(arr, i) => Expr::Index(f(arr), Box::new(i.rename_vars(f))),
            Expr::AddrOf(a) => Expr::AddrOf(f(a)),
            Expr::Bin(op, a, b) => Expr::bin(*op, a.rename_vars(f), b.rename_vars(f)),
            Expr::Not(a) => Expr::Not(Box::new(a.rename_vars(f))),
            Expr::Neg(a) => Expr::Neg(Box::new(a.rename_vars(f))),
            Expr::Call(name, args) => Expr::Call(
                name.clone(),
                args.iter().map(|a| a.rename_vars(f)).collect(),
            ),
            Expr::CallImport(name, args) => Expr::CallImport(
                name.clone(),
                args.iter().map(|a| a.rename_vars(f)).collect(),
            ),
            other => other.clone(),
        }
    }

    /// Node count (used by inlining thresholds).
    pub fn size(&self) -> usize {
        match self {
            Expr::Index(_, i) => 1 + i.size(),
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            Expr::Not(a) | Expr::Neg(a) => 1 + a.size(),
            Expr::Call(_, args) | Expr::CallImport(_, args) => {
                2 + args.iter().map(Expr::size).sum::<usize>()
            }
            _ => 1,
        }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Global scalar.
    Global(String),
    /// Array element.
    Index(String, Expr),
}

impl LValue {
    /// Variable written (for `Var`), if any.
    pub fn written_var(&self) -> Option<&str> {
        match self {
            LValue::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// `lv = expr;`
    Assign(LValue, Expr),
    /// `if (cond) { .. } else { .. }` — cond is "non-zero is true".
    If {
        /// Condition expression.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (may be empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (var = start; var < end; var += step) { .. }`
    For {
        /// Induction variable (a declared local scalar).
        var: String,
        /// Initial value.
        start: Expr,
        /// Exclusive upper bound.
        end: Expr,
        /// Constant positive step.
        step: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `switch (scrutinee) { case k: ..; default: .. }` — no fallthrough.
    Switch {
        /// Value switched on.
        scrutinee: Expr,
        /// `(case value, body)` pairs, distinct values.
        cases: Vec<(u32, Vec<Stmt>)>,
        /// Default body.
        default: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Expr),
    /// Expression for effect (calls only).
    ExprStmt(Expr),
}

impl Stmt {
    /// Node count (used by inlining/unrolling thresholds).
    pub fn size(&self) -> usize {
        match self {
            Stmt::Assign(_, e) => 1 + e.size(),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => 1 + cond.size() + body_size(then_body) + body_size(else_body),
            Stmt::While { cond, body } => 1 + cond.size() + body_size(body),
            Stmt::For {
                start, end, body, ..
            } => 2 + start.size() + end.size() + body_size(body),
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                1 + scrutinee.size()
                    + cases.iter().map(|(_, b)| body_size(b)).sum::<usize>()
                    + body_size(default)
            }
            Stmt::Return(e) | Stmt::ExprStmt(e) => 1 + e.size(),
        }
    }

    /// Variables assigned anywhere in this statement (including loop vars).
    pub fn vars_written(&self, out: &mut BTreeSet<String>) {
        match self {
            Stmt::Assign(lv, _) => {
                if let Some(v) = lv.written_var() {
                    out.insert(v.to_string());
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.vars_written(out);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    s.vars_written(out);
                }
            }
            Stmt::For { var, body, .. } => {
                out.insert(var.clone());
                for s in body {
                    s.vars_written(out);
                }
            }
            Stmt::Switch { cases, default, .. } => {
                for s in cases.iter().flat_map(|(_, b)| b).chain(default) {
                    s.vars_written(out);
                }
            }
            Stmt::Return(_) | Stmt::ExprStmt(_) => {}
        }
    }

    /// Whether a `return` occurs anywhere inside.
    pub fn contains_return(&self) -> bool {
        match self {
            Stmt::Return(_) => true,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => then_body.iter().chain(else_body).any(Stmt::contains_return),
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                body.iter().any(Stmt::contains_return)
            }
            Stmt::Switch { cases, default, .. } => cases
                .iter()
                .flat_map(|(_, b)| b)
                .chain(default)
                .any(Stmt::contains_return),
            _ => false,
        }
    }

    /// Whether a call occurs anywhere inside.
    pub fn contains_call(&self) -> bool {
        fn expr_has_call(e: &Expr) -> bool {
            match e {
                Expr::Call(..) | Expr::CallImport(..) => true,
                Expr::Index(_, i) => expr_has_call(i),
                Expr::Bin(_, a, b) => expr_has_call(a) || expr_has_call(b),
                Expr::Not(a) | Expr::Neg(a) => expr_has_call(a),
                _ => false,
            }
        }
        match self {
            Stmt::Assign(LValue::Index(_, i), e) => expr_has_call(i) || expr_has_call(e),
            Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::ExprStmt(e) => expr_has_call(e),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => expr_has_call(cond) || then_body.iter().chain(else_body).any(Stmt::contains_call),
            Stmt::While { cond, body } => {
                expr_has_call(cond) || body.iter().any(Stmt::contains_call)
            }
            Stmt::For {
                start, end, body, ..
            } => expr_has_call(start) || expr_has_call(end) || body.iter().any(Stmt::contains_call),
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                expr_has_call(scrutinee)
                    || cases
                        .iter()
                        .flat_map(|(_, b)| b)
                        .chain(default)
                        .any(Stmt::contains_call)
            }
        }
    }
}

/// Total node count of a statement list.
pub fn body_size(body: &[Stmt]) -> usize {
    body.iter().map(Stmt::size).sum()
}

/// A local variable declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Local {
    /// Name (unique within the function, distinct from params).
    pub name: String,
    /// `Some(n)` for an `u32[n]` array, `None` for a scalar.
    pub array: Option<usize>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameter names (all scalar; at most 4).
    pub params: Vec<String>,
    /// Local declarations.
    pub locals: Vec<Local>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Whether this models a statically linked library function.
    pub is_library: bool,
}

impl FuncDef {
    /// A function with the given signature and body.
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Vec<Stmt>) -> FuncDef {
        FuncDef {
            name: name.into(),
            params,
            locals: Vec::new(),
            body,
            is_library: false,
        }
    }

    /// Declare a scalar local.
    pub fn local(&mut self, name: impl Into<String>) -> &mut Self {
        self.locals.push(Local {
            name: name.into(),
            array: None,
        });
        self
    }

    /// Declare an array local of `n` words.
    pub fn local_array(&mut self, name: impl Into<String>, n: usize) -> &mut Self {
        self.locals.push(Local {
            name: name.into(),
            array: Some(n),
        });
        self
    }

    /// Body size in AST nodes.
    pub fn size(&self) -> usize {
        body_size(&self.body)
    }

    /// Whether `return` only appears as the final top-level statement
    /// (the shape the AST inliner can splice).
    pub fn is_single_exit(&self) -> bool {
        let interior_returns = self
            .body
            .iter()
            .take(self.body.len().saturating_sub(1))
            .any(Stmt::contains_return);
        if interior_returns {
            return false;
        }
        match self.body.last() {
            Some(Stmt::Return(_)) => true,
            Some(last) => !last.contains_return(),
            None => true,
        }
    }
}

/// A global: `name` bound to a vector of initialized words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Initial contents (length ≥ 1; scalars have length 1).
    pub words: Vec<u32>,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Module (program) name, e.g. `"462.libquantum"`.
    pub name: String,
    /// Functions; the one named `main` is the entry point.
    pub funcs: Vec<FuncDef>,
    /// Globals.
    pub globals: Vec<Global>,
}

impl Module {
    /// An empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Look up a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Total AST size.
    pub fn size(&self) -> usize {
        self.funcs.iter().map(FuncDef::size).sum()
    }

    /// Structural validation: unique names, calls resolve, calls only in
    /// statement position, switch cases distinct, loop vars declared.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = BTreeSet::new();
        for f in &self.funcs {
            if !names.insert(&f.name) {
                return Err(format!("duplicate function {}", f.name));
            }
        }
        for f in &self.funcs {
            let mut vars: BTreeSet<&str> = f.params.iter().map(String::as_str).collect();
            for l in &f.locals {
                if !vars.insert(&l.name) {
                    return Err(format!("{}: duplicate variable {}", f.name, l.name));
                }
            }
            self.validate_body(f, &f.body)?;
        }
        Ok(())
    }

    fn validate_body(&self, f: &FuncDef, body: &[Stmt]) -> Result<(), String> {
        for s in body {
            self.validate_stmt(f, s)?;
        }
        Ok(())
    }

    fn validate_stmt(&self, f: &FuncDef, s: &Stmt) -> Result<(), String> {
        let check_top = |e: &Expr| -> Result<(), String> {
            // Calls allowed at top level of the expression only.
            let check_nested = |e: &Expr| {
                if e.is_pure() {
                    Ok(())
                } else {
                    Err(format!("{}: nested call in expression", f.name))
                }
            };
            match e {
                Expr::Call(name, args) => {
                    if self.func(name).is_none() {
                        return Err(format!("{}: call to unknown {}", f.name, name));
                    }
                    args.iter().try_for_each(check_nested)
                }
                Expr::CallImport(_, args) => args.iter().try_for_each(check_nested),
                other => check_nested(other),
            }
        };
        match s {
            Stmt::Assign(LValue::Index(_, i), e) => {
                check_nested_pure(f, i)?;
                check_top(e)
            }
            Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::ExprStmt(e) => check_top(e),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_nested_pure(f, cond)?;
                self.validate_body(f, then_body)?;
                self.validate_body(f, else_body)
            }
            Stmt::While { cond, body } => {
                check_nested_pure(f, cond)?;
                self.validate_body(f, body)
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                if !f.params.contains(var) && !f.locals.iter().any(|l| l.name == *var) {
                    return Err(format!("{}: undeclared loop var {}", f.name, var));
                }
                if *step == 0 {
                    return Err(format!("{}: zero loop step", f.name));
                }
                check_nested_pure(f, start)?;
                check_nested_pure(f, end)?;
                self.validate_body(f, body)
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                check_nested_pure(f, scrutinee)?;
                let mut seen = BTreeSet::new();
                for (v, b) in cases {
                    if !seen.insert(v) {
                        return Err(format!("{}: duplicate case {}", f.name, v));
                    }
                    self.validate_body(f, b)?;
                }
                self.validate_body(f, default)
            }
        }
    }
}

fn check_nested_pure(f: &FuncDef, e: &Expr) -> Result<(), String> {
    if e.is_pure() {
        Ok(())
    } else {
        Err(format!("{}: call in non-statement position", f.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_func() -> FuncDef {
        let mut f = FuncDef::new(
            "f",
            vec!["x".into()],
            vec![
                Stmt::Assign(LValue::Var("y".into()), Expr::vc(BinOp::Add, "x", 1)),
                Stmt::Return(Expr::Var("y".into())),
            ],
        );
        f.local("y");
        f
    }

    #[test]
    fn validate_accepts_wellformed() {
        let mut m = Module::new("t");
        m.funcs.push(sample_func());
        m.validate().unwrap();
    }

    #[test]
    fn validate_rejects_nested_call() {
        let mut m = Module::new("t");
        let mut f = sample_func();
        f.body[0] = Stmt::Assign(
            LValue::Var("y".into()),
            Expr::bin(BinOp::Add, Expr::Call("f".into(), vec![]), Expr::Const(1)),
        );
        m.funcs.push(f);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_callee() {
        let mut m = Module::new("t");
        let mut f = sample_func();
        f.body[0] = Stmt::ExprStmt(Expr::Call("missing".into(), vec![]));
        m.funcs.push(f);
        assert!(m.validate().is_err());
    }

    #[test]
    fn single_exit_detection() {
        assert!(sample_func().is_single_exit());
        let f2 = FuncDef::new(
            "g",
            vec!["x".into()],
            vec![
                Stmt::If {
                    cond: Expr::Var("x".into()),
                    then_body: vec![Stmt::Return(Expr::Const(1))],
                    else_body: vec![],
                },
                Stmt::Return(Expr::Const(0)),
            ],
        );
        assert!(!f2.is_single_exit());
    }

    #[test]
    fn subst_and_rename() {
        let e = Expr::vc(BinOp::Mul, "i", 3);
        let s = e.subst_var("i", &Expr::Const(7));
        assert_eq!(s, Expr::bin(BinOp::Mul, Expr::Const(7), Expr::Const(3)));
        let r = e.rename_vars(&|v: &str| format!("inl_{v}"));
        assert_eq!(r, Expr::vc(BinOp::Mul, "inl_i", 3));
    }

    #[test]
    fn vars_written_includes_loop_var() {
        let s = Stmt::For {
            var: "i".into(),
            start: Expr::Const(0),
            end: Expr::Const(10),
            step: 1,
            body: vec![Stmt::Assign(LValue::Var("acc".into()), Expr::Const(0))],
        };
        let mut w = BTreeSet::new();
        s.vars_written(&mut w);
        assert!(w.contains("i") && w.contains("acc"));
    }

    #[test]
    fn binop_eval_edge_cases() {
        assert_eq!(BinOp::Div.eval(10, 0), 0);
        assert_eq!(BinOp::Rem.eval(10, 0), 10);
        assert_eq!(BinOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Shl.eval(1, 33), 2); // masked to 1
    }
}
