//! Lowering from the mini-C AST to `binrep` machine code.
//!
//! One lowering function, many strategies: the [`EffectConfig`] decides
//! register allocation, if-conversion (branch-free `cmov`/`setcc`/`sbb`
//! forms, Figure 2 of the paper), switch lowering (jump table vs. binary
//! search vs. linear chain, §3.1.3), `loop`-instruction counted loops,
//! loop/SLP vectorization (Figure 3(c)), builtin expansion (Figure 3(d)),
//! and a set of *style bits* driven by the long tail of filler flags.
//!
//! Register conventions (the "ABI" of the mini ISA):
//! * arguments in `ecx, edx, esi, edi`; result in `eax`;
//! * `ebx`, `r12`–`r15` are callee-saved (used for promoted locals);
//! * `edx` doubles as the fixed spill scratch inside expressions;
//! * `ecx` is reserved for call arguments and the `loop` counter, so
//!   counted-loop bodies are restricted to call-free statements.

use crate::ast::{BinOp, Expr, FuncDef, LValue, Module, Stmt};
use crate::flags::EffectConfig;
use binrep::{
    Arch, Binary, Block, BlockId, Cond, FuncId, Function, Gpr, Insn, MemRef, Opcode, Operand,
    Terminator, Xmm,
};
use std::collections::BTreeMap;

/// Lower a module under the given effect configuration.
///
/// # Panics
///
/// Panics on malformed input (use [`Module::validate`] first) or on
/// functions with more than 4 parameters.
pub fn lower_module(module: &Module, eff: &EffectConfig, arch: Arch) -> Binary {
    let mut bin = Binary::new(module.name.clone(), arch);
    let mut func_ids = BTreeMap::new();
    for (i, f) in module.funcs.iter().enumerate() {
        func_ids.insert(f.name.clone(), FuncId(i as u32));
    }
    // Globals first: their addresses are compile-time constants.
    let mut globals = BTreeMap::new();
    for g in &module.globals {
        let addr = binrep::DATA_BASE + (bin.data.len() as i64) * 4;
        bin.data.extend_from_slice(&g.words);
        globals.insert(g.name.clone(), (addr, g.words.len()));
    }
    let mut strings: BTreeMap<String, i64> = BTreeMap::new();
    for f in &module.funcs {
        let id = func_ids[&f.name];
        let lowered = FnCx::lower(f, eff, arch, &func_ids, &globals, &mut strings, &mut bin);
        let mut lowered = lowered;
        lowered.id = id;
        bin.functions.push(lowered);
    }
    if let Some(&main) = func_ids.get("main") {
        bin.entry = main;
    }
    bin
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Slot(i32),
    Reg(Gpr),
}

struct FnCx<'a> {
    f: &'a FuncDef,
    eff: &'a EffectConfig,
    arch: Arch,
    func_ids: &'a BTreeMap<String, FuncId>,
    globals: &'a BTreeMap<String, (i64, usize)>,
    strings: &'a mut BTreeMap<String, i64>,
    bin: &'a mut Binary,
    cfg: binrep::Cfg,
    cur: BlockId,
    locs: BTreeMap<String, Loc>,
    arrays: BTreeMap<String, i32>, // local arrays: base slot offset
    pool: Vec<Gpr>,
    saved: Vec<Gpr>,
    frame: i32,
    epilogue: BlockId,
}

const ARG_REGS: [Gpr; 4] = [Gpr::Ecx, Gpr::Edx, Gpr::Esi, Gpr::Edi];

impl<'a> FnCx<'a> {
    #[allow(clippy::too_many_arguments)]
    fn lower(
        f: &'a FuncDef,
        eff: &'a EffectConfig,
        arch: Arch,
        func_ids: &'a BTreeMap<String, FuncId>,
        globals: &'a BTreeMap<String, (i64, usize)>,
        strings: &'a mut BTreeMap<String, i64>,
        bin: &'a mut Binary,
    ) -> Function {
        assert!(f.params.len() <= 4, "{}: too many params", f.name);
        let mut cfg = binrep::Cfg::new();
        let epilogue = cfg.fresh_id();
        cfg.push(Block::new(epilogue, Vec::new(), Terminator::Ret));
        let mut cx = FnCx {
            f,
            eff,
            arch,
            func_ids,
            globals,
            strings,
            bin,
            cfg,
            cur: BlockId(0),
            locs: BTreeMap::new(),
            arrays: BTreeMap::new(),
            pool: Vec::new(),
            saved: Vec::new(),
            frame: 0,
            epilogue,
        };
        cx.assign_locations();
        cx.emit_prologue();
        let body = f.body.clone();
        cx.lower_body(&body);
        // Fall off the end: return 0.
        cx.push(Insn::op2(Opcode::Mov, Gpr::Eax, 0i64));
        cx.set_term(Terminator::Jmp(epilogue));
        cx.emit_epilogue();
        let mut out = Function::new(FuncId(0), f.name.clone(), f.params.len());
        out.is_library = f.is_library;
        out.cfg = cx.cfg;
        out.cfg.remove_unreachable();
        out
    }

    fn is_leaf(&self) -> bool {
        !self.f.body.iter().any(Stmt::contains_call)
    }

    fn assign_locations(&mut self) {
        let leaf_params = self.eff.regalloc && self.is_leaf() && self.f.params.len() <= 2;
        let mut next_slot: i32 = -4;
        let alloc_slot = |words: usize, next: &mut i32| -> i32 {
            *next -= (words as i32 - 1) * 4;
            let s = *next;
            *next -= 4;
            s
        };
        // Params.
        for (i, p) in self.f.params.iter().enumerate() {
            if leaf_params {
                // Parked in esi/edi by the prologue.
                self.locs
                    .insert(p.clone(), Loc::Reg([Gpr::Esi, Gpr::Edi][i]));
            } else {
                let s = alloc_slot(1, &mut next_slot);
                self.locs.insert(p.clone(), Loc::Slot(s));
            }
        }
        // Promoted-register pool for locals.
        let mut promote: Vec<Gpr> = vec![Gpr::Ebx];
        if self.arch == Arch::X8664 {
            promote.extend([Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15]);
        }
        let mut promote = promote.into_iter();
        let locals: Vec<_> = if self.eff.style(8) {
            self.f.locals.iter().rev().collect()
        } else {
            self.f.locals.iter().collect()
        };
        for l in locals {
            match l.array {
                Some(n) => {
                    let s = alloc_slot(n.max(1), &mut next_slot);
                    self.arrays.insert(l.name.clone(), s);
                }
                None => {
                    if self.eff.regalloc {
                        if let Some(r) = promote.next() {
                            self.locs.insert(l.name.clone(), Loc::Reg(r));
                            self.saved.push(r);
                            continue;
                        }
                    }
                    let s = alloc_slot(1, &mut next_slot);
                    self.locs.insert(l.name.clone(), Loc::Slot(s));
                }
            }
        }
        self.frame = -next_slot - 4 + self.saved.len() as i32 * 4;
        // Expression register pool.
        let mut pool = vec![Gpr::Eax];
        if self.eff.regalloc {
            if !leaf_params {
                pool.push(Gpr::Esi);
                pool.push(Gpr::Edi);
            }
            if self.arch == Arch::X8664 {
                pool.extend([Gpr::R8, Gpr::R9, Gpr::R10, Gpr::R11]);
            }
        }
        if self.eff.style(3) && pool.len() > 1 {
            pool[1..].reverse();
        }
        self.pool = pool;
    }

    // ------------------------------------------------------------ emission

    fn push(&mut self, i: Insn) {
        self.cfg.block_mut(self.cur).insns.push(i);
    }

    fn set_term(&mut self, t: Terminator) {
        self.cfg.block_mut(self.cur).term = t;
    }

    fn new_block(&mut self) -> BlockId {
        let id = self.cfg.fresh_id();
        self.cfg.push(Block::new(id, Vec::new(), Terminator::Ret));
        id
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn emit_prologue(&mut self) {
        self.push(Insn::op1(Opcode::Push, Gpr::Ebp));
        self.push(Insn::op2(Opcode::Mov, Gpr::Ebp, Gpr::Esp));
        if self.eff.style(10) {
            self.push(Insn::op2(Opcode::And, Gpr::Esp, -16i64));
        }
        if self.frame > 0 {
            self.push(Insn::op2(Opcode::Sub, Gpr::Esp, self.frame as i64));
        }
        // Save callee-saved promoted registers into the top of the frame.
        let saved = self.saved.clone();
        let order: Vec<Gpr> = if self.eff.style(7) {
            saved.iter().rev().copied().collect()
        } else {
            saved.clone()
        };
        for r in &order {
            let off = self.saved_slot(*r);
            self.push(Insn::op2(Opcode::Mov, MemRef::base_disp(Gpr::Ebp, off), *r));
        }
        // Zero promoted locals (defined start state).
        for r in &saved {
            self.push(Insn::op2(Opcode::Xor, *r, *r));
        }
        // Spill or park params.
        let params: Vec<(String, Loc)> = self
            .f
            .params
            .iter()
            .map(|p| (p.clone(), self.locs[p]))
            .collect();
        for (i, (_, loc)) in params.iter().enumerate() {
            match loc {
                Loc::Slot(s) => self.push(Insn::op2(
                    Opcode::Mov,
                    MemRef::base_disp(Gpr::Ebp, *s),
                    ARG_REGS[i],
                )),
                Loc::Reg(r) => {
                    if *r != ARG_REGS[i] {
                        self.push(Insn::op2(Opcode::Mov, *r, ARG_REGS[i]));
                    }
                }
            }
        }
    }

    fn saved_slot(&self, r: Gpr) -> i32 {
        let idx = self.saved.iter().position(|&x| x == r).unwrap();
        -(self.frame - self.saved.len() as i32 * 4) - 4 * (idx as i32 + 1)
    }

    fn emit_epilogue(&mut self) {
        self.switch_to(self.epilogue);
        for r in self.saved.clone() {
            let off = self.saved_slot(r);
            self.push(Insn::op2(Opcode::Mov, r, MemRef::base_disp(Gpr::Ebp, off)));
        }
        if self.eff.style(11) {
            self.push(Insn::op2(
                Opcode::Lea,
                Gpr::Esp,
                MemRef::base_disp(Gpr::Ebp, 0),
            ));
        } else {
            self.push(Insn::op2(Opcode::Mov, Gpr::Esp, Gpr::Ebp));
        }
        self.push(Insn::op1(Opcode::Pop, Gpr::Ebp));
        if self.eff.style(13) {
            self.push(Insn::op0(Opcode::Nop));
        }
        self.set_term(Terminator::Ret);
    }

    // ------------------------------------------------------- expressions

    fn pool_reg(&self, depth: usize) -> Gpr {
        self.pool[depth.min(self.pool.len() - 1)]
    }

    fn home_operand(&self, var: &str) -> Operand {
        match self.locs.get(var) {
            Some(Loc::Reg(r)) => Operand::Reg(*r),
            Some(Loc::Slot(s)) => Operand::Mem(MemRef::base_disp(Gpr::Ebp, *s)),
            None => panic!("{}: unknown variable {}", self.f.name, var),
        }
    }

    fn global_addr(&self, name: &str) -> i64 {
        self.globals
            .get(name)
            .unwrap_or_else(|| panic!("{}: unknown global {}", self.f.name, name))
            .0
    }

    fn array_elem_const(&self, name: &str, k: u32) -> MemRef {
        if let Some(&base) = self.arrays.get(name) {
            MemRef::base_disp(Gpr::Ebp, base + (k as i32) * 4)
        } else {
            let addr = self.global_addr(name);
            MemRef::abs(addr as i32 + (k as i32) * 4)
        }
    }

    /// Leaf operands that can feed an ALU op directly.
    fn leaf_operand(&self, e: &Expr) -> Option<Operand> {
        match e {
            Expr::Const(v) if !self.eff.style(6) => Some(Operand::Imm(*v as i64)),
            Expr::Var(v) => match self.locs.get(v) {
                Some(Loc::Reg(r)) if self.eff.regalloc => Some(Operand::Reg(*r)),
                Some(Loc::Slot(s)) if self.eff.cse => {
                    Some(Operand::Mem(MemRef::base_disp(Gpr::Ebp, *s)))
                }
                _ => None,
            },
            Expr::Global(g) if self.eff.cse => {
                Some(Operand::Mem(MemRef::abs(self.global_addr(g) as i32)))
            }
            _ => None,
        }
    }

    fn cmp_cond(op: BinOp) -> Cond {
        match op {
            BinOp::Eq => Cond::E,
            BinOp::Ne => Cond::Ne,
            BinOp::Lt => Cond::B,
            BinOp::Le => Cond::Be,
            BinOp::Gt => Cond::A,
            BinOp::Ge => Cond::Ae,
            _ => unreachable!("not a comparison"),
        }
    }

    fn alu_op(op: BinOp) -> Opcode {
        match op {
            BinOp::Add => Opcode::Add,
            BinOp::Sub => Opcode::Sub,
            BinOp::Mul => Opcode::Imul,
            BinOp::Div => Opcode::Udiv,
            BinOp::Rem => Opcode::Urem,
            BinOp::And => Opcode::And,
            BinOp::Or => Opcode::Or,
            BinOp::Xor => Opcode::Xor,
            BinOp::Shl => Opcode::Shl,
            BinOp::Shr => Opcode::Shr,
            _ => unreachable!("not an ALU op"),
        }
    }

    /// Evaluate `e` into the pool register for `depth`; returns it.
    ///
    /// Callers never exceed the pool: deeper right-hand sides go through
    /// [`FnCx::eval_rhs`], which spills via the stack and the fixed `edx`
    /// scratch.
    fn eval(&mut self, e: &Expr, depth: usize) -> Gpr {
        debug_assert!(depth == 0 || depth < self.pool.len());
        let r = self.pool_reg(depth);
        self.eval_into(e, r, depth);
        r
    }

    /// Evaluate a right-hand side while `r` (holding the left value at
    /// `depth`) stays live. Returns the operand to feed the ALU op.
    fn eval_rhs(&mut self, b: &Expr, r: Gpr, depth: usize) -> Operand {
        if let Some(leaf) = self.leaf_operand(b) {
            return leaf;
        }
        if depth + 1 < self.pool.len() {
            return Operand::Reg(self.eval(b, depth + 1));
        }
        // Spill path: save the left value, evaluate into the same register,
        // park the result in edx, restore the left value.
        self.push(Insn::op1(Opcode::Push, r));
        self.eval_into(b, r, depth);
        self.push(Insn::op2(Opcode::Mov, Gpr::Edx, r));
        self.push(Insn::op1(Opcode::Pop, r));
        Operand::Reg(Gpr::Edx)
    }

    fn eval_into(&mut self, e: &Expr, r: Gpr, depth: usize) {
        match e {
            Expr::Const(0) if self.eff.style(1) => {
                self.push(Insn::op2(Opcode::Xor, r, r));
            }
            Expr::Const(v) => self.push(Insn::op2(Opcode::Mov, r, *v as i64)),
            Expr::Var(v) => {
                let home = self.home_operand(v);
                self.push(Insn::op2(Opcode::Mov, r, home));
            }
            Expr::Global(g) => {
                let addr = self.global_addr(g);
                self.push(Insn::op2(Opcode::Mov, r, MemRef::abs(addr as i32)));
            }
            Expr::Str(s) => {
                let addr = self.intern_string(s);
                self.push(Insn::op2(Opcode::Mov, r, addr));
            }
            Expr::AddrOf(name) => {
                if let Some(&base) = self.arrays.get(name) {
                    self.push(Insn::op2(Opcode::Lea, r, MemRef::base_disp(Gpr::Ebp, base)));
                } else {
                    let addr = self.global_addr(name);
                    self.push(Insn::op2(Opcode::Mov, r, addr));
                }
            }
            Expr::Index(name, idx) => {
                // Evaluate the index into this depth's register, then load.
                let mem = if let Expr::Const(k) = &**idx {
                    self.array_elem_const(name, *k)
                } else {
                    let ri = self.eval(idx, depth);
                    debug_assert_eq!(ri, r);
                    if let Some(&base) = self.arrays.get(name) {
                        MemRef::indexed(Some(Gpr::Ebp), ri, 4, base)
                    } else {
                        MemRef::indexed(None, ri, 4, self.global_addr(name) as i32)
                    }
                };
                self.push(Insn::op2(Opcode::Mov, r, mem));
            }
            Expr::Not(a) => {
                self.eval_into(a, r, depth);
                self.push(Insn::op1(Opcode::Not, r));
            }
            Expr::Neg(a) => {
                self.eval_into(a, r, depth);
                self.push(Insn::op1(Opcode::Neg, r));
            }
            Expr::Bin(op, a, b) => {
                let (a, b) =
                    if self.eff.style(2) && op.is_commutative() && a.is_pure() && b.is_pure() {
                        (b, a)
                    } else {
                        (a, b)
                    };
                self.eval_into(a, r, depth);
                let rhs = self.eval_rhs(b, r, depth);
                if op.is_cmp() {
                    self.push(Insn::op2(Opcode::Cmp, r, rhs));
                    self.push(Insn::op1(Opcode::Set(Self::cmp_cond(*op)), r));
                } else {
                    self.push(Insn::op2(Self::alu_op(*op), r, rhs));
                }
            }
            Expr::Call(..) | Expr::CallImport(..) => {
                panic!(
                    "{}: call in expression position survived to codegen",
                    self.f.name
                )
            }
        }
    }

    fn intern_string(&mut self, s: &str) -> i64 {
        if self.eff.merge_constants {
            if let Some(&addr) = self.strings.get(s) {
                return addr;
            }
        }
        let addr = self.bin.add_string(s);
        self.strings.insert(s.to_string(), addr);
        addr
    }

    // ------------------------------------------------------------- calls

    fn lower_call(&mut self, callee: &str, args: &[Expr], is_import: bool) {
        assert!(args.len() <= 4, "{}: too many call args", self.f.name);
        for a in args {
            let r = self.eval(a, 0);
            self.push(Insn::op1(Opcode::Push, r));
        }
        for i in (0..args.len()).rev() {
            self.push(Insn::op1(Opcode::Pop, ARG_REGS[i]));
        }
        if self.eff.style(4) {
            self.push(Insn::op0(Opcode::Nop));
        }
        if is_import {
            let id = self.bin.import_by_name(callee);
            self.push(Insn::call_import(id));
        } else {
            let id = self.func_ids[callee];
            self.push(Insn::call(id));
        }
    }

    // -------------------------------------------------------- statements

    fn lower_body(&mut self, body: &[Stmt]) {
        let mut i = 0;
        while i < body.len() {
            // SLP vectorization: consume runs of 4 adjacent stores.
            if self.eff.vectorize_slp {
                if let Some(consumed) = self.try_slp(&body[i..]) {
                    i += consumed;
                    continue;
                }
            }
            self.lower_stmt(&body[i]);
            i += 1;
        }
    }

    fn store_to(&mut self, lv: &LValue, r: Gpr) {
        match lv {
            LValue::Var(v) => {
                let home = self.home_operand(v);
                self.push(Insn::op2(Opcode::Mov, home, r));
            }
            LValue::Global(g) => {
                let addr = self.global_addr(g);
                self.push(Insn::op2(Opcode::Mov, MemRef::abs(addr as i32), r));
            }
            LValue::Index(name, idx) => {
                if let Expr::Const(k) = idx {
                    let mem = self.array_elem_const(name, *k);
                    self.push(Insn::op2(Opcode::Mov, mem, r));
                } else {
                    // Value in r; index via edx.
                    self.push(Insn::op1(Opcode::Push, r));
                    let ri = self.eval(idx, 0);
                    self.push(Insn::op2(Opcode::Mov, Gpr::Edx, ri));
                    let r2 = self.pool_reg(0);
                    self.push(Insn::op1(Opcode::Pop, r2));
                    let mem = if let Some(&base) = self.arrays.get(name) {
                        MemRef::indexed(Some(Gpr::Ebp), Gpr::Edx, 4, base)
                    } else {
                        MemRef::indexed(None, Gpr::Edx, 4, self.global_addr(name) as i32)
                    };
                    self.push(Insn::op2(Opcode::Mov, mem, r2));
                }
            }
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(lv, Expr::Call(name, args)) => {
                self.lower_call(name, args, false);
                self.store_to(lv, Gpr::Eax);
            }
            Stmt::Assign(lv, Expr::CallImport(name, args)) => {
                if self.try_builtin(Some(lv), name, args) {
                    return;
                }
                self.lower_call(name, args, true);
                self.store_to(lv, Gpr::Eax);
            }
            Stmt::Assign(lv, e) => {
                let r = self.eval(e, 0);
                self.store_to(lv, r);
            }
            Stmt::ExprStmt(Expr::Call(name, args)) => self.lower_call(name, args, false),
            Stmt::ExprStmt(Expr::CallImport(name, args)) => {
                if self.try_builtin(None, name, args) {
                    return;
                }
                self.lower_call(name, args, true);
            }
            Stmt::ExprStmt(e) => {
                // Pure expression for effect: still evaluate (realistic O0).
                let _ = self.eval(e, 0);
            }
            Stmt::Return(e) => {
                match e {
                    Expr::Call(name, args) => self.lower_call(name, args, false),
                    Expr::CallImport(name, args) => {
                        if !self.try_builtin(None, name, args) {
                            self.lower_call(name, args, true);
                        }
                    }
                    other => {
                        let r = self.eval(other, 0);
                        if r != Gpr::Eax {
                            self.push(Insn::op2(Opcode::Mov, Gpr::Eax, r));
                        }
                    }
                }
                let epi = self.epilogue;
                self.set_term(Terminator::Jmp(epi));
                let dead = self.new_block();
                self.switch_to(dead);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => self.lower_if(cond, then_body, else_body),
            Stmt::While { cond, body } => self.lower_while(cond, body),
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => self.lower_for(var, start, end, *step, body),
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => self.lower_switch(scrutinee, cases, default),
        }
    }

    /// Emit FLAGS for `cond` and return the branch condition to take when
    /// `cond` is true.
    fn lower_cond_flags(&mut self, cond: &Expr) -> Cond {
        if let Expr::Bin(op, a, b) = cond {
            if op.is_cmp() {
                let r = self.eval(a, 0);
                let rhs = self.eval_rhs(b, r, 0);
                self.push(Insn::op2(Opcode::Cmp, r, rhs));
                return Self::cmp_cond(*op);
            }
        }
        let r = self.eval(cond, 0);
        if self.eff.style(0) {
            self.push(Insn::op2(Opcode::Cmp, r, 0i64));
        } else {
            self.push(Insn::op2(Opcode::Test, r, r));
        }
        Cond::Ne
    }

    fn lower_if(&mut self, cond: &Expr, then_body: &[Stmt], else_body: &[Stmt]) {
        // Branch-free if-conversion (Figure 2 patterns).
        if self.eff.if_convert && self.try_if_convert(cond, then_body, else_body) {
            return;
        }
        let then_bb = self.new_block();
        let else_bb = self.new_block();
        let join = self.new_block();
        let c = self.lower_cond_flags(cond);
        self.set_term(Terminator::Branch {
            cond: c,
            then_bb,
            else_bb,
        });
        self.switch_to(then_bb);
        self.lower_body(then_body);
        self.set_term(Terminator::Jmp(join));
        self.switch_to(else_bb);
        self.lower_body(else_body);
        self.set_term(Terminator::Jmp(join));
        self.switch_to(join);
    }

    fn try_if_convert(&mut self, cond: &Expr, then_body: &[Stmt], else_body: &[Stmt]) -> bool {
        // Shape: if (a cmp b) { v = e1 } else { v = e2 }, all pure.
        let (op, ca, cb) = match cond {
            Expr::Bin(op, a, b) if op.is_cmp() && a.is_pure() && b.is_pure() => (*op, a, b),
            _ => return false,
        };
        let (lv, e1) = match then_body {
            [Stmt::Assign(lv, e)] if e.is_pure() => (lv, e),
            _ => return false,
        };
        let (lv2, e2) = match else_body {
            [Stmt::Assign(lv2, e)] if e.is_pure() => (lv2, Some(e)),
            [] => (lv, None),
            _ => return false,
        };
        let v = match (lv, lv2) {
            (LValue::Var(v), LValue::Var(v2)) if v == v2 => v.clone(),
            _ => return false,
        };
        let cc = Self::cmp_cond(op);
        // setcc/sbb special case: constants 1/0 with if-conversion2.
        if self.eff.if_convert2 {
            if let (Expr::Const(1), Some(Expr::Const(0))) = (e1, e2) {
                let r = self.eval(ca, 0);
                let rhs = self.eval_rhs(cb, r, 0);
                self.push(Insn::op2(Opcode::Cmp, r, rhs));
                match cc {
                    Cond::B => {
                        // sbb r,r → -CF; neg → CF.
                        self.push(Insn::op2(Opcode::Sbb, r, r));
                        self.push(Insn::op1(Opcode::Neg, r));
                    }
                    Cond::Ae => {
                        self.push(Insn::op2(Opcode::Sbb, r, r));
                        self.push(Insn::op1(Opcode::Inc, r));
                    }
                    _ => {
                        self.push(Insn::op1(Opcode::Set(cc), r));
                    }
                }
                self.store_to(&LValue::Var(v), r);
                return true;
            }
        }
        // General cmov template. The else/then values are both computed
        // (they are pure), then a conditional move selects.
        // Stack discipline: else-val pushed, then-val pushed, cmp, pops.
        let e2 = e2.cloned().unwrap_or(Expr::Var(v.clone()));
        let r = self.eval(&e2, 0);
        self.push(Insn::op1(Opcode::Push, r));
        let r1 = self.eval(e1, 0);
        self.push(Insn::op1(Opcode::Push, r1));
        let rc = self.eval(ca, 0);
        let rhs = self.eval_rhs(cb, rc, 0);
        self.push(Insn::op2(Opcode::Cmp, rc, rhs));
        // Pops do not touch FLAGS.
        self.push(Insn::op1(Opcode::Pop, Gpr::Edx)); // then-value
        let r0 = self.pool_reg(0);
        self.push(Insn::op1(Opcode::Pop, r0)); // else-value
        self.push(Insn::op2(Opcode::Cmov(cc), r0, Gpr::Edx));
        self.store_to(&LValue::Var(v), r0);
        true
    }

    fn lower_while(&mut self, cond: &Expr, body: &[Stmt]) {
        if self.eff.style(12) {
            // Rotated: if (cond) { do body while (cond) }
            let body_bb = self.new_block();
            let exit = self.new_block();
            let c = self.lower_cond_flags(cond);
            self.set_term(Terminator::Branch {
                cond: c,
                then_bb: body_bb,
                else_bb: exit,
            });
            self.switch_to(body_bb);
            self.lower_body(body);
            let c2 = self.lower_cond_flags(cond);
            self.set_term(Terminator::Branch {
                cond: c2,
                then_bb: body_bb,
                else_bb: exit,
            });
            self.switch_to(exit);
        } else {
            let head = self.new_block();
            let body_bb = self.new_block();
            let exit = self.new_block();
            self.set_term(Terminator::Jmp(head));
            self.switch_to(head);
            if self.eff.align_loops > 0 {
                for _ in 0..(self.eff.align_loops / 2) {
                    self.push(Insn::op0(Opcode::Nop));
                }
            }
            let c = self.lower_cond_flags(cond);
            self.set_term(Terminator::Branch {
                cond: c,
                then_bb: body_bb,
                else_bb: exit,
            });
            self.switch_to(body_bb);
            self.lower_body(body);
            self.set_term(Terminator::Jmp(head));
            self.switch_to(exit);
        }
    }

    fn lower_for(&mut self, var: &str, start: &Expr, end: &Expr, step: u32, body: &[Stmt]) {
        // Vectorizable?
        if self.eff.vectorize_loops && step == 1 && self.try_vectorize(var, start, end, body) {
            return;
        }
        // Counted loop via the `loop` instruction (-fbranch-count-reg)?
        if self.eff.branch_count_reg {
            if let (Expr::Const(s0), Expr::Const(e0)) = (start, end) {
                if e0 > s0 {
                    let n = (e0 - s0).div_ceil(step);
                    let mut reads = std::collections::BTreeSet::new();
                    for s in body {
                        let mut w = std::collections::BTreeSet::new();
                        s.vars_written(&mut w);
                        reads.extend(w);
                    }
                    let body_mentions_var = {
                        let mut mentioned = false;
                        for s in body {
                            let mut r = std::collections::BTreeSet::new();
                            collect_stmt_reads(s, &mut r);
                            if r.contains(var) {
                                mentioned = true;
                            }
                        }
                        mentioned || reads.contains(var)
                    };
                    let has_control = body.iter().any(|s| {
                        s.contains_call()
                            || s.contains_return()
                            || matches!(
                                s,
                                Stmt::For { .. } | Stmt::While { .. } | Stmt::Switch { .. }
                            )
                    });
                    if !body_mentions_var && !has_control && n >= 1 {
                        let body_bb = self.new_block();
                        let exit = self.new_block();
                        self.push(Insn::op2(Opcode::Mov, Gpr::Ecx, n as i64));
                        self.set_term(Terminator::Jmp(body_bb));
                        self.switch_to(body_bb);
                        self.lower_body(body);
                        self.set_term(Terminator::LoopBack {
                            body: body_bb,
                            exit,
                        });
                        self.switch_to(exit);
                        // The loop var's final value, for later readers.
                        let fin = s0.wrapping_add(n.wrapping_mul(step));
                        let r = self.eval(&Expr::Const(fin), 0);
                        self.store_to(&LValue::Var(var.to_string()), r);
                        return;
                    }
                }
            }
        }
        // var = start; while (var < end) { body; var += step }
        let r = self.eval(start, 0);
        self.store_to(&LValue::Var(var.to_string()), r);
        let incr = Stmt::Assign(
            LValue::Var(var.to_string()),
            Expr::bin(BinOp::Add, Expr::Var(var.to_string()), Expr::Const(step)),
        );
        let cond = Expr::bin(BinOp::Lt, Expr::Var(var.to_string()), end.clone());
        let mut full = body.to_vec();
        full.push(incr);
        // Reuse the while lowering (incl. rotation style).
        self.lower_while_no_init(&cond, &full, var, step);
    }

    fn lower_while_no_init(&mut self, cond: &Expr, body: &[Stmt], var: &str, step: u32) {
        // Identical to lower_while, but the increment can use lea/inc per
        // style bits; we detect the trailing increment we just appended.
        let use_lea = self.eff.style(5);
        let use_inc = self.eff.style(9) && step == 1;
        if !(use_lea || use_inc) {
            self.lower_while(cond, body);
            return;
        }
        let (body_stmts, _incr) = body.split_at(body.len() - 1);
        let emit_incr = |cx: &mut FnCx<'_>| {
            let home = cx.home_operand(var);
            match home {
                Operand::Reg(r) if use_lea => {
                    cx.push(Insn::op2(Opcode::Lea, r, MemRef::base_disp(r, step as i32)));
                }
                Operand::Reg(r) if use_inc => {
                    cx.push(Insn::op1(Opcode::Inc, r));
                }
                Operand::Mem(m) if use_inc => {
                    cx.push(Insn::op1(Opcode::Inc, m));
                }
                _ => {
                    let r = cx.eval(
                        &Expr::bin(BinOp::Add, Expr::Var(var.to_string()), Expr::Const(step)),
                        0,
                    );
                    cx.store_to(&LValue::Var(var.to_string()), r);
                }
            }
        };
        let head = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.set_term(Terminator::Jmp(head));
        self.switch_to(head);
        let c = self.lower_cond_flags(cond);
        self.set_term(Terminator::Branch {
            cond: c,
            then_bb: body_bb,
            else_bb: exit,
        });
        self.switch_to(body_bb);
        self.lower_body(body_stmts);
        emit_incr(self);
        self.set_term(Terminator::Jmp(head));
        self.switch_to(exit);
    }

    fn lower_switch(&mut self, scrutinee: &Expr, cases: &[(u32, Vec<Stmt>)], default: &[Stmt]) {
        let exit = self.new_block();
        let default_bb = self.new_block();
        let case_bbs: Vec<BlockId> = cases.iter().map(|_| self.new_block()).collect();
        let r = self.eval(scrutinee, 0);

        let min = cases.iter().map(|(v, _)| *v).min().unwrap_or(0);
        let max = cases.iter().map(|(v, _)| *v).max().unwrap_or(0);
        let span = (max - min) as usize + 1;
        let dense = !cases.is_empty() && span <= 3 * cases.len() && span <= 64;

        if self.eff.jump_tables && dense && cases.len() >= 3 {
            // Bounds check + jump table (§3.1.3, the O(1) lowering).
            if min > 0 {
                self.push(Insn::op2(Opcode::Sub, r, min as i64));
            }
            self.push(Insn::op2(Opcode::Cmp, r, span as i64));
            let table_bb = self.new_block();
            self.set_term(Terminator::Branch {
                cond: Cond::Ae,
                then_bb: default_bb,
                else_bb: table_bb,
            });
            self.switch_to(table_bb);
            let mut targets = vec![default_bb; span];
            for ((v, _), bb) in cases.iter().zip(&case_bbs) {
                targets[(*v - min) as usize] = *bb;
            }
            self.set_term(Terminator::JumpTable { index: r, targets });
        } else if self.eff.regalloc && cases.len() >= 4 {
            // Binary search over sorted case values (§3.1.3: GCC and LLVM
            // fall back to this for sparse switches).
            let mut sorted: Vec<(u32, BlockId)> = cases
                .iter()
                .zip(&case_bbs)
                .map(|((v, _), bb)| (*v, *bb))
                .collect();
            sorted.sort_by_key(|(v, _)| *v);
            self.emit_bsearch(r, &sorted, default_bb);
        } else {
            // Linear compare chain.
            let mut next = self.cur;
            for ((v, _), bb) in cases.iter().zip(&case_bbs) {
                self.switch_to(next);
                self.push(Insn::op2(Opcode::Cmp, r, *v as i64));
                next = self.new_block();
                self.set_term(Terminator::Branch {
                    cond: Cond::E,
                    then_bb: *bb,
                    else_bb: next,
                });
            }
            self.switch_to(next);
            self.set_term(Terminator::Jmp(default_bb));
        }

        for ((_, body), bb) in cases.iter().zip(&case_bbs) {
            self.switch_to(*bb);
            self.lower_body(body);
            self.set_term(Terminator::Jmp(exit));
        }
        self.switch_to(default_bb);
        self.lower_body(default);
        self.set_term(Terminator::Jmp(exit));
        self.switch_to(exit);
    }

    fn emit_bsearch(&mut self, r: Gpr, sorted: &[(u32, BlockId)], default_bb: BlockId) {
        if sorted.len() <= 2 {
            for (v, bb) in sorted {
                self.push(Insn::op2(Opcode::Cmp, r, *v as i64));
                let next = self.new_block();
                self.set_term(Terminator::Branch {
                    cond: Cond::E,
                    then_bb: *bb,
                    else_bb: next,
                });
                self.switch_to(next);
            }
            self.set_term(Terminator::Jmp(default_bb));
            return;
        }
        let mid = sorted.len() / 2;
        let (pivot, pivot_bb) = sorted[mid];
        self.push(Insn::op2(Opcode::Cmp, r, pivot as i64));
        let eq_bb = pivot_bb;
        let lo_bb = self.new_block();
        let probe = self.new_block();
        self.set_term(Terminator::Branch {
            cond: Cond::E,
            then_bb: eq_bb,
            else_bb: probe,
        });
        self.switch_to(probe);
        let hi_bb = self.new_block();
        self.push(Insn::op2(Opcode::Cmp, r, pivot as i64));
        self.set_term(Terminator::Branch {
            cond: Cond::B,
            then_bb: lo_bb,
            else_bb: hi_bb,
        });
        self.switch_to(lo_bb);
        self.emit_bsearch(r, &sorted[..mid], default_bb);
        self.switch_to(hi_bb);
        self.emit_bsearch(r, &sorted[mid + 1..], default_bb);
    }

    // ------------------------------------------------------ vectorization

    /// Try to vectorize `for (var = start; var < end; var++) body`.
    /// Handles element-wise maps and additive reductions.
    fn try_vectorize(&mut self, var: &str, start: &Expr, end: &Expr, body: &[Stmt]) -> bool {
        let end_leaf = matches!(end, Expr::Const(_) | Expr::Var(_));
        if !end_leaf || !matches!(start, Expr::Const(_) | Expr::Var(_)) {
            return false;
        }
        enum Plan {
            Map {
                dst: String,
                a: String,
                b: String,
                op: Opcode,
            },
            Reduce {
                acc: String,
                a: String,
            },
        }
        let plan = match body {
            [Stmt::Assign(LValue::Index(dst, di), e)] => match e {
                Expr::Bin(op, l, rgt)
                    if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul)
                        && matches!(di, Expr::Var(v) if v == var) =>
                {
                    match (&**l, &**rgt) {
                        (Expr::Index(a, ia), Expr::Index(b, ib))
                            if matches!(&**ia, Expr::Var(v) if v == var)
                                && matches!(&**ib, Expr::Var(v) if v == var) =>
                        {
                            let vop = match op {
                                BinOp::Add => Opcode::Vadd,
                                BinOp::Sub => Opcode::Vsub,
                                _ => Opcode::Vmul,
                            };
                            Plan::Map {
                                dst: dst.clone(),
                                a: a.clone(),
                                b: b.clone(),
                                op: vop,
                            }
                        }
                        _ => return false,
                    }
                }
                _ => return false,
            },
            [Stmt::Assign(LValue::Var(acc), Expr::Bin(BinOp::Add, l, rgt))] => {
                match (&**l, &**rgt) {
                    (Expr::Var(a0), Expr::Index(arr, i))
                        if a0 == acc && matches!(&**i, Expr::Var(v) if v == var) =>
                    {
                        Plan::Reduce {
                            acc: acc.clone(),
                            a: arr.clone(),
                        }
                    }
                    _ => return false,
                }
            }
            _ => return false,
        };
        // Arrays must be known.
        let known = |n: &str| self.arrays.contains_key(n) || self.globals.contains_key(n);
        let arrays_ok = match &plan {
            Plan::Map { dst, a, b, .. } => known(dst) && known(a) && known(b),
            Plan::Reduce { a, .. } => known(a),
        };
        if !arrays_ok {
            return false;
        }

        // var = start
        let r = self.eval(start, 0);
        self.store_to(&LValue::Var(var.to_string()), r);

        let vhead = self.new_block();
        let vbody = self.new_block();
        let shead = self.new_block(); // scalar remainder entry
        if let Plan::Reduce { .. } = plan {
            // Zero the vector accumulator.
            self.push(Insn::op2(Opcode::Vsub, Xmm(7), Xmm(7)));
        }
        self.set_term(Terminator::Jmp(vhead));

        // vhead: if (var + 4 <= end) goto vbody else shead
        self.switch_to(vhead);
        let r = self.eval(&Expr::Var(var.to_string()), 0);
        self.push(Insn::op2(Opcode::Add, r, 4i64));
        // `end` is Const or Var (checked above) — address it directly.
        let end_op = match end {
            Expr::Const(c) => Operand::Imm(*c as i64),
            Expr::Var(v) => self.home_operand(v),
            _ => unreachable!(),
        };
        self.push(Insn::op2(Opcode::Cmp, r, end_op));
        self.set_term(Terminator::Branch {
            cond: Cond::Be,
            then_bb: vbody,
            else_bb: shead,
        });

        // vbody
        self.switch_to(vbody);
        self.push(Insn::op2(Opcode::Mov, Gpr::Edx, self.home_operand(var)));
        let elem_mem = |cx: &FnCx<'_>, name: &str| -> MemRef {
            if let Some(&base) = cx.arrays.get(name) {
                MemRef::indexed(Some(Gpr::Ebp), Gpr::Edx, 4, base)
            } else {
                MemRef::indexed(None, Gpr::Edx, 4, cx.global_addr(name) as i32)
            }
        };
        match &plan {
            Plan::Map { dst, a, b, op } => {
                let ma = elem_mem(self, a);
                let mb = elem_mem(self, b);
                let md = elem_mem(self, dst);
                self.push(Insn::op2(Opcode::Vload, Xmm(0), ma));
                self.push(Insn::op2(Opcode::Vload, Xmm(1), mb));
                self.push(Insn::op2(*op, Xmm(0), Xmm(1)));
                self.push(Insn::op2(Opcode::Vstore, md, Xmm(0)));
            }
            Plan::Reduce { a, .. } => {
                let ma = elem_mem(self, a);
                self.push(Insn::op2(Opcode::Vload, Xmm(6), ma));
                self.push(Insn::op2(Opcode::Vadd, Xmm(7), Xmm(6)));
            }
        }
        // var += 4
        let r = self.eval(
            &Expr::bin(BinOp::Add, Expr::Var(var.to_string()), Expr::Const(4)),
            0,
        );
        self.store_to(&LValue::Var(var.to_string()), r);
        self.set_term(Terminator::Jmp(vhead));

        // Scalar remainder (plus reduction merge).
        self.switch_to(shead);
        if let Plan::Reduce { acc, .. } = &plan {
            let r0 = self.pool_reg(0);
            self.push(Insn::op2(Opcode::Vhsum, r0, Operand::Vec(Xmm(7))));
            self.push(Insn::op2(Opcode::Mov, Gpr::Edx, r0));
            let r = self.eval(&Expr::Var(acc.clone()), 0);
            self.push(Insn::op2(Opcode::Add, r, Gpr::Edx));
            self.store_to(&LValue::Var(acc.clone()), r);
        }
        let cond = Expr::bin(BinOp::Lt, Expr::Var(var.to_string()), end.clone());
        let mut full = body.to_vec();
        full.push(Stmt::Assign(
            LValue::Var(var.to_string()),
            Expr::bin(BinOp::Add, Expr::Var(var.to_string()), Expr::Const(1)),
        ));
        self.lower_while(&cond, &full);
        true
    }

    /// SLP vectorization on straight-line code: four adjacent stores to
    /// consecutive constant indices become one vector store. Two shapes:
    ///
    /// 1. `arr[k..k+4] = const` — the constants are packed into the data
    ///    section and loaded with a single vector load;
    /// 2. `c[k+j] = a[k+j] op b[k+j]` (`j = 0..4`) — the shape a fully
    ///    unrolled element-wise loop takes after constant propagation.
    ///
    /// Returns the number of statements consumed.
    fn try_slp(&mut self, stmts: &[Stmt]) -> Option<usize> {
        if stmts.len() < 4 {
            return None;
        }
        let known =
            |cx: &FnCx<'_>, n: &str| cx.arrays.contains_key(n) || cx.globals.contains_key(n);
        // Pattern 1: arr[k..k+4] = consts.
        'consts: {
            let mut consts = Vec::new();
            let mut arr0: Option<(&str, u32)> = None;
            for (j, s) in stmts.iter().take(4).enumerate() {
                match s {
                    Stmt::Assign(LValue::Index(arr, Expr::Const(k)), Expr::Const(v)) => {
                        match arr0 {
                            None => arr0 = Some((arr, *k)),
                            Some((a0, k0)) => {
                                if a0 != arr || *k != k0 + j as u32 {
                                    break 'consts;
                                }
                            }
                        }
                        consts.push(*v);
                    }
                    _ => break 'consts,
                }
            }
            let Some((arr, k0)) = arr0 else { break 'consts };
            if !known(self, arr) {
                break 'consts;
            }
            let arr = arr.to_string();
            // Intern the 4-constant pack in the data section.
            let dedup = self.eff.merge_all_constants;
            let base = self.bin.add_data_word(consts[0], dedup);
            for &c in &consts[1..] {
                self.bin.add_data_word(c, false);
            }
            let pack_mem = MemRef::abs(base as i32);
            let dst = self.array_elem_const(&arr, k0);
            self.push(Insn::op2(Opcode::Vload, Xmm(0), pack_mem));
            self.push(Insn::op2(Opcode::Vstore, dst, Xmm(0)));
            return Some(4);
        }
        // Pattern 2: c[k+j] = a[k+j] op b[k+j].
        let mut shape: Option<(&str, &str, &str, BinOp, u32)> = None;
        for (j, s) in stmts.iter().take(4).enumerate() {
            let (c, k, op, a, ia, b, ib) = match s {
                Stmt::Assign(LValue::Index(c, Expr::Const(k)), Expr::Bin(op, l, r)) => {
                    match (&**l, &**r) {
                        (Expr::Index(a, ia), Expr::Index(b, ib)) => (c, *k, *op, a, ia, b, ib),
                        _ => return None,
                    }
                }
                _ => return None,
            };
            if !matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) {
                return None;
            }
            let (ka, kb) = match (&**ia, &**ib) {
                (Expr::Const(ka), Expr::Const(kb)) => (*ka, *kb),
                _ => return None,
            };
            match &shape {
                None => {
                    if ka != k || kb != k {
                        return None;
                    }
                    shape = Some((c, a, b, op, k));
                }
                Some((c0, a0, b0, op0, k0)) => {
                    let expect = k0 + j as u32;
                    if c != *c0
                        || a != *a0
                        || b != *b0
                        || op != *op0
                        || k != expect
                        || ka != expect
                        || kb != expect
                    {
                        return None;
                    }
                }
            }
        }
        let (c, a, b, op, k0) = shape?;
        if !known(self, c) || !known(self, a) || !known(self, b) {
            return None;
        }
        // Overlap safety: same-index element-wise ops are safe even when
        // arrays alias, because loads happen before the store per group —
        // but only if c is not read as a or b in the *same* group after
        // being written. Distinct arrays avoid the question entirely.
        if c == a || c == b {
            return None;
        }
        let (c, a, b) = (c.to_string(), a.to_string(), b.to_string());
        let vop = match op {
            BinOp::Add => Opcode::Vadd,
            BinOp::Sub => Opcode::Vsub,
            _ => Opcode::Vmul,
        };
        let ma = self.array_elem_const(&a, k0);
        let mb = self.array_elem_const(&b, k0);
        let mc = self.array_elem_const(&c, k0);
        self.push(Insn::op2(Opcode::Vload, Xmm(0), ma));
        self.push(Insn::op2(Opcode::Vload, Xmm(1), mb));
        self.push(Insn::op2(vop, Xmm(0), Xmm(1)));
        self.push(Insn::op2(Opcode::Vstore, mc, Xmm(0)));
        Some(4)
    }

    // --------------------------------------------------------- builtins

    /// Builtin expansion (`-fbuiltin`): `strcpy(dst, "lit")` becomes a run
    /// of immediate-to-memory stores (Figure 3(d)); `strlen("lit")` folds
    /// to a constant.
    fn try_builtin(&mut self, result: Option<&LValue>, name: &str, args: &[Expr]) -> bool {
        if !self.eff.builtin_expand {
            return false;
        }
        match (name, args) {
            ("strcpy", [dst, Expr::Str(s)]) if dst.is_pure() => {
                let addr = self.intern_string(s);
                // Words of the interned string, terminator included.
                let mut bytes: Vec<u8> = s.bytes().collect();
                bytes.push(0);
                while !bytes.len().is_multiple_of(4) {
                    bytes.push(0);
                }
                let r = self.eval(dst, 0);
                let _ = addr;
                for (w, chunk) in bytes.chunks(4).enumerate() {
                    let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                    self.push(Insn::op2(
                        Opcode::Mov,
                        MemRef::base_disp(r, (w * 4) as i32),
                        word as i64,
                    ));
                }
                if let Some(lv) = result {
                    self.store_to(lv, r);
                }
                true
            }
            ("strlen", [Expr::Str(s)]) => {
                if let Some(lv) = result {
                    let r = self.eval(&Expr::Const(s.len() as u32), 0);
                    self.store_to(lv, r);
                }
                true
            }
            _ => false,
        }
    }
}

fn collect_stmt_reads(s: &Stmt, out: &mut std::collections::BTreeSet<String>) {
    match s {
        Stmt::Assign(lv, e) => {
            e.vars_read(out);
            if let LValue::Index(_, i) = lv {
                i.vars_read(out);
            }
            if let LValue::Var(v) = lv {
                out.insert(v.clone());
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            cond.vars_read(out);
            for s in then_body.iter().chain(else_body) {
                collect_stmt_reads(s, out);
            }
        }
        Stmt::While { cond, body } => {
            cond.vars_read(out);
            for s in body {
                collect_stmt_reads(s, out);
            }
        }
        Stmt::For {
            var,
            start,
            end,
            body,
            ..
        } => {
            out.insert(var.clone());
            start.vars_read(out);
            end.vars_read(out);
            for s in body {
                collect_stmt_reads(s, out);
            }
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            scrutinee.vars_read(out);
            for s in cases.iter().flat_map(|(_, b)| b).chain(default) {
                collect_stmt_reads(s, out);
            }
        }
        Stmt::Return(e) | Stmt::ExprStmt(e) => e.vars_read(out),
    }
}
