//! AST-level optimization passes: constant folding, inlining (full and
//! partial), loop unrolling/peeling/unswitching, loop-invariant code
//! motion, and loop distribution.
//!
//! Every pass is a semantics-preserving `Module → Module` transformation;
//! the integration tests validate them by differential execution against
//! `-O0` on the emulator.

use crate::ast::{BinOp, Expr, FuncDef, LValue, Local, Module, Stmt};
use crate::flags::EffectConfig;
use std::collections::BTreeSet;

/// Run all enabled AST passes, in the fixed pipeline order the compiler
/// uses: fold → inline → unswitch → peel → distribute → unroll → licm →
/// fold again (inlining and unrolling expose new folding opportunities).
pub fn optimize(module: &Module, cfg: &EffectConfig) -> Module {
    let mut m = module.clone();
    if cfg.const_fold {
        m = fold_module(&m);
    }
    if cfg.inline_threshold > 0 || cfg.partial_inline {
        m = inline_module(&m, cfg.inline_threshold, cfg.partial_inline);
    }
    if cfg.unswitch {
        m = map_bodies(&m, &mut |body| unswitch_body(body));
    }
    if cfg.peel {
        m = map_bodies(&m, &mut |body| peel_body(body));
    }
    if cfg.loop_distribute {
        m = map_bodies(&m, &mut |body| distribute_body(body));
    }
    if cfg.unroll_factor > 1 {
        let factor = cfg.unroll_factor;
        let jam = cfg.unroll_and_jam;
        m = map_bodies(&m, &mut |body| unroll_body(body, factor, jam));
    }
    if cfg.licm {
        m = map_bodies(&m, &mut |body| licm_body(body));
    }
    if cfg.const_fold {
        // Straight-line constant propagation turns unrolled loop bodies
        // (`i = 0; c[i] = ...; i = 1; ...`) into constant-indexed stores,
        // which the SLP vectorizer and jump-threading can then consume.
        m = map_bodies(&m, &mut |body| propagate_consts(body));
        if cfg.cse {
            m = map_bodies(&m, &mut |body| eliminate_dead_assigns(body));
        }
        m = fold_module(&m);
    }
    m
}

/// Forward-propagate `v = const` facts through straight-line statement
/// runs. Conservative: any control-flow statement clears the environment
/// (after having constants substituted into nested bodies' *reads* is NOT
/// attempted — only plain statements are rewritten).
fn propagate_consts(body: Vec<Stmt>) -> Vec<Stmt> {
    let mut env: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
    let mut out = Vec::new();
    let subst_env = |e: &Expr, env: &std::collections::BTreeMap<String, u32>| {
        let mut cur = e.clone();
        for (v, c) in env {
            cur = cur.subst_var(v, &Expr::Const(*c));
        }
        fold_expr(&cur)
    };
    for s in body {
        match s {
            Stmt::Assign(lv, e) => {
                let e2 = subst_env(&e, &env);
                let lv2 = match lv {
                    LValue::Index(a, i) => LValue::Index(a, subst_env(&i, &env)),
                    other => other,
                };
                if let LValue::Var(v) = &lv2 {
                    match &e2 {
                        Expr::Const(c) => {
                            env.insert(v.clone(), *c);
                        }
                        _ => {
                            env.remove(v);
                        }
                    }
                }
                out.push(Stmt::Assign(lv2, e2));
            }
            Stmt::Return(e) => {
                out.push(Stmt::Return(subst_env(&e, &env)));
                env.clear();
            }
            Stmt::ExprStmt(e) => {
                out.push(Stmt::ExprStmt(subst_env(&e, &env)));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = subst_env(&cond, &env);
                out.push(Stmt::If {
                    cond,
                    then_body: propagate_consts(then_body),
                    else_body: propagate_consts(else_body),
                });
                env.clear();
            }
            Stmt::While { cond, body } => {
                out.push(Stmt::While {
                    cond,
                    body: propagate_consts(body),
                });
                env.clear();
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let start = subst_env(&start, &env);
                out.push(Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body: propagate_consts(body),
                });
                env.clear();
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let scrutinee = subst_env(&scrutinee, &env);
                out.push(Stmt::Switch {
                    scrutinee,
                    cases: cases
                        .into_iter()
                        .map(|(v, b)| (v, propagate_consts(b)))
                        .collect(),
                    default: propagate_consts(default),
                });
                env.clear();
            }
        }
    }
    out
}

/// Remove `v = const` assignments that are overwritten before any read
/// within the same straight-line run (exposed by constant propagation).
fn eliminate_dead_assigns(body: Vec<Stmt>) -> Vec<Stmt> {
    let mut out: Vec<Stmt> = Vec::new();
    for s in body {
        let s = match s {
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond,
                then_body: eliminate_dead_assigns(then_body),
                else_body: eliminate_dead_assigns(else_body),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond,
                body: eliminate_dead_assigns(body),
            },
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => Stmt::For {
                var,
                start,
                end,
                step,
                body: eliminate_dead_assigns(body),
            },
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => Stmt::Switch {
                scrutinee,
                cases: cases
                    .into_iter()
                    .map(|(v, b)| (v, eliminate_dead_assigns(b)))
                    .collect(),
                default: eliminate_dead_assigns(default),
            },
            other => other,
        };
        // If this statement overwrites `v`, and the most recent write to
        // `v` in the current run was a constant assign with no intervening
        // statement reading `v`, drop the earlier one.
        if let Stmt::Assign(LValue::Var(v), _) = &s {
            let mut kill: Option<usize> = None;
            for (i, prev) in out.iter().enumerate().rev() {
                match prev {
                    Stmt::Assign(LValue::Var(pv), Expr::Const(_)) if pv == v => {
                        kill = Some(i);
                        break;
                    }
                    Stmt::Assign(lv, e) => {
                        let mut reads = BTreeSet::new();
                        e.vars_read(&mut reads);
                        if let LValue::Index(_, idx) = lv {
                            idx.vars_read(&mut reads);
                        }
                        if reads.contains(v) || lv.written_var() == Some(v) {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            if let Some(i) = kill {
                out.remove(i);
            }
        }
        out.push(s);
    }
    out
}

fn map_bodies(m: &Module, f: &mut impl FnMut(Vec<Stmt>) -> Vec<Stmt>) -> Module {
    let mut out = m.clone();
    for func in &mut out.funcs {
        func.body = f(std::mem::take(&mut func.body));
    }
    out
}

// ---------------------------------------------------------------- folding

fn fold_module(m: &Module) -> Module {
    let mut out = m.clone();
    for f in &mut out.funcs {
        f.body = f.body.iter().map(fold_stmt).collect();
    }
    out
}

/// Fold constants in an expression (pure simplifications only).
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Bin(op, a, b) => {
            let a = fold_expr(a);
            let b = fold_expr(b);
            if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                return Expr::Const(op.eval(*x, *y));
            }
            // Identity simplifications (all valid for wrapping u32).
            match (op, &a, &b) {
                (BinOp::Add, x, Expr::Const(0)) | (BinOp::Sub, x, Expr::Const(0)) => {
                    return x.clone()
                }
                (BinOp::Add, Expr::Const(0), x) => return x.clone(),
                (BinOp::Mul, x, Expr::Const(1)) | (BinOp::Div, x, Expr::Const(1)) => {
                    return x.clone()
                }
                (BinOp::Mul, Expr::Const(1), x) => return x.clone(),
                (BinOp::Mul, _, Expr::Const(0)) if a.is_pure() => return Expr::Const(0),
                (BinOp::Mul, Expr::Const(0), _) if b.is_pure() => return Expr::Const(0),
                (BinOp::Or, x, Expr::Const(0)) | (BinOp::Xor, x, Expr::Const(0)) => {
                    return x.clone()
                }
                (BinOp::And, _, Expr::Const(0)) if a.is_pure() => return Expr::Const(0),
                (BinOp::Shl, x, Expr::Const(0)) | (BinOp::Shr, x, Expr::Const(0)) => {
                    return x.clone()
                }
                _ => {}
            }
            Expr::bin(*op, a, b)
        }
        Expr::Not(a) => {
            let a = fold_expr(a);
            if let Expr::Const(x) = a {
                Expr::Const(!x)
            } else {
                Expr::Not(Box::new(a))
            }
        }
        Expr::Neg(a) => {
            let a = fold_expr(a);
            if let Expr::Const(x) = a {
                Expr::Const(x.wrapping_neg())
            } else {
                Expr::Neg(Box::new(a))
            }
        }
        Expr::Index(arr, i) => Expr::Index(arr.clone(), Box::new(fold_expr(i))),
        Expr::Call(f, args) => Expr::Call(f.clone(), args.iter().map(fold_expr).collect()),
        Expr::CallImport(f, args) => {
            Expr::CallImport(f.clone(), args.iter().map(fold_expr).collect())
        }
        other => other.clone(),
    }
}

fn fold_body(body: &[Stmt]) -> Vec<Stmt> {
    body.iter().map(fold_stmt).collect()
}

fn fold_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Assign(lv, e) => {
            let lv = match lv {
                LValue::Index(a, i) => LValue::Index(a.clone(), fold_expr(i)),
                other => other.clone(),
            };
            Stmt::Assign(lv, fold_expr(e))
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let cond = fold_expr(cond);
            if let Expr::Const(c) = cond {
                // Dead-branch elimination; wrap in a trivial If-free shape
                // by returning the surviving branch as a no-cond If.
                let survivor = if c != 0 { then_body } else { else_body };
                return Stmt::If {
                    cond: Expr::Const(1),
                    then_body: fold_body(survivor),
                    else_body: Vec::new(),
                };
            }
            Stmt::If {
                cond,
                then_body: fold_body(then_body),
                else_body: fold_body(else_body),
            }
        }
        Stmt::While { cond, body } => Stmt::While {
            cond: fold_expr(cond),
            body: fold_body(body),
        },
        Stmt::For {
            var,
            start,
            end,
            step,
            body,
        } => Stmt::For {
            var: var.clone(),
            start: fold_expr(start),
            end: fold_expr(end),
            step: *step,
            body: fold_body(body),
        },
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => Stmt::Switch {
            scrutinee: fold_expr(scrutinee),
            cases: cases.iter().map(|(v, b)| (*v, fold_body(b))).collect(),
            default: fold_body(default),
        },
        Stmt::Return(e) => Stmt::Return(fold_expr(e)),
        Stmt::ExprStmt(e) => Stmt::ExprStmt(fold_expr(e)),
    }
}

// --------------------------------------------------------------- inlining

/// Whether `f` can be spliced at a call site: single-exit shape, no
/// recursion (checked by caller), and array locals are fine (they get
/// fresh names).
fn inlinable(f: &FuncDef, threshold: usize) -> bool {
    f.is_single_exit() && f.size() <= threshold && !calls_self(f)
}

fn calls_self(f: &FuncDef) -> bool {
    fn expr_calls(e: &Expr, name: &str) -> bool {
        match e {
            Expr::Call(n, _) => n == name,
            _ => false,
        }
    }
    fn stmt_calls(s: &Stmt, name: &str) -> bool {
        match s {
            Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::ExprStmt(e) => expr_calls(e, name),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => then_body
                .iter()
                .chain(else_body)
                .any(|s| stmt_calls(s, name)),
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                body.iter().any(|s| stmt_calls(s, name))
            }
            Stmt::Switch { cases, default, .. } => cases
                .iter()
                .flat_map(|(_, b)| b)
                .chain(default)
                .any(|s| stmt_calls(s, name)),
        }
    }
    f.body.iter().any(|s| stmt_calls(s, &f.name))
}

struct Inliner<'a> {
    module: &'a Module,
    threshold: usize,
    partial: bool,
    counter: usize,
}

impl<'a> Inliner<'a> {
    /// Inline a call, producing replacement statements. `result` receives
    /// the return value (None to discard).
    fn splice(
        &mut self,
        callee: &FuncDef,
        args: &[Expr],
        result: Option<&LValue>,
        new_locals: &mut Vec<Local>,
    ) -> Vec<Stmt> {
        self.counter += 1;
        let tag = format!("__inl{}_{}", self.counter, callee.name);
        let rename = |v: &str| format!("{tag}_{v}");
        let mut out = Vec::new();
        // Fresh locals for params and declared locals.
        for (p, a) in callee.params.iter().zip(args) {
            new_locals.push(Local {
                name: rename(p),
                array: None,
            });
            out.push(Stmt::Assign(LValue::Var(rename(p)), a.clone()));
        }
        for l in &callee.locals {
            new_locals.push(Local {
                name: rename(&l.name),
                array: l.array,
            });
        }
        let renamer = |v: &str| {
            if callee.params.iter().any(|p| p == v) || callee.locals.iter().any(|l| l.name == v) {
                rename(v)
            } else {
                v.to_string()
            }
        };
        let body_len = callee.body.len();
        for (i, s) in callee.body.iter().enumerate() {
            let renamed = rename_stmt(s, &renamer);
            if i + 1 == body_len {
                if let Stmt::Return(e) = renamed {
                    if let Some(lv) = result {
                        out.push(Stmt::Assign(lv.clone(), e));
                    } else if !e.is_pure() {
                        out.push(Stmt::ExprStmt(e));
                    }
                    continue;
                }
            }
            out.push(renamed);
        }
        // Void-shaped callee with a result expected: result = 0.
        if let Some(result) = result {
            if !matches!(callee.body.last(), Some(Stmt::Return(_))) {
                out.push(Stmt::Assign(result.clone(), Expr::Const(0)));
            }
        }
        out
    }

    /// Partial inline: callee starts with `if (c) return e;` — splice the
    /// early exit, keep the call on the slow path (paper §4's
    /// `-fpartial-inlining`).
    fn splice_partial(
        &mut self,
        callee: &FuncDef,
        args: &[Expr],
        result: Option<&LValue>,
        new_locals: &mut Vec<Local>,
    ) -> Option<Vec<Stmt>> {
        let (cond, early) = match callee.body.first() {
            Some(Stmt::If {
                cond,
                then_body,
                else_body,
            }) if else_body.is_empty() && then_body.len() == 1 => match &then_body[0] {
                Stmt::Return(e) if e.is_pure() && cond.is_pure() => (cond, e),
                _ => return None,
            },
            _ => return None,
        };
        // Substitute params directly; only safe when all args are pure and
        // each param appears freely (they do: cond/early are pure exprs).
        if !args.iter().all(Expr::is_pure) || args.len() != callee.params.len() {
            return None;
        }
        let subst = |e: &Expr| {
            let mut out = e.clone();
            for (p, a) in callee.params.iter().zip(args) {
                out = out.subst_var(p, a);
            }
            out
        };
        self.counter += 1;
        let _ = new_locals;
        let call = Expr::Call(callee.name.clone(), args.to_vec());
        let slow: Vec<Stmt> = match result {
            Some(lv) => vec![Stmt::Assign(lv.clone(), call)],
            None => vec![Stmt::ExprStmt(call)],
        };
        let fast: Vec<Stmt> = match result {
            Some(lv) => vec![Stmt::Assign(lv.clone(), subst(early))],
            None => vec![],
        };
        Some(vec![Stmt::If {
            cond: subst(cond),
            then_body: fast,
            else_body: slow,
        }])
    }

    fn rewrite_body(&mut self, body: &[Stmt], new_locals: &mut Vec<Local>) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in body {
            match s {
                Stmt::Assign(lv, Expr::Call(name, args)) => {
                    out.extend(self.rewrite_call(name, args, Some(lv), new_locals));
                }
                Stmt::ExprStmt(Expr::Call(name, args)) => {
                    out.extend(self.rewrite_call(name, args, None, new_locals));
                }
                Stmt::Return(Expr::Call(name, args)) => {
                    // return f(..) → tmp = f(..); return tmp (then maybe
                    // inlined). The temp keeps the single-exit shape.
                    let tmp = {
                        self.counter += 1;
                        format!("__ret{}", self.counter)
                    };
                    new_locals.push(Local {
                        name: tmp.clone(),
                        array: None,
                    });
                    out.extend(self.rewrite_call(
                        name,
                        args,
                        Some(&LValue::Var(tmp.clone())),
                        new_locals,
                    ));
                    out.push(Stmt::Return(Expr::Var(tmp)));
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_body: self.rewrite_body(then_body, new_locals),
                    else_body: self.rewrite_body(else_body, new_locals),
                }),
                Stmt::While { cond, body } => out.push(Stmt::While {
                    cond: cond.clone(),
                    body: self.rewrite_body(body, new_locals),
                }),
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => out.push(Stmt::For {
                    var: var.clone(),
                    start: start.clone(),
                    end: end.clone(),
                    step: *step,
                    body: self.rewrite_body(body, new_locals),
                }),
                Stmt::Switch {
                    scrutinee,
                    cases,
                    default,
                } => out.push(Stmt::Switch {
                    scrutinee: scrutinee.clone(),
                    cases: cases
                        .iter()
                        .map(|(v, b)| (*v, self.rewrite_body(b, new_locals)))
                        .collect(),
                    default: self.rewrite_body(default, new_locals),
                }),
                other => out.push(other.clone()),
            }
        }
        out
    }

    fn rewrite_call(
        &mut self,
        name: &str,
        args: &[Expr],
        result: Option<&LValue>,
        new_locals: &mut Vec<Local>,
    ) -> Vec<Stmt> {
        let callee = match self.module.func(name) {
            Some(f) => f.clone(),
            None => {
                return fallback_call(name, args, result);
            }
        };
        if self.threshold > 0
            && inlinable(&callee, self.threshold)
            && args.iter().all(Expr::is_pure)
        {
            return self.splice(&callee, args, result, new_locals);
        }
        if self.partial {
            if let Some(stmts) = self.splice_partial(&callee, args, result, new_locals) {
                return stmts;
            }
        }
        fallback_call(name, args, result)
    }
}

fn fallback_call(name: &str, args: &[Expr], result: Option<&LValue>) -> Vec<Stmt> {
    let call = Expr::Call(name.to_string(), args.to_vec());
    match result {
        Some(lv) => vec![Stmt::Assign(lv.clone(), call)],
        None => vec![Stmt::ExprStmt(call)],
    }
}

fn rename_stmt(s: &Stmt, f: &impl Fn(&str) -> String) -> Stmt {
    match s {
        Stmt::Assign(lv, e) => {
            let lv = match lv {
                LValue::Var(v) => LValue::Var(f(v)),
                LValue::Global(g) => LValue::Global(g.clone()),
                LValue::Index(a, i) => LValue::Index(f(a), i.rename_vars(f)),
            };
            Stmt::Assign(lv, e.rename_vars(f))
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: cond.rename_vars(f),
            then_body: then_body.iter().map(|s| rename_stmt(s, f)).collect(),
            else_body: else_body.iter().map(|s| rename_stmt(s, f)).collect(),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: cond.rename_vars(f),
            body: body.iter().map(|s| rename_stmt(s, f)).collect(),
        },
        Stmt::For {
            var,
            start,
            end,
            step,
            body,
        } => Stmt::For {
            var: f(var),
            start: start.rename_vars(f),
            end: end.rename_vars(f),
            step: *step,
            body: body.iter().map(|s| rename_stmt(s, f)).collect(),
        },
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => Stmt::Switch {
            scrutinee: scrutinee.rename_vars(f),
            cases: cases
                .iter()
                .map(|(v, b)| (*v, b.iter().map(|s| rename_stmt(s, f)).collect()))
                .collect(),
            default: default.iter().map(|s| rename_stmt(s, f)).collect(),
        },
        Stmt::Return(e) => Stmt::Return(e.rename_vars(f)),
        Stmt::ExprStmt(e) => Stmt::ExprStmt(e.rename_vars(f)),
    }
}

fn inline_module(m: &Module, threshold: usize, partial: bool) -> Module {
    let mut out = m.clone();
    let src = m.clone();
    for f in &mut out.funcs {
        let mut inliner = Inliner {
            module: &src,
            threshold,
            partial,
            counter: 0,
        };
        let mut new_locals = Vec::new();
        f.body = inliner.rewrite_body(&f.body, &mut new_locals);
        f.locals.extend(new_locals);
    }
    out
}

// ------------------------------------------------------------- loop opts

fn loop_trip_count(start: &Expr, end: &Expr, step: u32) -> Option<u32> {
    if let (Expr::Const(s), Expr::Const(e)) = (start, end) {
        if e <= s {
            return Some(0);
        }
        Some((e - s).div_ceil(step))
    } else {
        None
    }
}

fn body_writes(body: &[Stmt]) -> BTreeSet<String> {
    let mut w = BTreeSet::new();
    for s in body {
        s.vars_written(&mut w);
    }
    w
}

fn expr_reads(e: &Expr) -> BTreeSet<String> {
    let mut r = BTreeSet::new();
    e.vars_read(&mut r);
    r
}

/// Unroll `For` loops. Constant trip counts ≤ `factor * 4` unroll fully;
/// otherwise the loop body is replicated `factor` times with a scalar
/// remainder loop. Loops whose body writes the induction variable or
/// returns are left alone.
fn unroll_body(body: Vec<Stmt>, factor: usize, jam: bool) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                // Recurse first (inner loops; `jam` also unrolls outers).
                let inner = unroll_body(body, factor, jam);
                let writes = body_writes(&inner);
                let safe = !writes.contains(&var) && !inner.iter().any(Stmt::contains_return);
                let is_outer = inner
                    .iter()
                    .any(|s| matches!(s, Stmt::For { .. } | Stmt::While { .. }));
                let unroll_this = safe && (!is_outer || jam);
                if !unroll_this {
                    out.push(Stmt::For {
                        var,
                        start,
                        end,
                        step,
                        body: inner,
                    });
                    continue;
                }
                match loop_trip_count(&start, &end, step) {
                    Some(n) if n as usize <= factor * 4 => {
                        // Full unroll.
                        let s0 = match start {
                            Expr::Const(v) => v,
                            _ => unreachable!(),
                        };
                        for k in 0..n {
                            out.push(Stmt::Assign(
                                LValue::Var(var.clone()),
                                Expr::Const(s0 + k * step),
                            ));
                            out.extend(inner.iter().cloned());
                        }
                        // Loop var's final value must match the rolled loop.
                        out.push(Stmt::Assign(
                            LValue::Var(var.clone()),
                            Expr::Const(s0.wrapping_add(n.wrapping_mul(step))),
                        ));
                    }
                    _ => {
                        // Partial unroll with remainder: requires pure
                        // bounds not written by the body.
                        let bound_reads: BTreeSet<String> = expr_reads(&start)
                            .union(&expr_reads(&end))
                            .cloned()
                            .collect();
                        if !start.is_pure()
                            || !end.is_pure()
                            || bound_reads.intersection(&writes).next().is_some()
                        {
                            out.push(Stmt::For {
                                var,
                                start,
                                end,
                                step,
                                body: inner,
                            });
                            continue;
                        }
                        // var = start;
                        // while (var + step*factor <= end)  [as var <= end - step*factor, guarded end >= step*factor]
                        //   { body; var+=step; ... ×factor }
                        // for (; var < end; var += step) body
                        let chunk = step * factor as u32;
                        out.push(Stmt::Assign(LValue::Var(var.clone()), start.clone()));
                        let mut unrolled = Vec::new();
                        for _ in 0..factor {
                            unrolled.extend(inner.iter().cloned());
                            unrolled.push(Stmt::Assign(
                                LValue::Var(var.clone()),
                                Expr::bin(BinOp::Add, Expr::Var(var.clone()), Expr::Const(step)),
                            ));
                        }
                        // Guard: end >= chunk && var <= end - chunk.
                        let cond = Expr::bin(
                            BinOp::And,
                            Expr::bin(BinOp::Ge, end.clone(), Expr::Const(chunk)),
                            Expr::bin(
                                BinOp::Le,
                                Expr::Var(var.clone()),
                                Expr::bin(BinOp::Sub, end.clone(), Expr::Const(chunk)),
                            ),
                        );
                        out.push(Stmt::While {
                            cond,
                            body: unrolled,
                        });
                        // Remainder.
                        out.push(Stmt::While {
                            cond: Expr::bin(BinOp::Lt, Expr::Var(var.clone()), end.clone()),
                            body: {
                                let mut b = inner.clone();
                                b.push(Stmt::Assign(
                                    LValue::Var(var.clone()),
                                    Expr::bin(
                                        BinOp::Add,
                                        Expr::Var(var.clone()),
                                        Expr::Const(step),
                                    ),
                                ));
                                b
                            },
                        });
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => out.push(Stmt::If {
                cond,
                then_body: unroll_body(then_body, factor, jam),
                else_body: unroll_body(else_body, factor, jam),
            }),
            Stmt::While { cond, body } => out.push(Stmt::While {
                cond,
                body: unroll_body(body, factor, jam),
            }),
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => out.push(Stmt::Switch {
                scrutinee,
                cases: cases
                    .into_iter()
                    .map(|(v, b)| (v, unroll_body(b, factor, jam)))
                    .collect(),
                default: unroll_body(default, factor, jam),
            }),
            other => out.push(other),
        }
    }
    out
}

/// Peel the first iteration of `For` loops with pure bounds
/// (`-fpeel-loops`).
fn peel_body(body: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let inner = peel_body(body);
                let writes = body_writes(&inner);
                let bound_reads: BTreeSet<String> = expr_reads(&start)
                    .union(&expr_reads(&end))
                    .cloned()
                    .collect();
                let safe = start.is_pure()
                    && end.is_pure()
                    && !writes.contains(&var)
                    && !inner.iter().any(Stmt::contains_return)
                    && bound_reads.intersection(&writes).next().is_none();
                if !safe {
                    out.push(Stmt::For {
                        var,
                        start,
                        end,
                        step,
                        body: inner,
                    });
                    continue;
                }
                // if (start < end) { var = start; body; }
                // for (var = start+step; var < end; var += step) body
                out.push(Stmt::If {
                    cond: Expr::bin(BinOp::Lt, start.clone(), end.clone()),
                    then_body: {
                        let mut b = vec![Stmt::Assign(LValue::Var(var.clone()), start.clone())];
                        b.extend(inner.iter().cloned());
                        b
                    },
                    else_body: vec![],
                });
                out.push(Stmt::For {
                    var: var.clone(),
                    start: Expr::bin(BinOp::Add, start, Expr::Const(step)),
                    end,
                    step,
                    body: inner,
                });
            }
            other => out.push(other),
        }
    }
    out
}

/// Unswitch loops over loop-invariant `If` conditions
/// (`-funswitch-loops`).
fn unswitch_body(body: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let inner = unswitch_body(body);
                let writes = {
                    let mut w = body_writes(&inner);
                    w.insert(var.clone());
                    w
                };
                // Find a top-level invariant If.
                let pos = inner.iter().position(|s| match s {
                    Stmt::If { cond, .. } => {
                        cond.is_pure() && expr_reads(cond).intersection(&writes).next().is_none()
                    }
                    _ => false,
                });
                match pos {
                    Some(i) => {
                        let (cond, then_b, else_b) = match &inner[i] {
                            Stmt::If {
                                cond,
                                then_body,
                                else_body,
                            } => (cond.clone(), then_body.clone(), else_body.clone()),
                            _ => unreachable!(),
                        };
                        let mk_loop = |branch: Vec<Stmt>| {
                            let mut b = inner.clone();
                            b.splice(i..=i, branch);
                            Stmt::For {
                                var: var.clone(),
                                start: start.clone(),
                                end: end.clone(),
                                step,
                                body: b,
                            }
                        };
                        out.push(Stmt::If {
                            cond,
                            then_body: vec![mk_loop(then_b)],
                            else_body: vec![mk_loop(else_b)],
                        });
                    }
                    None => out.push(Stmt::For {
                        var,
                        start,
                        end,
                        step,
                        body: inner,
                    }),
                }
            }
            other => out.push(other),
        }
    }
    out
}

/// Hoist invariant scalar assignments out of constant-bound loops with at
/// least one iteration (`-fmove-loop-invariants`).
fn licm_body(body: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let mut inner = licm_body(body);
                if loop_trip_count(&start, &end, step).unwrap_or(0) >= 1 {
                    // Hoist a *leading prefix* of invariant scalar assigns.
                    // Leading position guarantees nothing in an iteration
                    // reads the variable before the (re-)assignment, so
                    // executing it once before the loop is equivalent when
                    // the loop runs at least once.
                    let writes = {
                        let mut w = body_writes(&inner);
                        w.insert(var.clone());
                        w
                    };
                    let mut split = 0usize;
                    for s in &inner {
                        match s {
                            Stmt::Assign(LValue::Var(v), e)
                                if expr_only_vars(e)
                                    && expr_reads(e).intersection(&writes).next().is_none()
                                    && write_count(&inner, v) == 1 =>
                            {
                                split += 1;
                            }
                            _ => break,
                        }
                    }
                    let rest = inner.split_off(split);
                    out.extend(inner);
                    out.push(Stmt::For {
                        var,
                        start,
                        end,
                        step,
                        body: rest,
                    });
                } else {
                    out.push(Stmt::For {
                        var,
                        start,
                        end,
                        step,
                        body: inner,
                    });
                }
            }
            other => out.push(other),
        }
    }
    out
}

fn expr_only_vars(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::Bin(_, a, b) => expr_only_vars(a) && expr_only_vars(b),
        Expr::Not(a) | Expr::Neg(a) => expr_only_vars(a),
        _ => false,
    }
}

fn write_count(body: &[Stmt], v: &str) -> usize {
    fn in_stmt(s: &Stmt, v: &str) -> usize {
        match s {
            Stmt::Assign(LValue::Var(x), _) => (x == v) as usize,
            Stmt::Assign(_, _) | Stmt::Return(_) | Stmt::ExprStmt(_) => 0,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => then_body
                .iter()
                .chain(else_body)
                .map(|s| in_stmt(s, v))
                .sum(),
            Stmt::While { body, .. } => body.iter().map(|s| in_stmt(s, v)).sum(),
            Stmt::For { var, body, .. } => {
                (var == v) as usize + body.iter().map(|s| in_stmt(s, v)).sum::<usize>()
            }
            Stmt::Switch { cases, default, .. } => cases
                .iter()
                .flat_map(|(_, b)| b)
                .chain(default)
                .map(|s| in_stmt(s, v))
                .sum(),
        }
    }
    body.iter().map(|s| in_stmt(s, v)).sum()
}

/// Split loops whose body is two independent elementwise statements into
/// two loops (`-ftree-loop-distribute-patterns`).
fn distribute_body(body: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let inner = distribute_body(body);
                // Shape: exactly two pure element-wise stores to *distinct*
                // arrays, neither reading the other's array (no cross-
                // iteration dependence between the split loops).
                let splittable = inner.len() == 2
                    && start.is_pure()
                    && end.is_pure()
                    && matches!(
                        (&inner[0], &inner[1]),
                        (
                            Stmt::Assign(LValue::Index(_, _), _),
                            Stmt::Assign(LValue::Index(_, _), _)
                        )
                    )
                    && {
                        let (a0, e0, a1, e1) = match (&inner[0], &inner[1]) {
                            (
                                Stmt::Assign(LValue::Index(a0, i0), e0),
                                Stmt::Assign(LValue::Index(a1, i1), e1),
                            ) => {
                                if !i0.is_pure() || !i1.is_pure() || !e0.is_pure() || !e1.is_pure()
                                {
                                    (a0, None, a1, None)
                                } else {
                                    (a0, Some(e0), a1, Some(e1))
                                }
                            }
                            _ => unreachable!(),
                        };
                        match (e0, e1) {
                            (Some(e0), Some(e1)) => {
                                a0 != a1
                                    && !arr_reads(e1).contains(a0)
                                    && !arr_reads(e0).contains(a1)
                            }
                            _ => false,
                        }
                    };
                if splittable {
                    for stmt in inner {
                        out.push(Stmt::For {
                            var: var.clone(),
                            start: start.clone(),
                            end: end.clone(),
                            step,
                            body: vec![stmt],
                        });
                    }
                } else {
                    out.push(Stmt::For {
                        var,
                        start,
                        end,
                        step,
                        body: inner,
                    });
                }
            }
            other => out.push(other),
        }
    }
    out
}

fn arr_reads(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    fn walk(e: &Expr, out: &mut BTreeSet<String>) {
        match e {
            Expr::Index(a, i) => {
                out.insert(a.clone());
                walk(i, out);
            }
            Expr::Bin(_, a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Expr::Not(a) | Expr::Neg(a) => walk(a, out),
            Expr::Call(_, args) | Expr::CallImport(_, args) => {
                args.iter().for_each(|a| walk(a, out))
            }
            _ => {}
        }
    }
    walk(e, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_arithmetic() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Const(6), Expr::Const(7)),
            Expr::Const(0),
        );
        assert_eq!(fold_expr(&e), Expr::Const(42));
        let id = Expr::bin(BinOp::Mul, Expr::Var("x".into()), Expr::Const(1));
        assert_eq!(fold_expr(&id), Expr::Var("x".into()));
    }

    #[test]
    fn full_unroll_replicates_body() {
        let body = vec![Stmt::For {
            var: "i".into(),
            start: Expr::Const(0),
            end: Expr::Const(3),
            step: 1,
            body: vec![Stmt::Assign(
                LValue::Index("a".into(), Expr::Var("i".into())),
                Expr::Var("i".into()),
            )],
        }];
        let u = unroll_body(body, 4, false);
        // 3 iterations × (set var + body) + final var assignment.
        assert_eq!(u.len(), 7);
        assert!(matches!(u[0], Stmt::Assign(LValue::Var(_), Expr::Const(0))));
    }

    #[test]
    fn partial_unroll_produces_guard_and_remainder() {
        let body = vec![Stmt::For {
            var: "i".into(),
            start: Expr::Const(0),
            end: Expr::Var("n".into()),
            step: 1,
            body: vec![Stmt::Assign(
                LValue::Index("a".into(), Expr::Var("i".into())),
                Expr::Const(1),
            )],
        }];
        let u = unroll_body(body, 4, false);
        assert_eq!(u.len(), 3); // init, unrolled while, remainder while
        assert!(matches!(u[1], Stmt::While { .. }));
        assert!(matches!(u[2], Stmt::While { .. }));
    }

    #[test]
    fn unswitch_hoists_invariant_if() {
        let body = vec![Stmt::For {
            var: "i".into(),
            start: Expr::Const(0),
            end: Expr::Const(10),
            step: 1,
            body: vec![Stmt::If {
                cond: Expr::Var("flag".into()),
                then_body: vec![Stmt::Assign(
                    LValue::Index("a".into(), Expr::Var("i".into())),
                    Expr::Const(1),
                )],
                else_body: vec![Stmt::Assign(
                    LValue::Index("a".into(), Expr::Var("i".into())),
                    Expr::Const(2),
                )],
            }],
        }];
        let u = unswitch_body(body);
        assert_eq!(u.len(), 1);
        match &u[0] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert!(matches!(then_body[0], Stmt::For { .. }));
                assert!(matches!(else_body[0], Stmt::For { .. }));
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn peel_produces_guard_plus_loop() {
        let body = vec![Stmt::For {
            var: "i".into(),
            start: Expr::Const(0),
            end: Expr::Var("n".into()),
            step: 1,
            body: vec![Stmt::Assign(
                LValue::Index("a".into(), Expr::Var("i".into())),
                Expr::Const(1),
            )],
        }];
        let p = peel_body(body);
        assert_eq!(p.len(), 2);
        assert!(matches!(p[0], Stmt::If { .. }));
        assert!(matches!(p[1], Stmt::For { .. }));
    }

    #[test]
    fn distribute_splits_independent_stores() {
        let body = vec![Stmt::For {
            var: "i".into(),
            start: Expr::Const(0),
            end: Expr::Const(8),
            step: 1,
            body: vec![
                Stmt::Assign(
                    LValue::Index("a".into(), Expr::Var("i".into())),
                    Expr::Var("i".into()),
                ),
                Stmt::Assign(
                    LValue::Index("b".into(), Expr::Var("i".into())),
                    Expr::Const(0),
                ),
            ],
        }];
        let d = distribute_body(body);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn inline_splices_small_callee() {
        let mut m = Module::new("t");
        m.funcs.push(FuncDef::new(
            "double",
            vec!["x".into()],
            vec![Stmt::Return(Expr::vc(BinOp::Mul, "x", 2))],
        ));
        let mut main = FuncDef::new(
            "main",
            vec![],
            vec![
                Stmt::Assign(
                    LValue::Var("y".into()),
                    Expr::Call("double".into(), vec![Expr::Const(21)]),
                ),
                Stmt::Return(Expr::Var("y".into())),
            ],
        );
        main.local("y");
        m.funcs.push(main);
        m.validate().unwrap();
        let inlined = inline_module(&m, 48, false);
        let main2 = inlined.func("main").unwrap();
        // No call should remain.
        assert!(!main2.body.iter().any(Stmt::contains_call));
        inlined.validate().unwrap();
    }

    #[test]
    fn partial_inline_splits_early_exit() {
        let mut m = Module::new("t");
        m.funcs.push(FuncDef::new(
            "clamped",
            vec!["x".into()],
            vec![
                Stmt::If {
                    cond: Expr::vc(BinOp::Gt, "x", 100),
                    then_body: vec![Stmt::Return(Expr::Const(100))],
                    else_body: vec![],
                },
                Stmt::Assign(LValue::Var("x".into()), Expr::vc(BinOp::Mul, "x", 3)),
                Stmt::Return(Expr::Var("x".into())),
            ],
        ));
        let mut main = FuncDef::new(
            "main",
            vec!["a".into()],
            vec![
                Stmt::Assign(
                    LValue::Var("r".into()),
                    Expr::Call("clamped".into(), vec![Expr::Var("a".into())]),
                ),
                Stmt::Return(Expr::Var("r".into())),
            ],
        );
        main.local("r");
        m.funcs.push(main);
        m.validate().unwrap();
        // Threshold 0 disables full inlining; partial must kick in.
        let inlined = inline_module(&m, 0, true);
        let main2 = inlined.func("main").unwrap();
        assert!(matches!(main2.body[0], Stmt::If { .. }));
        inlined.validate().unwrap();
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        let mut m = Module::new("t");
        m.funcs.push(FuncDef::new(
            "rec",
            vec!["x".into()],
            vec![Stmt::Return(Expr::Call(
                "rec".into(),
                vec![Expr::Var("x".into())],
            ))],
        ));
        let inlined = inline_module(&m, 1000, false);
        // Still contains the self-call (as tmp = rec(x); return tmp).
        assert!(inlined
            .func("rec")
            .unwrap()
            .body
            .iter()
            .any(Stmt::contains_call));
    }

    #[test]
    fn licm_hoists_invariant_assign() {
        let body = vec![Stmt::For {
            var: "i".into(),
            start: Expr::Const(0),
            end: Expr::Const(10),
            step: 1,
            body: vec![
                Stmt::Assign(LValue::Var("k".into()), Expr::vc(BinOp::Mul, "n", 4)),
                Stmt::Assign(
                    LValue::Index("a".into(), Expr::Var("i".into())),
                    Expr::Var("k".into()),
                ),
            ],
        }];
        let h = licm_body(body);
        assert_eq!(h.len(), 2);
        assert!(matches!(h[0], Stmt::Assign(LValue::Var(_), _)));
    }
}
