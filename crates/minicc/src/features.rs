//! Structural shape features of a module — the "content-hash-adjacent"
//! identity used for cross-module transfer.
//!
//! [`Module::content_hash`] is an exact identity: one changed constant
//! re-keys the whole module. Transfer learning over the persistent
//! fitness store (the paper's "future exploration": reuse what tuning one
//! program taught about another) needs the opposite — a coarse,
//! perturbation-tolerant signature under which *similar* programs land
//! close together. [`ModuleFeatures`] is that signature: a small vector
//! of structural counts (functions, loops, branches, calls, …) that two
//! variants of the same program share almost exactly, while programs with
//! different code-structure mixes (loop-heavy vs. switch-heavy, small vs.
//! large) land far apart.
//!
//! The feature vector is part of the persistent store's on-disk format
//! (`bintuner::store` records it per module so priors can be mined
//! without the original sources): changing [`ModuleFeatures::N`] or the
//! meaning of a component is a store-format change — bump the store's
//! format version alongside.

use crate::ast::{Expr, Module, Stmt};

/// A fixed-length vector of structural counts describing a module's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleFeatures {
    /// The counts, in the order documented on [`ModuleFeatures::feature_names`].
    pub counts: [u32; ModuleFeatures::N],
}

impl ModuleFeatures {
    /// Number of feature components.
    pub const N: usize = 8;

    /// Human-readable component names, index-aligned with
    /// [`ModuleFeatures::counts`].
    pub fn feature_names() -> [&'static str; ModuleFeatures::N] {
        [
            "functions",
            "library_functions",
            "global_words",
            "ast_nodes",
            "loops",
            "branches",
            "calls",
            "max_function_nodes",
        ]
    }

    /// Normalized L1 distance in `[0, 1)`: each component contributes
    /// `|a − b| / (a + b + 1)`, averaged. Scale-free (a 10-vs-20-loop gap
    /// counts like a 100-vs-200 gap), symmetric, zero iff equal, and
    /// deterministic — the properties the nearest-module lookup needs.
    pub fn distance(&self, other: &ModuleFeatures) -> f64 {
        let mut total = 0.0;
        for (&a, &b) in self.counts.iter().zip(&other.counts) {
            let (a, b) = (f64::from(a), f64::from(b));
            total += (a - b).abs() / (a + b + 1.0);
        }
        total / ModuleFeatures::N as f64
    }
}

/// Saturating counter update (feature counts are `u32` on disk).
fn bump(c: &mut u32, by: usize) {
    *c = c.saturating_add(u32::try_from(by).unwrap_or(u32::MAX));
}

fn walk_expr(e: &Expr, calls: &mut u32) {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Global(_) | Expr::Str(_) | Expr::AddrOf(_) => {}
        Expr::Index(_, i) => walk_expr(i, calls),
        Expr::Bin(_, a, b) => {
            walk_expr(a, calls);
            walk_expr(b, calls);
        }
        Expr::Not(a) | Expr::Neg(a) => walk_expr(a, calls),
        Expr::Call(_, args) | Expr::CallImport(_, args) => {
            bump(calls, 1);
            args.iter().for_each(|a| walk_expr(a, calls));
        }
    }
}

fn walk_body(body: &[Stmt], loops: &mut u32, branches: &mut u32, calls: &mut u32) {
    for s in body {
        match s {
            Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::ExprStmt(e) => walk_expr(e, calls),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                bump(branches, 1);
                walk_expr(cond, calls);
                walk_body(then_body, loops, branches, calls);
                walk_body(else_body, loops, branches, calls);
            }
            Stmt::While { cond, body } => {
                bump(loops, 1);
                walk_expr(cond, calls);
                walk_body(body, loops, branches, calls);
            }
            Stmt::For {
                start, end, body, ..
            } => {
                bump(loops, 1);
                walk_expr(start, calls);
                walk_expr(end, calls);
                walk_body(body, loops, branches, calls);
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                bump(branches, cases.len().max(1));
                walk_expr(scrutinee, calls);
                for (_, b) in cases {
                    walk_body(b, loops, branches, calls);
                }
                walk_body(default, loops, branches, calls);
            }
        }
    }
}

impl Module {
    /// The module's structural shape features (see module docs).
    ///
    /// Deterministic in the AST, invariant under renaming nothing — this
    /// is a *count* vector, so it is stable under the perturbations that
    /// change [`Module::content_hash`] without changing program shape
    /// (edited constants, renamed variables, reordered functions).
    pub fn features(&self) -> ModuleFeatures {
        let mut f = ModuleFeatures::default();
        bump(&mut f.counts[0], self.funcs.len());
        bump(
            &mut f.counts[1],
            self.funcs.iter().filter(|fd| fd.is_library).count(),
        );
        bump(
            &mut f.counts[2],
            self.globals.iter().map(|g| g.words.len()).sum(),
        );
        bump(&mut f.counts[3], self.size());
        let (mut loops, mut branches, mut calls) = (0u32, 0u32, 0u32);
        let mut max_fn = 0usize;
        for func in &self.funcs {
            walk_body(&func.body, &mut loops, &mut branches, &mut calls);
            max_fn = max_fn.max(func.size());
        }
        f.counts[4] = loops;
        f.counts[5] = branches;
        f.counts[6] = calls;
        bump(&mut f.counts[7], max_fn);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, FuncDef};

    fn loopy_module(name: &str, loops: usize) -> Module {
        let mut m = Module::new(name);
        let body: Vec<Stmt> = (0..loops)
            .map(|i| Stmt::For {
                var: "i".into(),
                start: Expr::Const(0),
                end: Expr::Const(10 + i as u32),
                step: 1,
                body: vec![Stmt::Assign(
                    crate::ast::LValue::Var("x".into()),
                    Expr::vc(BinOp::Add, "x", 1),
                )],
            })
            .chain(std::iter::once(Stmt::Return(Expr::Var("x".into()))))
            .collect();
        let mut f = FuncDef::new("main", vec!["a".into()], body);
        f.local("x");
        f.local("i");
        m.funcs.push(f);
        m
    }

    #[test]
    fn features_count_structure() {
        let m = loopy_module("feat", 3);
        let f = m.features();
        assert_eq!(f.counts[0], 1, "functions");
        assert_eq!(f.counts[4], 3, "loops");
        assert_eq!(f.counts[5], 0, "branches");
        assert!(f.counts[3] > 0, "ast nodes");
    }

    #[test]
    fn distance_is_a_premetric_on_shapes() {
        let a = loopy_module("a", 3).features();
        let near = loopy_module("b", 4).features();
        let far = loopy_module("c", 40).features();
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&near) - near.distance(&a)).abs() < 1e-15);
        assert!(a.distance(&near) < a.distance(&far));
        assert!(a.distance(&far) < 1.0);
    }

    #[test]
    fn features_tolerate_content_hash_perturbations() {
        // An edited constant re-keys content_hash but not the shape.
        let base = loopy_module("same", 5);
        let mut edited = loopy_module("same", 5);
        if let Stmt::For { end, .. } = &mut edited.funcs[0].body[0] {
            *end = Expr::Const(999);
        }
        assert_ne!(base.content_hash(), edited.content_hash());
        assert_eq!(base.features(), edited.features());
    }
}
