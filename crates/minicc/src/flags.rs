//! Optimization flags, compiler profiles, presets, and constraints.
//!
//! Two compiler profiles are modelled — `GCC 10.2` and `LLVM 11.0` — each
//! exposing its own flag vocabulary (names taken from the real compilers,
//! with the paper's Figure 7 flags all present). A flag either drives one of
//! the ~25 genuinely implemented optimization [`Effect`]s or is a *filler*
//! flag that perturbs deterministic codegen style bits (the long tail of
//! real-world flags whose individual potency is small, cf. "94 other
//! flags" / "125 other flags" in Figure 7).
//!
//! The `-Ox` presets enable fewer than half of the available options,
//! mirroring the paper's observation (§1) that `-O3` covers <48% of GCC's
//! option space — the gap BinTuner exploits.

use satz::{Constraint, ConstraintSet};
use serde::{Deserialize, Serialize};

/// Which compiler family a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilerKind {
    /// GCC 10.2 model.
    Gcc,
    /// LLVM 11.0 model.
    Llvm,
}

impl CompilerKind {
    /// Display name with modelled version.
    pub fn name(self) -> &'static str {
        match self {
            CompilerKind::Gcc => "GCC 10.2",
            CompilerKind::Llvm => "LLVM 11.0",
        }
    }

    /// Stable one-byte tag used in persistent cache keys. Unlike the
    /// discriminant of `as u8`, this is part of the on-disk format: the
    /// assignments below must never be reordered or reused.
    pub fn stable_id(self) -> u8 {
        match self {
            CompilerKind::Gcc => 0,
            CompilerKind::Llvm => 1,
        }
    }
}

impl std::fmt::Display for CompilerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default optimization levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// Basic optimization.
    O1,
    /// Standard optimization.
    O2,
    /// Aggressive optimization.
    O3,
    /// Optimize for size.
    Os,
}

impl OptLevel {
    /// All levels.
    pub const ALL: [OptLevel; 5] = [
        OptLevel::O0,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::Os,
    ];

    /// Display name, e.g. `"-O2"`.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
            OptLevel::Os => "-Os",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The implemented optimization behaviours a flag can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Effect {
    /// Register allocation: promote stack slots/params to registers.
    RegAlloc,
    /// AST constant folding.
    ConstFold,
    /// Local common-subexpression elimination (value numbering).
    Cse,
    /// Inline small single-exit functions.
    InlineSmall,
    /// Inline all eligible single-exit functions up to a larger threshold.
    InlineFunctions,
    /// Partial inlining of early-exit functions.
    PartialInline,
    /// Tail-call optimization: `call; ret` → jump.
    TailCalls,
    /// Loop unrolling.
    Unroll,
    /// Loop peeling.
    Peel,
    /// Loop unswitching.
    Unswitch,
    /// Unroll-and-jam (outer-loop unrolling).
    UnrollAndJam,
    /// Loop vectorization (element-wise loops → SIMD).
    VectorizeLoops,
    /// SLP vectorization (straight-line adjacent stores → SIMD).
    VectorizeSlp,
    /// Both vectorizers (alias flag).
    VectorizeBoth,
    /// Dense switch lowering via jump tables.
    JumpTables,
    /// If-conversion to branch-free `cmov`/`setcc` forms.
    IfConvert,
    /// Aggressive branch-free forms (`sbb` tricks) on top of if-conversion.
    IfConvert2,
    /// Counted loops via the `loop` instruction.
    BranchCountReg,
    /// Peephole substitutions.
    Peephole,
    /// Strength reduction (division/multiplication magic).
    StrengthReduce,
    /// Basic-block layout reordering.
    ReorderBlocks,
    /// Hot/cold block partitioning (stronger reordering).
    ReorderBlocksPartition,
    /// Function layout reordering.
    ReorderFunctions,
    /// Loop header alignment padding.
    AlignLoops,
    /// Function alignment padding.
    AlignFunctions,
    /// Constant pool deduplication.
    MergeConstants,
    /// Aggressive constant pool deduplication.
    MergeAllConstants,
    /// Branch-target merging / jump threading (block merging).
    MergeBlocks,
    /// Expand library builtins (`strcpy` of constants) inline.
    BuiltinExpand,
    /// Loop-invariant code motion.
    Licm,
    /// Loop distribution of recognizable patterns.
    LoopDistribute,
    /// Codegen style perturbation with the given bit index (filler flags).
    Style(u8),
}

/// One named flag of a compiler profile.
#[derive(Debug, Clone, Copy)]
pub struct FlagDef {
    /// Command-line name, e.g. `"-funroll-loops"`.
    pub name: &'static str,
    /// Behaviour the flag drives.
    pub effect: Effect,
}

macro_rules! flags {
    ($(($name:literal, $effect:expr)),* $(,)?) => {
        vec![$(FlagDef { name: $name, effect: $effect }),*]
    };
}

fn gcc_flag_defs() -> Vec<FlagDef> {
    use Effect::*;
    let mut v = flags![
        // ---- implemented effects ----
        ("-fomit-frame-pointer", RegAlloc),
        ("-ftree-ccp", ConstFold),
        ("-fgcse", Cse),
        ("-finline-small-functions", InlineSmall),
        ("-finline-functions", InlineFunctions),
        ("-fpartial-inlining", PartialInline),
        ("-foptimize-sibling-calls", TailCalls),
        ("-funroll-loops", Unroll),
        ("-fpeel-loops", Peel),
        ("-funswitch-loops", Unswitch),
        ("-floop-unroll-and-jam", UnrollAndJam),
        ("-ftree-loop-vectorize", VectorizeLoops),
        ("-ftree-slp-vectorize", VectorizeSlp),
        ("-ftree-vectorize", VectorizeBoth),
        ("-fjump-tables", JumpTables),
        ("-fif-conversion", IfConvert),
        ("-fif-conversion2", IfConvert2),
        ("-fbranch-count-reg", BranchCountReg),
        ("-fpeephole2", Peephole),
        ("-fexpensive-optimizations", StrengthReduce),
        ("-freorder-blocks", ReorderBlocks),
        ("-freorder-blocks-and-partition", ReorderBlocksPartition),
        ("-freorder-functions", ReorderFunctions),
        ("-falign-loops", AlignLoops),
        ("-falign-functions", AlignFunctions),
        ("-fmerge-constants", MergeConstants),
        ("-fmerge-all-constants", MergeAllConstants),
        ("-fcrossjumping", MergeBlocks),
        ("-fbuiltin", BuiltinExpand),
        ("-fmove-loop-invariants", Licm),
        ("-ftree-loop-distribute-patterns", LoopDistribute),
    ];
    // ---- filler flags: real GCC names, style-bit effects ----
    const FILLER: &[&str] = &[
        "-fauto-inc-dec",
        "-fbranch-probabilities",
        "-fcaller-saves",
        "-fcode-hoisting",
        "-fcombine-stack-adjustments",
        "-fcompare-elim",
        "-fcprop-registers",
        "-fdce",
        "-fdefer-pop",
        "-fdevirtualize",
        "-fdse",
        "-fforward-propagate",
        "-fgcse-after-reload",
        "-fgcse-las",
        "-fgcse-lm",
        "-fgcse-sm",
        "-fhoist-adjacent-loads",
        "-findirect-inlining",
        "-fipa-bit-cp",
        "-fipa-cp",
        "-fipa-cp-clone",
        "-fipa-icf",
        "-fipa-modref",
        "-fipa-profile",
        "-fipa-pta",
        "-fipa-pure-const",
        "-fipa-ra",
        "-fipa-reference",
        "-fipa-sra",
        "-fira-hoist-pressure",
        "-fisolate-erroneous-paths-dereference",
        "-fivopts",
        "-flive-range-shrinkage",
        "-floop-interchange",
        "-floop-nest-optimize",
        "-flra-remat",
        "-fmodulo-sched",
        "-foptimize-strlen",
        "-fpredictive-commoning",
        "-fprefetch-loop-arrays",
        "-free",
        "-frename-registers",
        "-freschedule-modulo-scheduled-loops",
        "-fsched-critical-path-heuristic",
        "-fsched-dep-count-heuristic",
        "-fsched-interblock",
        "-fsched-pressure",
        "-fsched-spec",
        "-fschedule-insns",
        "-fschedule-insns2",
        "-fsection-anchors",
        "-fsel-sched-pipelining",
        "-fselective-scheduling",
        "-fshrink-wrap",
        "-fsplit-loops",
        "-fsplit-paths",
        "-fsplit-wide-types",
        "-fssa-phiopt",
        "-fstdarg-opt",
        "-fstore-merging",
        "-fstrict-aliasing",
        "-fthread-jumps",
        "-ftree-bit-ccp",
        "-ftree-builtin-call-dce",
        "-ftree-copy-prop",
        "-ftree-dce",
        "-ftree-dominator-opts",
        "-ftree-dse",
        "-ftree-fre",
        "-ftree-loop-im",
        "-ftree-loop-ivcanon",
        "-ftree-partial-pre",
        "-ftree-pre",
        "-ftree-pta",
        "-ftree-sink",
        "-ftree-slsr",
        "-ftree-sra",
        "-ftree-switch-conversion",
        "-ftree-tail-merge",
        "-ftree-ter",
        "-ftree-vrp",
        "-funroll-all-loops",
        "-fvect-cost-model",
        "-fversion-loops-for-strides",
        "-fweb",
        "-fwrapv",
        "-fdelete-null-pointer-checks",
        "-fdevirtualize-speculatively",
        "-fhoist-pressure",
        "-fif-conversion-weak",
        "-fipa-stack-alignment",
        "-fira-algorithm-priority",
        "-fira-region-all",
        "-fjump-tables-density",
        "-flimit-function-alignment",
        "-floop-block",
        "-floop-strip-mine",
        "-fmath-errno-opt",
        "-fmin-function-alignment",
        "-fpack-struct-opt",
        "-fpeephole",
        "-fplt-opt",
        "-fsched-group-heuristic",
        "-fsched-last-insn-heuristic",
        "-fsched-rank-heuristic",
        "-fshort-enums-opt",
        "-fsplit-ivs-in-unroller",
        "-fvariable-expansion-in-unroller",
    ];
    for (i, name) in FILLER.iter().enumerate() {
        v.push(FlagDef {
            name,
            effect: Style((i % 24) as u8),
        });
    }
    v
}

fn llvm_flag_defs() -> Vec<FlagDef> {
    use Effect::*;
    let mut v = flags![
        // ---- implemented effects (names per paper Figure 7 / clang) ----
        ("-fomit-frame-pointer", RegAlloc),
        ("-mllvm:sccp", ConstFold),
        ("-mllvm:early-cse", Cse),
        ("-finline-hint-functions", InlineSmall),
        ("-finline-functions", InlineFunctions),
        ("-mllvm:partial-inliner", PartialInline),
        ("-foptimize-sibling-calls", TailCalls),
        ("-fno-escaping-block-tail-calls", TailCalls),
        ("-funroll-loops", Unroll),
        ("-mllvm:loop-peel", Peel),
        ("-mllvm:loop-unswitch", Unswitch),
        ("-mllvm:unroll-and-jam", UnrollAndJam),
        ("-fvectorize", VectorizeLoops),
        ("-fslp-vectorize", VectorizeSlp),
        ("-ftree-vectorize", VectorizeBoth),
        ("-fjump-tables", JumpTables),
        ("-mllvm:simplifycfg-hoist", IfConvert),
        ("-mllvm:select-opt", IfConvert2),
        ("-mllvm:hardware-loops", BranchCountReg),
        ("-mllvm:machine-combiner", Peephole),
        ("-mllvm:slsr", StrengthReduce),
        ("-mllvm:block-placement", ReorderBlocks),
        ("-mllvm:hot-cold-split", ReorderBlocksPartition),
        ("-mllvm:func-layout", ReorderFunctions),
        ("-malign-loops", AlignLoops),
        ("-malign-functions", AlignFunctions),
        ("-fmerge-constants", MergeConstants),
        ("-fmerge-all-constants", MergeAllConstants),
        ("-mllvm:simplifycfg", MergeBlocks),
        ("-fbuiltin", BuiltinExpand),
        ("-mllvm:licm", Licm),
        ("-mllvm:loop-idiom", LoopDistribute),
    ];
    const FILLER: &[&str] = &[
        "-mlong-calls",
        "-mstackrealign",
        "-fwrapv",
        "-freg-struct-return",
        "-fpcc-struct-return",
        "-faddrsig",
        "-fstrict-vtable-pointers",
        "-fstrict-return",
        "-fforce-emit-vtables",
        "-mllvm:adce",
        "-mllvm:bdce",
        "-mllvm:dse",
        "-mllvm:gvn",
        "-mllvm:indvars",
        "-mllvm:instcombine",
        "-mllvm:jump-threading",
        "-mllvm:lcssa",
        "-mllvm:loop-deletion",
        "-mllvm:loop-reduce",
        "-mllvm:loop-rotate",
        "-mllvm:loop-simplify",
        "-mllvm:memcpyopt",
        "-mllvm:mldst-motion",
        "-mllvm:reassociate",
        "-mllvm:sink",
        "-mllvm:sroa",
        "-mllvm:tailcallelim",
        "-mllvm:aggressive-instcombine",
        "-mllvm:alignment-from-assumptions",
        "-mllvm:argpromotion",
        "-mllvm:attributor",
        "-mllvm:barrier",
        "-mllvm:break-crit-edges",
        "-mllvm:called-value-propagation",
        "-mllvm:callsite-splitting",
        "-mllvm:constmerge",
        "-mllvm:correlated-propagation",
        "-mllvm:deadargelim",
        "-mllvm:div-rem-pairs",
        "-mllvm:elim-avail-extern",
        "-mllvm:flattencfg",
        "-mllvm:float2int",
        "-mllvm:globaldce",
        "-mllvm:globalopt",
        "-mllvm:globalsplit",
        "-mllvm:guard-widening",
        "-mllvm:indirectbr-expand",
        "-mllvm:infer-address-spaces",
        "-mllvm:inferattrs",
        "-mllvm:inject-tli-mappings",
        "-mllvm:instnamer",
        "-mllvm:instsimplify",
        "-mllvm:irce",
        "-mllvm:lower-constant-intrinsics",
        "-mllvm:lower-expect",
        "-mllvm:lower-guard-intrinsic",
        "-mllvm:lower-matrix-intrinsics",
        "-mllvm:lower-widenable-condition",
        "-mllvm:loweratomic",
        "-mllvm:lowerinvoke",
        "-mllvm:lowerswitch",
        "-mllvm:mem2reg",
        "-mllvm:mergefunc",
        "-mllvm:mergeicmps",
        "-mllvm:mergereturn",
        "-mllvm:nary-reassociate",
        "-mllvm:newgvn",
        "-mllvm:pgo-memop-opt",
        "-mllvm:post-inline-ee-instrument",
        "-mllvm:reg2mem",
        "-mllvm:rpo-functionattrs",
        "-mllvm:scalarizer",
        "-mllvm:separate-const-offset-from-gep",
        "-mllvm:speculative-execution",
        "-mllvm:strip-dead-prototypes",
        "-mllvm:structurizecfg",
        "-mllvm:tbaa",
        "-mllvm:vector-combine",
    ];
    for (i, name) in FILLER.iter().enumerate() {
        v.push(FlagDef {
            name,
            effect: Style(((i + 7) % 24) as u8),
        });
    }
    v
}

/// A compiler profile: its flag vocabulary, constraints, and presets.
#[derive(Debug, Clone)]
pub struct CompilerProfile {
    kind: CompilerKind,
    flags: Vec<FlagDef>,
    constraints: ConstraintSet,
}

impl CompilerProfile {
    /// Build the profile for a compiler family.
    pub fn new(kind: CompilerKind) -> CompilerProfile {
        let flags = match kind {
            CompilerKind::Gcc => gcc_flag_defs(),
            CompilerKind::Llvm => llvm_flag_defs(),
        };
        let mut p = CompilerProfile {
            kind,
            flags,
            constraints: ConstraintSet::new(0),
        };
        p.constraints = p.build_constraints();
        p
    }

    fn build_constraints(&self) -> ConstraintSet {
        let mut cs = ConstraintSet::new(self.flags.len());
        let idx = |name: &str| self.flag_index(name);
        let mut req = |a: &str, b: &str| {
            if let (Some(a), Some(b)) = (idx(a), idx(b)) {
                cs.add(Constraint::Requires(a, b));
            }
        };
        match self.kind {
            CompilerKind::Gcc => {
                req("-fpartial-inlining", "-finline-functions");
                req("-floop-unroll-and-jam", "-funroll-loops");
                req("-funroll-all-loops", "-funroll-loops");
                req("-freorder-blocks-and-partition", "-freorder-blocks");
                req("-fmerge-all-constants", "-fmerge-constants");
                req("-fif-conversion2", "-fif-conversion");
                req("-fgcse-after-reload", "-fgcse");
                req("-fgcse-las", "-fgcse");
                req("-fgcse-lm", "-fgcse");
                req("-fgcse-sm", "-fgcse");
                req("-ftree-loop-distribute-patterns", "-ftree-loop-im");
                req("-fipa-cp-clone", "-fipa-cp");
                req("-fsel-sched-pipelining", "-fselective-scheduling");
                req("-fsched-interblock", "-fschedule-insns");
                req("-fsched-pressure", "-fschedule-insns");
                req("-fsched-spec", "-fschedule-insns");
                req("-fsplit-ivs-in-unroller", "-funroll-loops");
                req("-fvariable-expansion-in-unroller", "-funroll-loops");
                // Adverse interactions documented for GCC 10:
                let confl = |a: &str, b: &str, cs: &mut ConstraintSet| {
                    if let (Some(a), Some(b)) = (self.flag_index(a), self.flag_index(b)) {
                        cs.add(Constraint::Conflicts(a, b));
                    }
                };
                confl("-fselective-scheduling", "-fschedule-insns2", &mut cs);
                confl(
                    "-freorder-blocks-and-partition",
                    "-ftree-tail-merge",
                    &mut cs,
                );
                confl("-flive-range-shrinkage", "-fira-region-all", &mut cs);
            }
            CompilerKind::Llvm => {
                req("-mllvm:partial-inliner", "-finline-functions");
                req("-mllvm:unroll-and-jam", "-funroll-loops");
                req("-fmerge-all-constants", "-fmerge-constants");
                req("-mllvm:select-opt", "-mllvm:simplifycfg-hoist");
                req("-mllvm:hot-cold-split", "-mllvm:block-placement");
                req("-mllvm:gvn", "-mllvm:early-cse");
                req("-mllvm:newgvn", "-mllvm:gvn");
                req("-mllvm:loop-unswitch", "-mllvm:loop-simplify");
                req("-mllvm:loop-peel", "-mllvm:loop-simplify");
                req("-mllvm:unroll-and-jam", "-mllvm:loop-simplify");
                let confl = |a: &str, b: &str, cs: &mut ConstraintSet| {
                    if let (Some(a), Some(b)) = (self.flag_index(a), self.flag_index(b)) {
                        cs.add(Constraint::Conflicts(a, b));
                    }
                };
                confl("-mllvm:reg2mem", "-mllvm:mem2reg", &mut cs);
                confl("-mllvm:lowerswitch", "-fjump-tables", &mut cs);
                confl("-mllvm:structurizecfg", "-mllvm:flattencfg", &mut cs);
                // struct-return conventions are mutually exclusive.
                if let (Some(a), Some(b)) = (
                    self.flag_index("-freg-struct-return"),
                    self.flag_index("-fpcc-struct-return"),
                ) {
                    cs.add(Constraint::AtMostOne(vec![a, b]));
                }
            }
        }
        cs
    }

    /// Compiler family.
    pub fn kind(&self) -> CompilerKind {
        self.kind
    }

    /// All flags, in index order.
    pub fn flags(&self) -> &[FlagDef] {
        &self.flags
    }

    /// Number of flags.
    pub fn n_flags(&self) -> usize {
        self.flags.len()
    }

    /// Index of a flag by name.
    pub fn flag_index(&self, name: &str) -> Option<usize> {
        self.flags.iter().position(|f| f.name == name)
    }

    /// The flag constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The flag vector for a default `-Ox` preset.
    pub fn preset(&self, level: OptLevel) -> Vec<bool> {
        let mut v = vec![false; self.flags.len()];
        let mut on = |name: &str| {
            if let Some(i) = self.flag_index(name) {
                v[i] = true;
            }
        };
        let o1: &[&str] = match self.kind {
            CompilerKind::Gcc => &[
                "-fomit-frame-pointer",
                "-ftree-ccp",
                "-fdce",
                "-fdefer-pop",
                "-ftree-dce",
                "-ftree-copy-prop",
                "-ftree-ter",
                "-fcombine-stack-adjustments",
                "-fcompare-elim",
                "-fcprop-registers",
                "-fforward-propagate",
                "-fmerge-constants",
                "-fmove-loop-invariants",
                "-fif-conversion",
                "-fbranch-count-reg",
                "-ftree-fre",
                "-ftree-sink",
                "-ftree-bit-ccp",
                "-fbuiltin",
            ],
            CompilerKind::Llvm => &[
                "-fomit-frame-pointer",
                "-mllvm:sccp",
                "-mllvm:early-cse",
                "-mllvm:instcombine",
                "-mllvm:mem2reg",
                "-mllvm:sroa",
                "-mllvm:simplifycfg",
                "-mllvm:loop-simplify",
                "-mllvm:licm",
                "-fmerge-constants",
                "-fbuiltin",
                "-mllvm:lower-expect",
            ],
        };
        let o2: &[&str] = match self.kind {
            CompilerKind::Gcc => &[
                "-finline-small-functions",
                "-foptimize-sibling-calls",
                "-fgcse",
                "-fjump-tables",
                "-fif-conversion2",
                "-fpeephole2",
                "-fexpensive-optimizations",
                "-freorder-blocks",
                "-freorder-functions",
                "-fcrossjumping",
                "-falign-loops",
                "-falign-functions",
                "-fthread-jumps",
                "-ftree-pre",
                "-ftree-vrp",
                "-fipa-cp",
                "-fipa-icf",
                "-fdevirtualize",
                "-fhoist-adjacent-loads",
                "-fstore-merging",
                "-ftree-switch-conversion",
                "-ftree-tail-merge",
                "-fcode-hoisting",
                "-fschedule-insns2",
                "-fshrink-wrap",
                "-fstrict-aliasing",
            ],
            CompilerKind::Llvm => &[
                "-finline-hint-functions",
                "-foptimize-sibling-calls",
                "-fjump-tables",
                "-mllvm:simplifycfg-hoist",
                "-mllvm:machine-combiner",
                "-mllvm:slsr",
                "-mllvm:block-placement",
                "-malign-loops",
                "-malign-functions",
                "-mllvm:gvn",
                "-mllvm:jump-threading",
                "-mllvm:correlated-propagation",
                "-mllvm:dse",
                "-mllvm:adce",
                "-mllvm:memcpyopt",
                "-mllvm:reassociate",
                "-mllvm:loop-rotate",
                "-mllvm:loop-idiom",
                "-mllvm:loop-deletion",
                "-mllvm:tailcallelim",
                "-mllvm:select-opt",
            ],
        };
        let o3: &[&str] = match self.kind {
            CompilerKind::Gcc => &[
                "-finline-functions",
                "-fpartial-inlining",
                "-funswitch-loops",
                "-fpeel-loops",
                "-ftree-vectorize",
                "-ftree-loop-vectorize",
                "-ftree-slp-vectorize",
                "-fgcse-after-reload",
                "-fipa-cp-clone",
                "-fsplit-paths",
                "-fsplit-loops",
                "-ftree-partial-pre",
                "-ftree-loop-im",
                "-ftree-loop-distribute-patterns",
                "-fpredictive-commoning",
                "-fvect-cost-model",
            ],
            CompilerKind::Llvm => &[
                "-finline-functions",
                "-fvectorize",
                "-fslp-vectorize",
                "-ftree-vectorize",
                "-mllvm:loop-unswitch",
                "-mllvm:loop-peel",
                "-mllvm:aggressive-instcombine",
                "-mllvm:callsite-splitting",
                "-mllvm:argpromotion",
                "-mllvm:newgvn",
            ],
        };
        // -Os: O2 without alignment/size-increasing options, plus
        // size-oriented choices.
        let os_extra: &[&str] = match self.kind {
            CompilerKind::Gcc => &["-fmerge-all-constants", "-fbranch-count-reg"],
            CompilerKind::Llvm => &[
                "-fmerge-all-constants",
                "-mllvm:hardware-loops",
                "-mllvm:mergefunc",
            ],
        };
        let os_removed: &[&str] = &[
            "-falign-loops",
            "-falign-functions",
            "-malign-loops",
            "-malign-functions",
            "-fjump-tables",
            "-freorder-functions",
        ];
        match level {
            OptLevel::O0 => {}
            OptLevel::O1 => o1.iter().for_each(|f| on(f)),
            OptLevel::O2 => {
                o1.iter().for_each(|f| on(f));
                o2.iter().for_each(|f| on(f));
            }
            OptLevel::O3 => {
                o1.iter().for_each(|f| on(f));
                o2.iter().for_each(|f| on(f));
                o3.iter().for_each(|f| on(f));
            }
            OptLevel::Os => {
                o1.iter().for_each(|f| on(f));
                o2.iter().for_each(|f| on(f));
                os_extra.iter().for_each(|f| on(f));
                for name in os_removed {
                    if let Some(i) = self.flag_index(name) {
                        v[i] = false;
                    }
                }
            }
        }
        debug_assert!(
            self.constraints.is_valid(&v),
            "preset {level} violates constraints"
        );
        v
    }

    /// Names of the flags enabled in a vector.
    pub fn enabled_names(&self, flags: &[bool]) -> Vec<&'static str> {
        self.flags
            .iter()
            .zip(flags)
            .filter(|(_, &on)| on)
            .map(|(f, _)| f.name)
            .collect()
    }

    /// Jaccard index between two flag vectors (|A∩B| / |A∪B|), the metric
    /// Figure 7 reports between `-O3` and BinTuner's output.
    pub fn jaccard(&self, a: &[bool], b: &[bool]) -> f64 {
        let inter = a.iter().zip(b).filter(|(&x, &y)| x && y).count();
        let union = a.iter().zip(b).filter(|(&x, &y)| x || y).count();
        if union == 0 {
            return 1.0;
        }
        inter as f64 / union as f64
    }
}

/// Resolved optimization configuration consumed by codegen and passes.
///
/// `Eq + Hash` so it can key memoization: the emitted binary is a pure
/// function of `(module, effect config, arch)`, which the fitness engine
/// exploits to avoid recompiling semantically equivalent flag vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct EffectConfig {
    /// See [`Effect::RegAlloc`].
    pub regalloc: bool,
    /// See [`Effect::ConstFold`].
    pub const_fold: bool,
    /// See [`Effect::Cse`].
    pub cse: bool,
    /// Inlining threshold in AST nodes (0 = no inlining).
    pub inline_threshold: usize,
    /// See [`Effect::PartialInline`].
    pub partial_inline: bool,
    /// See [`Effect::TailCalls`].
    pub tail_calls: bool,
    /// Unroll factor (1 = off).
    pub unroll_factor: usize,
    /// See [`Effect::Peel`].
    pub peel: bool,
    /// See [`Effect::Unswitch`].
    pub unswitch: bool,
    /// See [`Effect::UnrollAndJam`].
    pub unroll_and_jam: bool,
    /// See [`Effect::VectorizeLoops`].
    pub vectorize_loops: bool,
    /// See [`Effect::VectorizeSlp`].
    pub vectorize_slp: bool,
    /// See [`Effect::JumpTables`].
    pub jump_tables: bool,
    /// See [`Effect::IfConvert`].
    pub if_convert: bool,
    /// See [`Effect::IfConvert2`].
    pub if_convert2: bool,
    /// See [`Effect::BranchCountReg`].
    pub branch_count_reg: bool,
    /// See [`Effect::Peephole`].
    pub peephole: bool,
    /// See [`Effect::StrengthReduce`].
    pub strength_reduce: bool,
    /// See [`Effect::ReorderBlocks`].
    pub reorder_blocks: bool,
    /// See [`Effect::ReorderBlocksPartition`].
    pub reorder_partition: bool,
    /// See [`Effect::ReorderFunctions`].
    pub reorder_functions: bool,
    /// Loop alignment padding bytes (0 = off).
    pub align_loops: u8,
    /// Function alignment padding bytes (0 = off).
    pub align_functions: u8,
    /// See [`Effect::MergeConstants`].
    pub merge_constants: bool,
    /// See [`Effect::MergeAllConstants`].
    pub merge_all_constants: bool,
    /// See [`Effect::MergeBlocks`].
    pub merge_blocks: bool,
    /// See [`Effect::BuiltinExpand`].
    pub builtin_expand: bool,
    /// See [`Effect::Licm`].
    pub licm: bool,
    /// See [`Effect::LoopDistribute`].
    pub loop_distribute: bool,
    /// Style perturbation bits from filler flags.
    pub style_bits: u64,
}

impl EffectConfig {
    /// Resolve a flag vector against a profile.
    ///
    /// # Panics
    ///
    /// Panics if `flags.len()` doesn't match the profile.
    pub fn from_flags(profile: &CompilerProfile, flags: &[bool]) -> EffectConfig {
        assert_eq!(flags.len(), profile.n_flags());
        let mut c = EffectConfig {
            unroll_factor: 1,
            ..Default::default()
        };
        for (def, &on) in profile.flags().iter().zip(flags) {
            if !on {
                continue;
            }
            match def.effect {
                Effect::RegAlloc => c.regalloc = true,
                Effect::ConstFold => c.const_fold = true,
                Effect::Cse => c.cse = true,
                Effect::InlineSmall => c.inline_threshold = c.inline_threshold.max(12),
                Effect::InlineFunctions => c.inline_threshold = c.inline_threshold.max(48),
                Effect::PartialInline => c.partial_inline = true,
                Effect::TailCalls => c.tail_calls = true,
                Effect::Unroll => c.unroll_factor = c.unroll_factor.max(4),
                Effect::Peel => c.peel = true,
                Effect::Unswitch => c.unswitch = true,
                Effect::UnrollAndJam => c.unroll_and_jam = true,
                Effect::VectorizeLoops => c.vectorize_loops = true,
                Effect::VectorizeSlp => c.vectorize_slp = true,
                Effect::VectorizeBoth => {
                    c.vectorize_loops = true;
                    c.vectorize_slp = true;
                }
                Effect::JumpTables => c.jump_tables = true,
                Effect::IfConvert => c.if_convert = true,
                Effect::IfConvert2 => c.if_convert2 = true,
                Effect::BranchCountReg => c.branch_count_reg = true,
                Effect::Peephole => c.peephole = true,
                Effect::StrengthReduce => c.strength_reduce = true,
                Effect::ReorderBlocks => c.reorder_blocks = true,
                Effect::ReorderBlocksPartition => c.reorder_partition = true,
                Effect::ReorderFunctions => c.reorder_functions = true,
                Effect::AlignLoops => c.align_loops = 8,
                Effect::AlignFunctions => c.align_functions = 16,
                Effect::MergeConstants => c.merge_constants = true,
                Effect::MergeAllConstants => {
                    c.merge_constants = true;
                    c.merge_all_constants = true;
                }
                Effect::MergeBlocks => c.merge_blocks = true,
                Effect::BuiltinExpand => c.builtin_expand = true,
                Effect::Licm => c.licm = true,
                Effect::LoopDistribute => c.loop_distribute = true,
                Effect::Style(bit) => c.style_bits |= 1 << (bit % 24),
            }
        }
        c
    }

    /// Whether a style bit is set (filler-flag perturbations).
    pub fn style(&self, bit: u8) -> bool {
        self.style_bits & (1 << (bit % 24)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_paper_scale_flag_counts() {
        let gcc = CompilerProfile::new(CompilerKind::Gcc);
        let llvm = CompilerProfile::new(CompilerKind::Llvm);
        assert!(gcc.n_flags() >= 130, "{}", gcc.n_flags());
        assert!(llvm.n_flags() >= 100, "{}", llvm.n_flags());
    }

    #[test]
    fn flag_names_are_unique() {
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            let p = CompilerProfile::new(kind);
            let mut names: Vec<_> = p.flags().iter().map(|f| f.name).collect();
            names.sort();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "{kind}");
        }
    }

    #[test]
    fn presets_are_valid_and_monotone() {
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            let p = CompilerProfile::new(kind);
            let count = |l: OptLevel| p.preset(l).iter().filter(|&&b| b).count();
            assert_eq!(count(OptLevel::O0), 0);
            assert!(count(OptLevel::O1) < count(OptLevel::O2));
            assert!(count(OptLevel::O2) < count(OptLevel::O3));
            for l in OptLevel::ALL {
                assert!(p.constraints().is_valid(&p.preset(l)), "{kind} {l}");
            }
        }
    }

    #[test]
    fn o3_enables_less_than_half_of_all_options() {
        // Paper §1: "-O3 only accounts for less than 48% of all available
        // options" — the gap BinTuner explores.
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            let p = CompilerProfile::new(kind);
            let o3 = p.preset(OptLevel::O3).iter().filter(|&&b| b).count();
            assert!(
                (o3 as f64) < 0.48 * p.n_flags() as f64,
                "{kind}: {o3}/{}",
                p.n_flags()
            );
        }
    }

    #[test]
    fn effect_resolution() {
        let p = CompilerProfile::new(CompilerKind::Gcc);
        let mut flags = vec![false; p.n_flags()];
        flags[p.flag_index("-funroll-loops").unwrap()] = true;
        flags[p.flag_index("-ftree-vectorize").unwrap()] = true;
        flags[p.flag_index("-finline-functions").unwrap()] = true;
        let c = EffectConfig::from_flags(&p, &flags);
        assert_eq!(c.unroll_factor, 4);
        assert!(c.vectorize_loops && c.vectorize_slp);
        assert_eq!(c.inline_threshold, 48);
        assert!(!c.jump_tables);
    }

    #[test]
    fn jaccard_index() {
        let p = CompilerProfile::new(CompilerKind::Gcc);
        let o3 = p.preset(OptLevel::O3);
        assert!((p.jaccard(&o3, &o3) - 1.0).abs() < 1e-12);
        let o1 = p.preset(OptLevel::O1);
        let j = p.jaccard(&o3, &o1);
        assert!(j > 0.0 && j < 1.0);
    }

    #[test]
    fn os_differs_from_o2_and_o3() {
        for kind in [CompilerKind::Gcc, CompilerKind::Llvm] {
            let p = CompilerProfile::new(kind);
            let os = p.preset(OptLevel::Os);
            assert_ne!(os, p.preset(OptLevel::O2), "{kind}");
            assert_ne!(os, p.preset(OptLevel::O3), "{kind}");
        }
    }
}
