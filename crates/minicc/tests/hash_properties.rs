//! Property-based tests for the stable canonical hashes behind the
//! persistent fitness store's key space (`minicc::hash`).
//!
//! The store's correctness rests on two injectivity-flavored properties
//! that unit tests only spot-check:
//!
//! * **EffectConfig sensitivity** — perturbing *any single field* of an
//!   [`EffectConfig`] changes [`EffectConfig::stable_digest`]. A field
//!   the digest ignored would silently alias distinct optimization
//!   configurations to one cache entry.
//! * **Module hash semantics** — [`Module::content_hash`] is invariant
//!   under rebuilding a structurally identical AST from scratch (warm
//!   starts depend on regenerated corpora re-keying identically), and
//!   changes under any real AST edit.
//!
//! The perturbation builder destructures [`EffectConfig`] exhaustively,
//! so adding a field without covering it here is a compile error — the
//! same guard `stable_digest` itself uses.

use minicc::ast::{BinOp, Expr, FuncDef, LValue, Module, Stmt};
use minicc::EffectConfig;
use proptest::prelude::*;

/// Build an [`EffectConfig`] from generated raw material (no validity
/// constraints: the digest must separate *any* distinct configs, not
/// just reachable ones).
fn config_from(bits: &[bool], nums: [usize; 2], aligns: [u8; 2], style: u64) -> EffectConfig {
    let b = |i: usize| bits[i % bits.len()];
    EffectConfig {
        regalloc: b(0),
        const_fold: b(1),
        cse: b(2),
        inline_threshold: nums[0],
        partial_inline: b(3),
        tail_calls: b(4),
        unroll_factor: nums[1],
        peel: b(5),
        unswitch: b(6),
        unroll_and_jam: b(7),
        vectorize_loops: b(8),
        vectorize_slp: b(9),
        jump_tables: b(10),
        if_convert: b(11),
        if_convert2: b(12),
        branch_count_reg: b(13),
        peephole: b(14),
        strength_reduce: b(15),
        reorder_blocks: b(16),
        reorder_partition: b(17),
        reorder_functions: b(18),
        align_loops: aligns[0],
        align_functions: aligns[1],
        merge_constants: b(19),
        merge_all_constants: b(20),
        merge_blocks: b(21),
        builtin_expand: b(22),
        licm: b(23),
        loop_distribute: b(24),
        style_bits: style,
    }
}

/// Every single-field perturbation of `base`, labelled. Exhaustive by
/// construction: the trailing destructuring makes a new `EffectConfig`
/// field a compile error until it is perturbed here too.
fn single_field_perturbations(base: &EffectConfig) -> Vec<(&'static str, EffectConfig)> {
    let mut out: Vec<(&'static str, EffectConfig)> = Vec::new();
    macro_rules! flip {
        ($field:ident) => {{
            let mut c = base.clone();
            c.$field = !c.$field;
            out.push((stringify!($field), c));
        }};
    }
    macro_rules! bump {
        ($field:ident) => {{
            let mut c = base.clone();
            c.$field = c.$field.wrapping_add(1);
            out.push((stringify!($field), c));
        }};
    }
    flip!(regalloc);
    flip!(const_fold);
    flip!(cse);
    bump!(inline_threshold);
    flip!(partial_inline);
    flip!(tail_calls);
    bump!(unroll_factor);
    flip!(peel);
    flip!(unswitch);
    flip!(unroll_and_jam);
    flip!(vectorize_loops);
    flip!(vectorize_slp);
    flip!(jump_tables);
    flip!(if_convert);
    flip!(if_convert2);
    flip!(branch_count_reg);
    flip!(peephole);
    flip!(strength_reduce);
    flip!(reorder_blocks);
    flip!(reorder_partition);
    flip!(reorder_functions);
    bump!(align_loops);
    bump!(align_functions);
    flip!(merge_constants);
    flip!(merge_all_constants);
    flip!(merge_blocks);
    flip!(builtin_expand);
    flip!(licm);
    flip!(loop_distribute);
    bump!(style_bits);
    // Exhaustiveness guard: add a field to EffectConfig and this stops
    // compiling until the field gains a perturbation above.
    let EffectConfig {
        regalloc: _,
        const_fold: _,
        cse: _,
        inline_threshold: _,
        partial_inline: _,
        tail_calls: _,
        unroll_factor: _,
        peel: _,
        unswitch: _,
        unroll_and_jam: _,
        vectorize_loops: _,
        vectorize_slp: _,
        jump_tables: _,
        if_convert: _,
        if_convert2: _,
        branch_count_reg: _,
        peephole: _,
        strength_reduce: _,
        reorder_blocks: _,
        reorder_partition: _,
        reorder_functions: _,
        align_loops: _,
        align_functions: _,
        merge_constants: _,
        merge_all_constants: _,
        merge_blocks: _,
        builtin_expand: _,
        licm: _,
        loop_distribute: _,
        style_bits: _,
    } = base;
    out
}

/// A deterministic little module built from generated constants: `k`
/// functions of the form `f_i(a) { x = a + c_i; return x * 3; }`.
fn build_module(name: &str, consts: &[u32]) -> Module {
    let mut m = Module::new(name);
    for (i, &c) in consts.iter().enumerate() {
        let mut f = FuncDef::new(
            format!("f_{i}"),
            vec!["a".into()],
            vec![
                Stmt::Assign(LValue::Var("x".into()), Expr::vc(BinOp::Add, "a", c)),
                Stmt::Return(Expr::vc(BinOp::Mul, "x", 3)),
            ],
        );
        f.local("x");
        m.funcs.push(f);
    }
    m.globals.push(minicc::ast::Global {
        name: "g".into(),
        words: consts.to_vec(),
    });
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-field perturbation of any EffectConfig re-keys the
    /// digest — no optimization dimension can be silently unhashed.
    #[test]
    fn prop_every_effect_config_field_moves_the_digest(
        bits in proptest::collection::vec(any::<bool>(), 25),
        inline in 0usize..100,
        unroll in 1usize..9,
        align_a in 0u8..65,
        align_b in 0u8..65,
        style in any::<u64>(),
    ) {
        let base = config_from(&bits, [inline, unroll], [align_a, align_b], style);
        let base_digest = base.stable_digest();
        for (field, perturbed) in single_field_perturbations(&base) {
            prop_assert!(
                perturbed.stable_digest() != base_digest,
                "perturbing {} left the digest unchanged",
                field
            );
        }
    }

    /// Rebuilding a structurally identical module from scratch re-keys
    /// identically; any AST edit re-keys differently.
    #[test]
    fn prop_module_hash_tracks_structure_not_identity(
        consts in proptest::collection::vec(1u32..1_000_000, 1..6),
        edit_value in 1u32..1_000_000,
    ) {
        let m = build_module("prop_mod", &consts);
        // Identity re-construction (fresh allocations, same structure).
        prop_assert_eq!(m.content_hash(), build_module("prop_mod", &consts).content_hash());
        // Clone is trivially identical too.
        prop_assert_eq!(m.content_hash(), m.clone().content_hash());

        // Renaming the module is an edit (the name reaches the binary).
        prop_assert!(m.content_hash() != build_module("other_mod", &consts).content_hash());

        // Editing one constant is an edit.
        let mut edited = consts.clone();
        edited[0] = edited[0].wrapping_add(edit_value).max(1);
        if edited != consts {
            prop_assert!(
                m.content_hash() != build_module("prop_mod", &edited).content_hash()
            );
        }

        // Appending a statement is an edit.
        let mut grown = m.clone();
        grown.funcs[0]
            .body
            .insert(0, Stmt::Assign(LValue::Var("x".into()), Expr::Const(7)));
        prop_assert!(m.content_hash() != grown.content_hash());

        // Reordering functions changes layout, hence the hash — but only
        // when there are at least two distinct functions to swap.
        if consts.len() >= 2 {
            let mut swapped = m.clone();
            swapped.funcs.swap(0, 1);
            prop_assert!(m.content_hash() != swapped.content_hash());
        }
    }
}
