//! # perfmodel — execution-speed estimation for the mini-ISA
//!
//! The paper's Table 3 compares the runtime speedup of `-O3` and
//! BinTuner's output over `-O0`. With a synthetic ISA there is no silicon
//! to time, so speed is *modelled*: the emulator supplies exact dynamic
//! instruction counts and branch-behaviour statistics
//! ([`emu::ExecStats`]), and a per-opcode cycle table plus misprediction
//! and call penalties produce a cycle estimate whose *relative* ordering
//! (what Table 3 reports) is meaningful.
//!
//! ## Example
//!
//! ```
//! use minicc::{Compiler, CompilerKind, OptLevel};
//!
//! let bench = corpus::by_name("429.mcf").unwrap();
//! let cc = Compiler::new(CompilerKind::Gcc);
//! let o0 = cc.compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86).unwrap();
//! let o3 = cc.compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86).unwrap();
//! let s = perfmodel::speedup(&o0, &o3, &bench.test_inputs[0]).unwrap();
//! assert!(s > -0.5); // sane range
//! ```

#![warn(missing_docs)]

use binrep::Binary;
use emu::{EmuError, ExecStats, Machine};

/// Modelled cycle cost of one executed instruction, by mnemonic.
fn cycle_cost(mnemonic: &str) -> f64 {
    match mnemonic {
        "udiv" | "urem" => 24.0,
        "umulh" => 4.0,
        "imul" | "pmulld" => 3.0,
        "call" | "call@import" => 6.0,
        "push" | "pop" => 1.5,
        "movups" | "movaps" => 1.5,
        "paddd" | "psubd" | "phsumd" => 1.2,
        "nop" => 0.25,
        _ => 1.0,
    }
}

/// Misprediction penalty in cycles (applied per observed branch
/// direction change — a crude two-level-predictor proxy).
const MISPREDICT: f64 = 14.0;
/// Indirect-jump (table) cost.
const TABLE_JUMP: f64 = 3.0;

/// Estimated cycles for an execution's statistics.
pub fn cycles_for_stats(stats: &ExecStats) -> f64 {
    let mut c = 0.0;
    for (mn, n) in &stats.op_counts {
        c += cycle_cost(mn) * *n as f64;
    }
    // Terminators not in op_counts: charge branches and table jumps.
    c += stats.branches as f64;
    c += stats.direction_changes as f64 * MISPREDICT;
    c += stats.table_jumps as f64 * TABLE_JUMP;
    c
}

/// Run a binary and estimate its cycle count.
///
/// # Errors
///
/// Propagates emulator errors (fuel exhaustion etc.).
pub fn estimate_cycles(bin: &Binary, inputs: &[u32]) -> Result<f64, EmuError> {
    let r = Machine::new(bin).run(&[], inputs, 50_000_000)?;
    Ok(cycles_for_stats(&r.stats))
}

/// Relative speedup of `optimized` over `baseline`:
/// `cycles(baseline) / cycles(optimized) − 1`. Positive = faster.
///
/// # Errors
///
/// Propagates emulator errors from either run.
pub fn speedup(baseline: &Binary, optimized: &Binary, inputs: &[u32]) -> Result<f64, EmuError> {
    let cb = estimate_cycles(baseline, inputs)?;
    let co = estimate_cycles(optimized, inputs)?;
    Ok(cb / co - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minicc::{Compiler, CompilerKind, OptLevel};

    #[test]
    fn optimized_code_is_faster() {
        let bench = corpus::by_name("462.libquantum").unwrap();
        let cc = Compiler::new(CompilerKind::Gcc);
        let o0 = cc
            .compile_preset(&bench.module, OptLevel::O0, binrep::Arch::X86)
            .unwrap();
        let o3 = cc
            .compile_preset(&bench.module, OptLevel::O3, binrep::Arch::X86)
            .unwrap();
        let s = speedup(&o0, &o3, &bench.test_inputs[0]).unwrap();
        assert!(s > 0.0, "O3 speedup {s}");
    }

    #[test]
    fn speedup_of_identity_is_zero() {
        let bench = corpus::by_name("429.mcf").unwrap();
        let cc = Compiler::new(CompilerKind::Gcc);
        let o2 = cc
            .compile_preset(&bench.module, OptLevel::O2, binrep::Arch::X86)
            .unwrap();
        let s = speedup(&o2, &o2, &bench.test_inputs[0]).unwrap();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn division_dominates_cost_model() {
        assert!(cycle_cost("udiv") > cycle_cost("imul"));
        assert!(cycle_cost("imul") > cycle_cost("add"));
        // The magic-divide sequence (umulh + shifts) is cheaper than udiv.
        assert!(cycle_cost("umulh") + 3.0 * cycle_cost("shr") < cycle_cost("udiv"));
    }
}
